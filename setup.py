"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e .`` use the legacy
``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
