# Convenience targets for the reproduction.

PYTHON ?= python
SMOKE_DIR := .campaign-smoke
OBS_SMOKE_DIR := .obs-smoke
RESUME_SMOKE_DIR := .resume-smoke
ANALYZE_SMOKE_DIR := .analyze-obs-smoke
BENCH_CHECK_DIR := .bench-check
PERF_SMOKE_DIR := .perf-smoke
SERVE_SMOKE_DIR := .serve-smoke
BENCH_SERVE_DIR := .bench-serve
TRACE_SMOKE_DIR := .trace-smoke

.PHONY: install test test-fast campaign-smoke obs-smoke resume-smoke \
	analyze-obs-smoke bench-check perf-smoke serve-smoke bench-serve \
	trace-smoke vector-parity analyze-parity lint bench bench-full bench-obs \
	bench-perf examples clean

install:
	$(PYTHON) setup.py develop

test: lint campaign-smoke obs-smoke resume-smoke analyze-obs-smoke bench-check \
		perf-smoke serve-smoke bench-serve trace-smoke vector-parity \
		analyze-parity
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Fast end-to-end check: a 2-path x 2-trace x 10-epoch parallel campaign
# through the CLI, twice — the second run must be served from the cache
# and produce a byte-identical dataset.
campaign-smoke:
	rm -rf $(SMOKE_DIR)
	PYTHONPATH=src REPRO_CACHE_DIR=$(SMOKE_DIR)/cache \
		REPRO_CHECKPOINT_DIR=$(SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 10 --workers 2 -o $(SMOKE_DIR)/smoke.csv
	PYTHONPATH=src REPRO_CACHE_DIR=$(SMOKE_DIR)/cache \
		REPRO_CHECKPOINT_DIR=$(SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 10 --workers 2 -o $(SMOKE_DIR)/smoke-again.csv \
		| grep -q "cache hit"
	cmp $(SMOKE_DIR)/smoke.csv $(SMOKE_DIR)/smoke-again.csv
	@echo "campaign smoke OK (parallel run + cache hit)"

# Telemetry end-to-end check: a tiny campaign must write its run
# manifest sidecars, and `repro-obs summary` must render them.
obs-smoke:
	rm -rf $(OBS_SMOKE_DIR)
	PYTHONPATH=src REPRO_CACHE_DIR=$(OBS_SMOKE_DIR)/cache \
		REPRO_CHECKPOINT_DIR=$(OBS_SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 4 --traces 1 --epochs 5 --quiet -o $(OBS_SMOKE_DIR)/smoke.csv
	test -f $(OBS_SMOKE_DIR)/smoke.manifest.json
	test -f $(OBS_SMOKE_DIR)/smoke.events.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs summary $(OBS_SMOKE_DIR)/smoke.csv > /dev/null
	@echo "obs smoke OK (manifest written + summary rendered)"

# Fault-tolerance end-to-end check: run a tiny campaign that an injected
# fault hard-kills (os._exit) mid-flight, then `--resume` it; the resumed
# dataset must be byte-identical to an uninterrupted run's.
resume-smoke:
	rm -rf $(RESUME_SMOKE_DIR)
	PYTHONPATH=src REPRO_CHECKPOINT_DIR=$(RESUME_SMOKE_DIR)/ckpt-ref $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 8 --no-cache --quiet -o $(RESUME_SMOKE_DIR)/ref.csv
	PYTHONPATH=src REPRO_CHECKPOINT_DIR=$(RESUME_SMOKE_DIR)/ckpt \
		REPRO_FAULT_SPEC="p18/1:exit" $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 8 --no-cache --quiet -o $(RESUME_SMOKE_DIR)/resumed.csv; \
		test $$? -ne 0
	test ! -f $(RESUME_SMOKE_DIR)/resumed.csv
	ls $(RESUME_SMOKE_DIR)/ckpt/*/*.csv > /dev/null
	PYTHONPATH=src REPRO_CHECKPOINT_DIR=$(RESUME_SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 8 --no-cache --quiet --resume -o $(RESUME_SMOKE_DIR)/resumed.csv
	cmp $(RESUME_SMOKE_DIR)/ref.csv $(RESUME_SMOKE_DIR)/resumed.csv
	@echo "resume smoke OK (killed mid-flight + --resume == uninterrupted run)"

# Prediction-pipeline telemetry end-to-end check: a tiny repro-analyze
# run must write analysis sidecars, `repro-obs summary` must render
# them, and a `bench record` + `bench check` round-trip on the fresh
# manifest must pass the regression gate.
analyze-obs-smoke:
	rm -rf $(ANALYZE_SMOKE_DIR)
	PYTHONPATH=src REPRO_CACHE_DIR=$(ANALYZE_SMOKE_DIR)/cache \
		REPRO_CHECKPOINT_DIR=$(ANALYZE_SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 3 --traces 1 --epochs 12 --quiet --no-cache -o $(ANALYZE_SMOKE_DIR)/smoke.csv
	PYTHONPATH=src $(PYTHON) -m repro.cli.analyze $(ANALYZE_SMOKE_DIR)/smoke.csv \
		--figures 2 16 > /dev/null
	test -f $(ANALYZE_SMOKE_DIR)/smoke.analysis.manifest.json
	test -f $(ANALYZE_SMOKE_DIR)/smoke.analysis.events.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs summary \
		$(ANALYZE_SMOKE_DIR)/smoke.analysis.manifest.json | grep -q "kind=analysis"
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs bench record \
		$(ANALYZE_SMOKE_DIR)/smoke.analysis.manifest.json \
		--name smoke --baselines-dir $(ANALYZE_SMOKE_DIR)/baselines
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs bench check \
		$(ANALYZE_SMOKE_DIR)/smoke.analysis.manifest.json \
		--name smoke --baselines-dir $(ANALYZE_SMOKE_DIR)/baselines > /dev/null
	@echo "analyze obs smoke OK (analysis sidecars + summary + bench gate)"

# The perf-regression gate against the committed baseline: re-measure the
# benchmark fixtures and require the timings to stay within tolerance of
# benchmarks/baselines/obs_baseline.json.  The wide tolerance absorbs
# machine-to-machine wall-clock noise; counters must match exactly.
bench-check:
	rm -rf $(BENCH_CHECK_DIR)
	mkdir -p $(BENCH_CHECK_DIR)
	PYTHONPATH=src $(PYTHON) benchmarks/obs_baseline.py \
		--output $(BENCH_CHECK_DIR)/BENCH_obs.json
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs bench check \
		$(BENCH_CHECK_DIR)/BENCH_obs.json --tolerance 0.6
	@echo "bench check OK (fixture timings within tolerance of committed baseline)"

# The hot-path perf gate: re-measure the packet-engine/campaign perf
# fixtures and require the timings to stay within a loose tolerance of
# benchmarks/baselines/perf_baseline.json.  The ±90% tolerance only
# catches order-of-magnitude regressions — shared CI runners are far
# too noisy for tight wall-clock budgets — while the event/epoch
# counters must match exactly (they are deterministic given the seed).
perf-smoke:
	rm -rf $(PERF_SMOKE_DIR)
	mkdir -p $(PERF_SMOKE_DIR)
	PYTHONPATH=src $(PYTHON) benchmarks/perf_bench.py \
		--output $(PERF_SMOKE_DIR)/BENCH_perf.json
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs bench check \
		$(PERF_SMOKE_DIR)/BENCH_perf.json --name perf_baseline --tolerance 0.9
	@echo "perf smoke OK (hot-path timings within tolerance of committed baseline)"

# Online-serving end-to-end check: boot the real repro-serve CLI as a
# subprocess, ingest over HTTP, require the forecast to be bit-identical
# to an offline StreamingPredictorState, then SIGTERM and verify the
# shutdown snapshot + manifest and a bit-identical restore on restart.
serve-smoke:
	rm -rf $(SERVE_SMOKE_DIR)
	$(PYTHON) tools/serve_smoke.py --workdir $(SERVE_SMOKE_DIR)

# The serving-throughput gate: re-measure the streaming-ingest, state
# store, and HTTP fixtures and require the timings to stay within a
# loose tolerance of benchmarks/baselines/serve_baseline.json; the
# sample/request counters must match exactly.  After an intentional
# serving-perf change, re-record with:
#   repro-obs bench record BENCH_serve.json --name serve_baseline
bench-serve:
	rm -rf $(BENCH_SERVE_DIR)
	mkdir -p $(BENCH_SERVE_DIR)
	PYTHONPATH=src $(PYTHON) benchmarks/serve_bench.py \
		--output $(BENCH_SERVE_DIR)/BENCH_serve.json
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs bench check \
		$(BENCH_SERVE_DIR)/BENCH_serve.json --name serve_baseline --tolerance 0.9
	@echo "serve bench OK (serving throughput within tolerance of committed baseline)"

# Span-tracing end-to-end check: a tiny campaign and a live repro-serve
# round trip, both rendered by `repro-obs trace`; the Chrome trace-event
# exports must pass validate_chrome_trace and the campaign's critical
# path must be non-empty (see docs/observability.md, "Tracing").
trace-smoke:
	rm -rf $(TRACE_SMOKE_DIR)
	$(PYTHON) tools/trace_smoke.py --workdir $(TRACE_SMOKE_DIR)

# The fluid-engine bit-identity gate: the default-catalog campaign CSV
# must hash identically between the scalar reference loop and the
# vectorized engine at every worker count (see docs/performance.md,
# "The vectorized fluid path").  Shrink for quick iteration with e.g.:
#   python tools/vector_parity.py --paths 4 --traces 2 --epochs 20
vector-parity:
	PYTHONPATH=src $(PYTHON) tools/vector_parity.py
	@echo "vector parity OK (scalar and vector engine CSVs byte-identical)"

# The HB-analysis bit-identity gate: repro-analyze stdout must hash
# identically between the scalar oracle and the vectorized evaluation
# path at workers 1/2/4, and a warm rerun against the populated
# evaluation cache must match while computing zero walks (see
# docs/performance.md, "The vectorized analysis path").  The reduced
# grid keeps `make test` quick; the tool's default invocation (no
# flags) covers the full default catalog.
analyze-parity:
	PYTHONPATH=src $(PYTHON) tools/analyze_parity.py --paths 6 --traces 2 --epochs 60
	@echo "analyze parity OK (scalar/vector/parallel/cached outputs byte-identical)"

# Library code must report through repro.obs, not print().
lint:
	$(PYTHON) tools/no_print_lint.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_CAMPAIGN=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Refresh BENCH_obs.json: wall time + per-phase timings of the
# benchmark fixture campaigns, for tracking the perf trajectory.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/obs_baseline.py

# Refresh BENCH_perf.json: event-throughput and campaign wall-time
# measurements of the hot-path fixtures, for tracking the perf
# trajectory.  After an intentional perf change, re-record the gate's
# baseline with:
#   repro-obs bench record BENCH_perf.json --name perf_baseline
bench-perf:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_bench.py

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache $(SMOKE_DIR) $(OBS_SMOKE_DIR) \
		$(RESUME_SMOKE_DIR) $(ANALYZE_SMOKE_DIR) $(BENCH_CHECK_DIR) \
		$(PERF_SMOKE_DIR) $(SERVE_SMOKE_DIR) $(BENCH_SERVE_DIR) $(TRACE_SMOKE_DIR)
	find . -name __pycache__ -type d -exec rm -rf {} +
