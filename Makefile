# Convenience targets for the reproduction.

PYTHON ?= python
SMOKE_DIR := .campaign-smoke
OBS_SMOKE_DIR := .obs-smoke
RESUME_SMOKE_DIR := .resume-smoke

.PHONY: install test test-fast campaign-smoke obs-smoke resume-smoke lint \
	bench bench-full bench-obs examples clean

install:
	$(PYTHON) setup.py develop

test: lint campaign-smoke obs-smoke resume-smoke
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Fast end-to-end check: a 2-path x 2-trace x 10-epoch parallel campaign
# through the CLI, twice — the second run must be served from the cache
# and produce a byte-identical dataset.
campaign-smoke:
	rm -rf $(SMOKE_DIR)
	PYTHONPATH=src REPRO_CACHE_DIR=$(SMOKE_DIR)/cache \
		REPRO_CHECKPOINT_DIR=$(SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 10 --workers 2 -o $(SMOKE_DIR)/smoke.csv
	PYTHONPATH=src REPRO_CACHE_DIR=$(SMOKE_DIR)/cache \
		REPRO_CHECKPOINT_DIR=$(SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 10 --workers 2 -o $(SMOKE_DIR)/smoke-again.csv \
		| grep -q "cache hit"
	cmp $(SMOKE_DIR)/smoke.csv $(SMOKE_DIR)/smoke-again.csv
	@echo "campaign smoke OK (parallel run + cache hit)"

# Telemetry end-to-end check: a tiny campaign must write its run
# manifest sidecars, and `repro-obs summary` must render them.
obs-smoke:
	rm -rf $(OBS_SMOKE_DIR)
	PYTHONPATH=src REPRO_CACHE_DIR=$(OBS_SMOKE_DIR)/cache \
		REPRO_CHECKPOINT_DIR=$(OBS_SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 4 --traces 1 --epochs 5 --quiet -o $(OBS_SMOKE_DIR)/smoke.csv
	test -f $(OBS_SMOKE_DIR)/smoke.manifest.json
	test -f $(OBS_SMOKE_DIR)/smoke.events.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli.obs summary $(OBS_SMOKE_DIR)/smoke.csv > /dev/null
	@echo "obs smoke OK (manifest written + summary rendered)"

# Fault-tolerance end-to-end check: run a tiny campaign that an injected
# fault hard-kills (os._exit) mid-flight, then `--resume` it; the resumed
# dataset must be byte-identical to an uninterrupted run's.
resume-smoke:
	rm -rf $(RESUME_SMOKE_DIR)
	PYTHONPATH=src REPRO_CHECKPOINT_DIR=$(RESUME_SMOKE_DIR)/ckpt-ref $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 8 --no-cache --quiet -o $(RESUME_SMOKE_DIR)/ref.csv
	PYTHONPATH=src REPRO_CHECKPOINT_DIR=$(RESUME_SMOKE_DIR)/ckpt \
		REPRO_FAULT_SPEC="p18/1:exit" $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 8 --no-cache --quiet -o $(RESUME_SMOKE_DIR)/resumed.csv; \
		test $$? -ne 0
	test ! -f $(RESUME_SMOKE_DIR)/resumed.csv
	ls $(RESUME_SMOKE_DIR)/ckpt/*/*.csv > /dev/null
	PYTHONPATH=src REPRO_CHECKPOINT_DIR=$(RESUME_SMOKE_DIR)/ckpt $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 8 --no-cache --quiet --resume -o $(RESUME_SMOKE_DIR)/resumed.csv
	cmp $(RESUME_SMOKE_DIR)/ref.csv $(RESUME_SMOKE_DIR)/resumed.csv
	@echo "resume smoke OK (killed mid-flight + --resume == uninterrupted run)"

# Library code must report through repro.obs, not print().
lint:
	$(PYTHON) tools/no_print_lint.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_CAMPAIGN=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Refresh BENCH_obs.json: wall time + per-phase timings of the
# benchmark fixture campaigns, for tracking the perf trajectory.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/obs_baseline.py

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache $(SMOKE_DIR) $(OBS_SMOKE_DIR) \
		$(RESUME_SMOKE_DIR)
	find . -name __pycache__ -type d -exec rm -rf {} +
