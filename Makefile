# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-full examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_CAMPAIGN=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
