# Convenience targets for the reproduction.

PYTHON ?= python
SMOKE_DIR := .campaign-smoke

.PHONY: install test test-fast campaign-smoke bench bench-full examples clean

install:
	$(PYTHON) setup.py develop

test: campaign-smoke
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Fast end-to-end check: a 2-path x 2-trace x 10-epoch parallel campaign
# through the CLI, twice — the second run must be served from the cache
# and produce a byte-identical dataset.
campaign-smoke:
	rm -rf $(SMOKE_DIR)
	PYTHONPATH=src REPRO_CACHE_DIR=$(SMOKE_DIR)/cache $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 10 --workers 2 -o $(SMOKE_DIR)/smoke.csv
	PYTHONPATH=src REPRO_CACHE_DIR=$(SMOKE_DIR)/cache $(PYTHON) -m repro.cli.campaign \
		--paths 2 --traces 2 --epochs 10 --workers 2 -o $(SMOKE_DIR)/smoke-again.csv \
		| grep -q "cache hit"
	cmp $(SMOKE_DIR)/smoke.csv $(SMOKE_DIR)/smoke-again.csv
	@echo "campaign smoke OK (parallel run + cache hit)"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_CAMPAIGN=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache $(SMOKE_DIR)
	find . -name __pycache__ -type d -exec rm -rf {} +
