"""``make analyze-parity``: prove the analysis pipeline output-identical.

Builds one campaign dataset, then runs ``repro-analyze`` on it five
ways — the scalar HB oracle (the reference), the vectorized engine at
each requested worker count (each against a fresh evaluation-cache
directory), and finally a warm rerun against the now-populated cache —
and requires every run's rendered stdout to be *byte-identical* to the
reference.  The warm rerun must additionally have computed nothing:
every HB walk must have come out of the cache.

The default invocation covers the acceptance bar of the vectorized
analysis work: the full default catalog (may2004, 35 paths x 7 traces
x 150 epochs, seed 0).  ``--paths/--traces/--epochs`` shrink the
dataset for quick iteration; the reduced grid is what ``make test``
runs.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.paths.config import expanded_catalog, may_2004_catalog  # noqa: E402
from repro.testbed.campaign import Campaign, CampaignSettings  # noqa: E402
from repro.testbed.io import save_dataset  # noqa: E402


def run_analyze(
    dataset: Path, cache_dir: Path, engine: str, workers: int
) -> tuple[str, str, str]:
    """One ``repro-analyze`` subprocess; returns (stdout sha256, stdout, stderr)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    env["REPRO_EVAL_CACHE_DIR"] = str(cache_dir)
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli.analyze",
            str(dataset),
            "--hb-engine",
            engine,
            "--workers",
            str(workers),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    digest = hashlib.sha256(proc.stdout.encode()).hexdigest()
    return digest, proc.stdout, proc.stderr


def warm_computed(stderr: str) -> int | None:
    """Evaluations the run computed fresh, parsed from the warm-phase note."""
    match = re.search(r"warm phase: (\d+) evaluations computed", stderr)
    return int(match.group(1)) if match else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff repro-analyze output across engines, workers, and cache state."
    )
    parser.add_argument(
        "--paths", type=int, default=None, metavar="N",
        help="restrict/expand the catalog to N paths (default: all)",
    )
    parser.add_argument(
        "--traces", type=int, default=7, metavar="N",
        help="traces per path (default: 7, the paper's)",
    )
    parser.add_argument(
        "--epochs", type=int, default=150, metavar="N",
        help="epochs per trace (default: 150, the paper's)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4], metavar="N",
        help="worker counts for the vectorized runs (default: 1 2 4)",
    )
    args = parser.parse_args(argv)

    catalog = may_2004_catalog()
    if args.paths is not None:
        catalog = expanded_catalog(catalog, args.paths)
    settings = CampaignSettings(n_traces=args.traces, epochs_per_trace=args.epochs)
    print(
        f"analyze-parity may2004: {len(catalog)} paths x {args.traces} traces "
        f"x {args.epochs} epochs, seed {args.seed}"
    )

    failed = False
    with tempfile.TemporaryDirectory(prefix="analyze-parity-") as tmp:
        workdir = Path(tmp)
        dataset = workdir / "parity.csv"
        save_dataset(
            Campaign(catalog, seed=args.seed).run(settings), dataset
        )

        reference, ref_out, _ = run_analyze(
            dataset, workdir / "cache-scalar", "scalar", 1
        )
        print(f"  scalar  workers=1        {reference}")

        warm_cache = workdir / "cache-w1"
        for n_workers in args.workers:
            cache_dir = workdir / f"cache-w{n_workers}"
            digest, out, _ = run_analyze(dataset, cache_dir, "vector", n_workers)
            match = digest == reference
            print(
                f"  vector  workers={n_workers}        {digest}  "
                f"{'ok' if match else 'MISMATCH'}"
            )
            failed = failed or not match

        digest, out, stderr = run_analyze(dataset, warm_cache, "vector", 1)
        computed = warm_computed(stderr)
        cached_ok = computed == 0
        match = digest == reference
        print(
            f"  vector  workers=1 (warm) {digest}  "
            f"{'ok' if match else 'MISMATCH'}"
            f"{'' if cached_ok else f'  RECOMPUTED {computed} UNITS'}"
        )
        failed = failed or not match or not cached_ok

    if failed:
        print("analyze-parity FAILED: runs disagree", file=sys.stderr)
        return 1
    print("analyze-parity OK: all runs byte-identical, warm run fully cached")
    return 0


if __name__ == "__main__":
    sys.exit(main())
