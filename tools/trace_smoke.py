"""End-to-end smoke test for span tracing (``make trace-smoke``).

Drives the full tracing pipeline through the real CLIs, as subprocesses:

1. run a tiny campaign with ``repro-campaign`` and check its events
   sidecar carries a single-rooted span tree (campaign → trace units);
2. ``repro-obs trace --format chrome`` on the dataset must produce a
   Chrome trace-event document that passes
   :func:`repro.obs.traceview.validate_chrome_trace`, and the text view
   must include a non-empty critical-path table;
3. boot ``repro-serve`` with an access log, ingest + predict, and pull
   ``repro-obs trace`` against the live server's ``/trace`` endpoint;
4. SIGTERM the server and render the trace again from the manifest the
   shutdown wrote — the offline path over the events sidecar.

Exits non-zero with a one-line reason on any failure.  Artifacts land
in --workdir (default .trace-smoke/).
"""

from __future__ import annotations

import argparse
import json
import os
import selectors
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.obs.recorder import read_events, resolve_manifest  # noqa: E402
from repro.obs.traceview import (  # noqa: E402
    build_traces,
    critical_path,
    validate_chrome_trace,
)

START_TIMEOUT_S = 20.0
STOP_TIMEOUT_S = 20.0


def fail(reason: str) -> None:
    print(f"trace-smoke: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def cli_env(workdir: Path) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(workdir / "cache")
    env.pop("REPRO_OBS", None)
    env.pop("REPRO_TRACE_SAMPLE", None)
    return env


def run_cli(workdir: Path, *argv: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", *argv],
        capture_output=True,
        text=True,
        env=cli_env(workdir),
        timeout=120,
    )
    if result.returncode != 0:
        fail(
            f"{argv[0]} {' '.join(argv[1:3])} exited {result.returncode}: "
            f"{result.stderr!r}"
        )
    return result.stdout


def check_chrome_file(path: Path, expect_span: str) -> dict:
    doc = json.loads(path.read_text())
    problems = validate_chrome_trace(doc)
    if problems:
        fail(f"{path.name}: invalid Chrome trace: {problems[:3]}")
    names = {
        e.get("name") for e in doc["traceEvents"] if e.get("ph") == "X"
    }
    if expect_span not in names:
        fail(f"{path.name}: no {expect_span!r} span among {sorted(names)}")
    return doc


def campaign_leg(workdir: Path) -> None:
    dataset = workdir / "smoke.csv"
    run_cli(
        workdir, "repro.cli.campaign",
        "--paths", "2", "--traces", "1", "--epochs", "4",
        "--seed", "0", "--quiet", "-o", str(dataset),
    )

    events = read_events(resolve_manifest(dataset))
    spans = [e for e in events if e.get("kind") == "span"]
    if not spans:
        fail("campaign events sidecar holds no spans")
    traces = build_traces(events)
    if len(traces) != 1:
        fail(f"expected one campaign trace, got {len(traces)}")
    (roots,) = traces.values()
    if [r.name for r in roots] != ["campaign"]:
        fail(f"expected a single campaign root, got {[r.name for r in roots]}")
    chain = critical_path(roots)
    if len(chain) < 2:
        fail(f"critical path too shallow: {[n.name for n in chain]}")
    print(
        f"trace-smoke: campaign tree ok ({len(spans)} spans, critical path "
        f"{' > '.join(n.name for n in chain)})"
    )

    chrome = workdir / "campaign_trace.json"
    run_cli(
        workdir, "repro.cli.obs", "trace", str(dataset),
        "--format", "chrome", "-o", str(chrome),
    )
    check_chrome_file(chrome, "campaign")
    text = run_cli(workdir, "repro.cli.obs", "trace", str(dataset))
    if "critical path across" not in text:
        fail("text trace view lacks the critical-path table")
    print("trace-smoke: repro-obs trace renders the campaign (text + chrome)")


def spawn_server(workdir: Path) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli.serve",
            "--port", "0",
            "--predictors", "ma5",
            "--manifest", str(workdir / "serve.manifest.json"),
            "--access-log", str(workdir / "access.jsonl"),
            "--label", "trace-smoke",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=cli_env(workdir),
    )
    sel = selectors.DefaultSelector()
    sel.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + START_TIMEOUT_S
    banner = ""
    marker = "listening on http://"
    while time.monotonic() < deadline:
        if not sel.select(timeout=0.2):
            if proc.poll() is not None:
                fail(f"server exited during startup: {banner!r}")
            continue
        chunk = os.read(proc.stdout.fileno(), 4096).decode(errors="replace")
        if not chunk:
            if proc.poll() is not None:
                fail(f"server exited during startup: {banner!r}")
            continue
        banner += chunk
        if marker in banner:
            tail = banner.split(marker, 1)[1]
            if "\n" in tail:
                port = int(tail.split("\n", 1)[0].rsplit(":", 1)[1])
                return proc, port
    proc.kill()
    fail(f"no startup banner within {START_TIMEOUT_S}s (got {banner!r})")
    raise AssertionError  # unreachable


def http(port: int, method: str, path: str, body: dict | None = None) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def serve_leg(workdir: Path) -> None:
    proc, port = spawn_server(workdir)
    try:
        http(
            port, "POST", "/paths/smoke/samples",
            {"samples": [42.0, 44.5, 41.8, 43.2, 42.6]},
        )
        http(port, "GET", "/paths/smoke/predict?predictor=ma5")

        doc = http(port, "GET", "/trace")
        if not doc.get("enabled") or not doc.get("spans"):
            fail(f"live /trace endpoint returned {doc}")
        chrome = workdir / "serve_trace.json"
        run_cli(
            workdir, "repro.cli.obs", "trace", f"http://127.0.0.1:{port}",
            "--format", "chrome", "-o", str(chrome),
        )
        check_chrome_file(chrome, "request")
        print("trace-smoke: live /trace endpoint ok (chrome export valid)")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=STOP_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail(f"server did not exit within {STOP_TIMEOUT_S}s of SIGTERM")
        if proc.returncode != 0:
            fail(f"server exited {proc.returncode}: {proc.stdout.read()!r}")

    manifest = workdir / "serve.manifest.json"
    if not manifest.exists():
        fail("shutdown did not write the serve manifest")
    text = run_cli(workdir, "repro.cli.obs", "trace", str(manifest))
    if "request" not in text or "critical path across" not in text:
        fail(f"manifest trace view unexpected: {text[:200]!r}")
    chrome = workdir / "serve_manifest_trace.json"
    run_cli(
        workdir, "repro.cli.obs", "trace", str(manifest),
        "--format", "chrome", "-o", str(chrome),
    )
    check_chrome_file(chrome, "request")
    print("trace-smoke: manifest replay renders the request spans")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=".trace-smoke", metavar="DIR")
    args = parser.parse_args()
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    campaign_leg(workdir)
    serve_leg(workdir)
    print("trace-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
