"""End-to-end smoke test for repro-serve (``make serve-smoke``).

Boots the real CLI as a subprocess on an ephemeral port, drives it over
HTTP, and checks the full lifecycle the unit tests can't cover from
inside one process:

1. ingest a short trace and read back a forecast that exactly matches
   an offline StreamingPredictorState fed the same samples;
2. read ``/paths/{key}/quality`` and check the online error series is
   bit-identical to a twin QualityTracker replaying the same stream
   (the walk-forward parity the quality layer promises), and that
   ``repro-obs quality <url>`` renders it against the live server;
3. every response carries an ``X-Request-Id`` and every request lands
   in the JSONL access log with phase timings;
4. SIGTERM → clean exit (code 0), snapshot and manifest written, the
   manifest carrying the quality section;
5. restart from the snapshot → the restored forecast is bit-identical.

Exits non-zero with a one-line reason on any failure.  Artifacts land
in --workdir (default .serve-smoke/).
"""

from __future__ import annotations

import argparse
import json
import os
import selectors
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.hb.streaming import StreamingPredictorState  # noqa: E402
from repro.obs.quality import QualityConfig, QualityTracker  # noqa: E402
from repro.serve.state import default_specs  # noqa: E402

SAMPLES = [42.0, 44.5, 41.8, 43.2, 150.0, 42.6, 43.9, 42.1, 44.0, 43.3]
PREDICTORS = ["ma10", "ewma"]
START_TIMEOUT_S = 20.0
STOP_TIMEOUT_S = 20.0

#: X-Request-Id of every response received (order of arrival).
request_ids: list[str] = []


def fail(reason: str) -> None:
    print(f"serve-smoke: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def spawn(workdir: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli.serve",
            "--port",
            "0",
            "--predictors",
            ",".join(PREDICTORS),
            "--snapshot",
            str(workdir / "state.json"),
            "--manifest",
            str(workdir / "manifest.json"),
            "--access-log",
            str(workdir / "access.jsonl"),
            "--label",
            "serve-smoke",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The port is ephemeral: parse it from the startup banner, with a
    # deadline so a broken server can't hang the smoke run.  Read raw
    # chunks with os.read — a buffered readline() can swallow a line
    # *past* the one it returns (e.g. the restore notice and the banner
    # arriving in one pipe chunk), leaving select() waiting on an fd
    # that is empty while the banner sits in the Python-side buffer.
    sel = selectors.DefaultSelector()
    sel.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + START_TIMEOUT_S
    banner = ""
    marker = "listening on http://"
    while time.monotonic() < deadline:
        if not sel.select(timeout=0.2):
            if proc.poll() is not None:
                fail(f"server exited during startup: {banner!r}")
            continue
        chunk = os.read(proc.stdout.fileno(), 4096).decode(errors="replace")
        if not chunk:
            if proc.poll() is not None:
                fail(f"server exited during startup: {banner!r}")
            continue
        banner += chunk
        if marker in banner:
            tail = banner.split(marker, 1)[1]
            if "\n" in tail:
                port = int(tail.split("\n", 1)[0].rsplit(":", 1)[1])
                return proc, port
    proc.kill()
    fail(f"no startup banner within {START_TIMEOUT_S}s (got {banner!r})")
    raise AssertionError  # unreachable


def http(port: int, method: str, path: str, body: dict | None = None) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            request_id = response.headers.get("X-Request-Id")
            if not request_id:
                fail(f"{method} {path} response lacks an X-Request-Id header")
            request_ids.append(request_id)
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        fail(f"{method} {path} -> HTTP {exc.code}: {exc.read()!r}")
        raise AssertionError  # unreachable


def quality_twin() -> QualityTracker:
    """Replay SAMPLES through a twin tracker in the store's scoring order."""
    tracker = QualityTracker(QualityConfig())
    for name, spec in default_specs(PREDICTORS).items():
        state = StreamingPredictorState(spec)
        last = state.prediction()
        for value in SAMPLES:
            previous = last
            last = state.ingest(value)
            tracker.score(
                "smoke-path",
                name,
                previous,
                value,
                level_shifts=state.n_level_shifts,
            )
    return tracker


def run_obs_quality(port: int) -> None:
    """``repro-obs quality <url>`` must render against the live server."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli.obs",
            "quality",
            f"http://127.0.0.1:{port}",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=30,
    )
    if result.returncode != 0:
        fail(f"repro-obs quality exited {result.returncode}: {result.stderr!r}")
    if "quality:" not in result.stdout:
        fail(f"repro-obs quality output unexpected: {result.stdout!r}")
    print("serve-smoke: repro-obs quality renders the live server")


def check_access_log(workdir: Path) -> None:
    """Every response we received must be one JSONL record with phases."""
    log_path = workdir / "access.jsonl"
    if not log_path.exists():
        fail("access log was not written")
    records = [json.loads(line) for line in log_path.read_text().splitlines()]
    by_id = {record["id"]: record for record in records}
    missing = [rid for rid in request_ids if rid not in by_id]
    if missing:
        fail(f"responses missing from the access log: {missing}")
    for rid in request_ids:
        if not by_id[rid].get("phases"):
            fail(f"access record lacks phase laps: {by_id[rid]}")
    print(f"serve-smoke: access log holds all {len(request_ids)} traced requests")


def stop(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=STOP_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"server did not exit within {STOP_TIMEOUT_S}s of SIGTERM")
    if proc.returncode != 0:
        fail(f"server exited with code {proc.returncode}: {proc.stdout.read()!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=".serve-smoke", metavar="DIR")
    args = parser.parse_args()
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    # Offline twin: the CLI builds PredictorSpec(predictor=name, lso=True)
    # for each --predictors entry, so feed the same spec the same trace.
    twin = StreamingPredictorState(default_specs(["ma10"])["ma10"])
    for value in SAMPLES:
        twin.ingest(value)
    expected = twin.prediction()

    proc, port = spawn(workdir)
    try:
        doc = http(port, "POST", "/paths/smoke-path/samples", {"samples": SAMPLES})
        if doc["accepted"] != len(SAMPLES):
            fail(f"expected {len(SAMPLES)} accepted samples, got {doc}")
        doc = http(port, "GET", "/paths/smoke-path/predict?predictor=ma10")
        if doc["prediction"] != expected:
            fail(f"online forecast {doc['prediction']!r} != offline {expected!r}")
        health = http(port, "GET", "/healthz")
        if health["paths"] != 1:
            fail(f"expected 1 tracked path, got {health}")
        print(f"serve-smoke: ingest+predict ok (forecast {expected:.4f} Mbps)")

        twin_quality = quality_twin()
        doc = http(port, "GET", "/paths/smoke-path/quality")
        if doc["predictors"] != twin_quality.path_summary("smoke-path"):
            fail(
                "online quality series diverges from the offline replay: "
                f"{doc['predictors']}"
            )
        print("serve-smoke: /quality matches the offline twin bit-for-bit")
        run_obs_quality(port)
    finally:
        stop(proc)

    snapshot = workdir / "state.json"
    manifest = workdir / "manifest.json"
    if not snapshot.exists():
        fail("snapshot file was not written on shutdown")
    if not manifest.exists():
        fail("manifest file was not written on shutdown")
    doc = json.loads(manifest.read_text())
    if doc.get("kind") != "serve":
        fail(f"manifest kind is {doc.get('kind')!r}, expected 'serve'")
    manifest_totals = (doc.get("quality") or {}).get("totals")
    expected_totals = quality_twin().summary()["totals"]
    if manifest_totals != expected_totals:
        fail(
            f"manifest quality totals {manifest_totals} != "
            f"offline replay {expected_totals}"
        )
    print("serve-smoke: shutdown wrote snapshot + manifest with quality totals")

    proc, port = spawn(workdir)
    try:
        doc = http(port, "GET", "/paths/smoke-path/predict?predictor=ma10")
        if doc["prediction"] != expected:
            fail(f"restored forecast {doc['prediction']!r} != offline {expected!r}")
        print("serve-smoke: snapshot restore is bit-identical")
    finally:
        stop(proc)

    check_access_log(workdir)
    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
