"""End-to-end smoke test for repro-serve (``make serve-smoke``).

Boots the real CLI as a subprocess on an ephemeral port, drives it over
HTTP, and checks the full lifecycle the unit tests can't cover from
inside one process:

1. ingest a short trace and read back a forecast that exactly matches
   an offline StreamingPredictorState fed the same samples;
2. SIGTERM → clean exit (code 0), snapshot and manifest written;
3. restart from the snapshot → the restored forecast is bit-identical.

Exits non-zero with a one-line reason on any failure.  Artifacts land
in --workdir (default .serve-smoke/).
"""

from __future__ import annotations

import argparse
import json
import os
import selectors
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.hb.streaming import StreamingPredictorState  # noqa: E402
from repro.serve.state import default_specs  # noqa: E402

SAMPLES = [42.0, 44.5, 41.8, 43.2, 150.0, 42.6, 43.9, 42.1, 44.0, 43.3]
START_TIMEOUT_S = 20.0
STOP_TIMEOUT_S = 20.0


def fail(reason: str) -> None:
    print(f"serve-smoke: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def spawn(workdir: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli.serve",
            "--port",
            "0",
            "--predictors",
            "ma10,ewma",
            "--snapshot",
            str(workdir / "state.json"),
            "--manifest",
            str(workdir / "manifest.json"),
            "--label",
            "serve-smoke",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The port is ephemeral: parse it from the startup line, with a
    # deadline so a broken server can't hang the smoke run.
    sel = selectors.DefaultSelector()
    sel.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + START_TIMEOUT_S
    banner = ""
    while time.monotonic() < deadline:
        if not sel.select(timeout=0.2):
            if proc.poll() is not None:
                fail(f"server exited during startup: {proc.stdout.read()!r}")
            continue
        banner += proc.stdout.readline()
        if "listening on http://" in banner:
            port = int(banner.rsplit(":", 1)[1])
            return proc, port
    proc.kill()
    fail(f"no startup banner within {START_TIMEOUT_S}s (got {banner!r})")
    raise AssertionError  # unreachable


def http(port: int, method: str, path: str, body: dict | None = None) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        fail(f"{method} {path} -> HTTP {exc.code}: {exc.read()!r}")
        raise AssertionError  # unreachable


def stop(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=STOP_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"server did not exit within {STOP_TIMEOUT_S}s of SIGTERM")
    if proc.returncode != 0:
        fail(f"server exited with code {proc.returncode}: {proc.stdout.read()!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=".serve-smoke", metavar="DIR")
    args = parser.parse_args()
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    # Offline twin: the CLI builds PredictorSpec(predictor=name, lso=True)
    # for each --predictors entry, so feed the same spec the same trace.
    twin = StreamingPredictorState(default_specs(["ma10"])["ma10"])
    for value in SAMPLES:
        twin.ingest(value)
    expected = twin.prediction()

    proc, port = spawn(workdir)
    try:
        doc = http(port, "POST", "/paths/smoke-path/samples", {"samples": SAMPLES})
        if doc["accepted"] != len(SAMPLES):
            fail(f"expected {len(SAMPLES)} accepted samples, got {doc}")
        doc = http(port, "GET", "/paths/smoke-path/predict?predictor=ma10")
        if doc["prediction"] != expected:
            fail(f"online forecast {doc['prediction']!r} != offline {expected!r}")
        health = http(port, "GET", "/healthz")
        if health["paths"] != 1:
            fail(f"expected 1 tracked path, got {health}")
        print(f"serve-smoke: ingest+predict ok (forecast {expected:.4f} Mbps)")
    finally:
        stop(proc)

    snapshot = workdir / "state.json"
    manifest = workdir / "manifest.json"
    if not snapshot.exists():
        fail("snapshot file was not written on shutdown")
    if not manifest.exists():
        fail("manifest file was not written on shutdown")
    doc = json.loads(manifest.read_text())
    if doc.get("kind") != "serve":
        fail(f"manifest kind is {doc.get('kind')!r}, expected 'serve'")
    print("serve-smoke: shutdown wrote snapshot + serve manifest")

    proc, port = spawn(workdir)
    try:
        doc = http(port, "GET", "/paths/smoke-path/predict?predictor=ma10")
        if doc["prediction"] != expected:
            fail(f"restored forecast {doc['prediction']!r} != offline {expected!r}")
        print("serve-smoke: snapshot restore is bit-identical")
    finally:
        stop(proc)

    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
