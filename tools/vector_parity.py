"""``make vector-parity``: prove the two fluid engines byte-identical.

Runs the same campaign twice — once on the scalar reference loop
(``REPRO_FLUID_VECTOR=0``, serial) and once on the vectorized engine at
each requested worker count — saves every run through the CSV writer,
and compares sha256 digests.  Any mismatch exits 1 and names the run.

The default invocation covers the acceptance bar of the vectorization
work: the full default catalog (may2004, 35 paths x 7 traces x 150
epochs, seed 0) must hash identically between engines at every worker
count.  ``--paths/--traces/--epochs`` shrink the campaign for quick
iteration; the reduced grid is what ``make test`` runs.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.fastpath.vector import ENV_FLUID_VECTOR  # noqa: E402
from repro.paths.config import (  # noqa: E402
    expanded_catalog,
    march_2006_catalog,
    may_2004_catalog,
)
from repro.testbed.campaign import Campaign, CampaignSettings  # noqa: E402
from repro.testbed.io import save_dataset  # noqa: E402

CATALOGS = {
    "may2004": may_2004_catalog,
    "march2006": march_2006_catalog,
}


def campaign_digest(
    engine: str,
    n_workers: int,
    catalog,
    settings: CampaignSettings,
    seed: int,
    workdir: Path,
) -> str:
    """Run the campaign on one engine and hash its CSV bytes."""
    os.environ[ENV_FLUID_VECTOR] = "1" if engine == "vector" else "0"
    try:
        dataset = Campaign(catalog, seed=seed).run(
            settings, n_workers=n_workers
        )
    finally:
        del os.environ[ENV_FLUID_VECTOR]
    path = workdir / f"{engine}-w{n_workers}.csv"
    save_dataset(dataset, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff scalar vs vectorized fluid-engine CSV digests."
    )
    parser.add_argument(
        "--catalog",
        choices=sorted(CATALOGS),
        default="may2004",
        help="path catalog (default: may2004)",
    )
    parser.add_argument(
        "--paths", type=int, default=None, metavar="N",
        help="restrict/expand the catalog to N paths (default: all)",
    )
    parser.add_argument(
        "--traces", type=int, default=7, metavar="N",
        help="traces per path (default: 7, the paper's)",
    )
    parser.add_argument(
        "--epochs", type=int, default=150, metavar="N",
        help="epochs per trace (default: 150, the paper's)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="worker counts for the vectorized runs (default: 1 2 4)",
    )
    args = parser.parse_args(argv)

    catalog = CATALOGS[args.catalog]()
    if args.paths is not None:
        catalog = expanded_catalog(catalog, args.paths)
    is_2006 = args.catalog == "march2006"
    settings = CampaignSettings(
        n_traces=args.traces,
        epochs_per_trace=args.epochs,
        transfer_duration_s=120.0 if is_2006 else 50.0,
        run_small_window=not is_2006,
        checkpoint_fractions=(0.25, 0.5, 1.0) if is_2006 else (),
    )
    shape = (
        f"{args.catalog}: {len(catalog)} paths x {args.traces} traces "
        f"x {args.epochs} epochs, seed {args.seed}"
    )
    print(f"vector-parity {shape}")

    failed = False
    with tempfile.TemporaryDirectory(prefix="vector-parity-") as tmp:
        workdir = Path(tmp)
        reference = campaign_digest(
            "scalar", 1, catalog, settings, args.seed, workdir
        )
        print(f"  scalar  workers=1  {reference}")
        for n_workers in args.workers:
            digest = campaign_digest(
                "vector", n_workers, catalog, settings, args.seed, workdir
            )
            match = digest == reference
            verdict = "ok" if match else "MISMATCH"
            print(f"  vector  workers={n_workers}  {digest}  {verdict}")
            failed = failed or not match
    if failed:
        print("vector-parity FAILED: engines disagree", file=sys.stderr)
        return 1
    print("vector-parity OK (CSV sha256 identical for every run)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
