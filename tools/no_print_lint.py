#!/usr/bin/env python
"""Lint: library code must not talk to stdout/stderr directly.

Checks every file under ``src/repro/`` outside ``cli/`` — including the
prediction pipeline (``analysis/``, ``hb/``, ``formulas/``) that feeds
the analysis-run manifests — for:

* bare ``print(...)`` calls;
* ``sys.stdout.write(...)`` / ``sys.stderr.write(...)`` calls.

Library code must report through :mod:`repro.obs` (metrics + structured
events), never by printing — prints from worker processes interleave,
escape ``--quiet``, and are invisible to the run manifest.  The CLI
layer is the one place allowed to talk to stdout/stderr.  String
*builders* (the ``summary()`` methods that return report text for the
CLI to print) are fine and untouched by this lint; anything that must
write directly anyway can be allowlisted in :data:`ALLOWLIST` as
``"relative/path.py:lineno"`` with a justification comment.

AST-based, so ``print`` mentioned in docstrings or comments is fine.
Exits non-zero listing offenders.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
ALLOWED = SRC / "cli"

#: Known-intentional direct-output sites: ``"src/repro/x.py:12"`` entries,
#: each with a comment saying why the site cannot go through repro.obs.
ALLOWLIST: frozenset[str] = frozenset({
    # AccessLog's `path="-"` mode: the operator explicitly routed the
    # JSONL access log to stdout (supervisor-owned log routing); the
    # record stream *is* the output, not diagnostics.
    "src/repro/serve/accesslog.py:176",
})


def _is_std_stream_write(node: ast.Call) -> bool:
    """True for ``sys.stdout.write(...)`` / ``sys.stderr.write(...)``."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "write"
        and isinstance(func.value, ast.Attribute)
        and func.value.attr in ("stdout", "stderr")
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id == "sys"
    )


def direct_output_calls(path: Path) -> list[tuple[int, str]]:
    """``(lineno, kind)`` of direct stdout/stderr output calls in a file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    offenders = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            offenders.append((node.lineno, "print()"))
        elif _is_std_stream_write(node):
            offenders.append((node.lineno, f"sys.{node.func.value.attr}.write()"))
    return offenders


def main() -> int:
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents:
            continue
        for lineno, kind in direct_output_calls(path):
            site = f"{path.relative_to(REPO_ROOT)}:{lineno}"
            if site in ALLOWLIST:
                continue
            offenders.append(f"{site}: {kind}")
    if offenders:
        print("direct stdout/stderr output outside src/repro/cli/ "
              "(use repro.obs instead):")
        for offender in offenders:
            print(f"  {offender}")
        return 1
    print("no-print lint OK (src/repro/ outside cli/ writes no stdout/stderr)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
