#!/usr/bin/env python
"""Lint: no bare ``print(`` calls in ``src/repro/`` outside ``cli/``.

Library code must report through :mod:`repro.obs` (metrics + structured
events), never by printing — prints from worker processes interleave,
escape ``--quiet``, and are invisible to the run manifest.  The CLI
layer is the one place allowed to talk to stdout/stderr.

AST-based, so ``print`` mentioned in docstrings or comments is fine.
Exits non-zero listing offenders.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
ALLOWED = SRC / "cli"


def print_calls(path: Path) -> list[int]:
    """Line numbers of bare ``print(...)`` calls in one file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def main() -> int:
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents:
            continue
        for lineno in print_calls(path):
            offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}")
    if offenders:
        print("bare print() outside src/repro/cli/ (use repro.obs instead):")
        for offender in offenders:
            print(f"  {offender}")
        return 1
    print("no-print lint OK (src/repro/ outside cli/ is print-free)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
