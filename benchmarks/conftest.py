"""Shared campaign datasets and reporting helpers for the benchmarks.

Each ``bench_figNN_*.py`` regenerates one figure of the paper: it runs
the corresponding analysis over a seeded campaign, prints the same
rows/series the paper plots, and writes them to ``benchmarks/output/``.

By default the campaign is reduced (the full 36 750-transfer campaign
takes ~30 s to simulate but makes every analysis slower); set
``REPRO_FULL_CAMPAIGN=1`` to run at the paper's full scale
(35 paths x 7 traces x 150 epochs, plus the 24-path 2006 set).
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.paths.config import march_2006_catalog, may_2004_catalog  # noqa: E402
from repro.testbed.cache import run_cached  # noqa: E402
from repro.testbed.campaign import Campaign, CampaignSettings  # noqa: E402

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

FULL = os.environ.get("REPRO_FULL_CAMPAIGN", "") == "1"

#: Campaigns are cached on disk (keyed by catalog/seed/settings/code
#: version) so repeated benchmark runs skip re-simulation.  Opt out with
#: REPRO_NO_CACHE=1; relocate with REPRO_CACHE_DIR.
USE_CACHE = os.environ.get("REPRO_NO_CACHE", "") != "1"

#: Worker processes for campaign simulation on a cache miss (0 = all CPUs).
N_WORKERS = int(os.environ.get("REPRO_CAMPAIGN_WORKERS", "1"))


def _dataset(campaign, settings):
    """Run a campaign through the on-disk cache (unless opted out)."""
    if not USE_CACHE:
        return campaign.run(settings, n_workers=N_WORKERS)
    dataset, _hit = run_cached(campaign, settings, n_workers=N_WORKERS)
    return dataset

#: Campaign scale: the paper's (7 x 150) or a fast reduced one (2 x 80).
#: 80 epochs keep Fig. 23's 45-minute down-sampling meaningful.
MAY_TRACES, MAY_EPOCHS = (7, 150) if FULL else (2, 80)
MARCH_TRACES, MARCH_EPOCHS = (3, 150) if FULL else (1, 40)

#: The seeds every benchmark (and EXPERIMENTS.md) uses.
MAY_SEED = 2004
MARCH_SEED = 2006


@pytest.fixture(scope="session")
def may2004():
    """The May-2004-style measurement set (Figs. 2-10, 12-23)."""
    campaign = Campaign(may_2004_catalog(), seed=MAY_SEED, label="may-2004")
    return _dataset(
        campaign, CampaignSettings(n_traces=MAY_TRACES, epochs_per_trace=MAY_EPOCHS)
    )


@pytest.fixture(scope="session")
def march2006():
    """The March-2006-style set: 120 s transfers, 30/60/120 s cuts (Fig. 11)."""
    campaign = Campaign(march_2006_catalog(), seed=MARCH_SEED, label="march-2006")
    return _dataset(
        campaign,
        CampaignSettings(
            n_traces=MARCH_TRACES,
            epochs_per_trace=MARCH_EPOCHS,
            transfer_duration_s=120.0,
            run_small_window=False,
            checkpoint_fractions=(0.25, 0.5, 1.0),
        )
    )


@pytest.fixture(scope="session")
def report_sink():
    """Writes each figure's text rendering to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return write


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a figure computation with a single timed round.

    The analyses are deterministic; one round gives a faithful timing
    without multiplying the suite's runtime by the calibration rounds.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
