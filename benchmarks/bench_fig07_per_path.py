"""Fig. 7 — per-path median and 10/90th-percentile FB error.

Paper: most paths overestimate; 4-5 paths mostly underestimate (mildly);
about 10 of the 35 paths have much larger errors and wider ranges,
reaching E = 10 and beyond (three more were excluded as excessive).
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_bar_table


def test_fig07_per_path_percentiles(benchmark, may2004, report_sink):
    summaries = run_once(benchmark, fb_eval.per_path_percentiles, may2004)
    rows = [
        (s.path_id, {"p10": s.p10, "median": s.median, "p90": s.p90})
        for s in summaries
    ]
    table = render_bar_table(
        rows, title="Fig. 7: per-path FB error percentiles", value_format="{:+.2f}"
    )
    negative = [s.path_id for s in summaries if s.median < 0]
    large = [s.path_id for s in summaries if s.p90 > 5.0]
    notes = (
        f"\npaths with negative median (underestimating): {negative} (paper: 4-5)"
        f"\npaths with p90 > 5 (poorly predictable): {large} (paper: ~10+3 excluded)"
    )
    report_sink("fig07_per_path", table + notes)
    assert 2 <= len(negative) <= 10
    assert len(large) >= 6
