"""Fig. 12 — FB RMSRE per path: W = 1 MB vs W = 20 KB transfers.

Paper: on every window-limited path the small-window transfer is more
predictable, often by a large factor; 14 of the 19 window-limited paths
have RMSRE below 1.0.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_bar_table


def test_fig12_window_limited_fb(benchmark, may2004, report_sink):
    comparisons = run_once(benchmark, fb_eval.window_limited, may2004)
    limited = [c for c in comparisons if c.window_limited]
    rows = [
        (
            c.path_id,
            {
                "W=1MB": c.rmsre_large_window,
                "W=20KB": c.rmsre_small_window,
                "W/(T^A^)": c.window_availbw_ratio,
            },
        )
        for c in limited
    ]
    table = render_bar_table(
        rows, title="Fig. 12: FB RMSRE, window-limited paths (log-scale in paper)"
    )
    better = sum(c.rmsre_small_window < c.rmsre_large_window for c in limited)
    below_one = sum(c.rmsre_small_window < 1.0 for c in limited)
    notes = (
        f"\nwindow-limited paths: {len(limited)}/35 (paper 19)"
        f"\nsmall window more predictable on {better}/{len(limited)} paths"
        f"\nsmall-window RMSRE < 1.0 on {below_one}/{len(limited)} (paper 14/19)"
    )
    report_sink("fig12_window_limited", table + notes)
    assert better / len(limited) > 0.8
