"""Fig. 19 — per-trace RMSRE CDFs: FB versus HB prediction.

Paper: HB gives RMSRE below 0.4 for ~90% of traces; the same percentile
of FB RMSRE is ~20, with a median around 2.  Where history exists, HB
should be preferred.
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_quantile_table


def test_fig19_fb_vs_hb(benchmark, may2004, report_sink):
    comp = run_once(benchmark, hb_eval.fb_vs_hb, may2004)
    table = render_quantile_table(
        {"FB": comp.fb, "HB (HW-LSO)": comp.hb},
        title="Fig. 19: per-trace RMSRE quantiles, FB vs HB",
    )
    report_sink("fig19_fb_vs_hb", table + "\n" + comp.summary())
    assert comp.hb.median() < comp.fb.median() / 2
