"""Ablation — what each layer of the LSO machinery contributes.

Four variants of the Holt-Winters predictor over the same campaign:

* ``HW``            — no LSO at all,
* ``HW-LSO(paper)`` — the paper's heuristics verbatim (restart on level
  shift, discard detected outliers),
* ``HW-LSO``        — plus this implementation's hardenings: the suspect
  trailing sample is quarantined from the base predictor, and forecasts
  are clamped to the observed history range.

The paper's claim (Section 5.3) is that LSO removes the large errors;
the hardenings target the residual worst cases (a fresh outlier
polluting one forecast; HW trend overshoot through zero).
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_quantile_table
from repro.hb.holt_winters import HoltWinters
from repro.hb.wrappers import LsoPredictor


def _variants():
    return {
        "HW": hb_eval.hw(),
        "HW-LSO(paper)": lambda: LsoPredictor(
            lambda: HoltWinters(0.8, 0.2), harden=False
        ),
        "HW-LSO": hb_eval.with_lso(hb_eval.hw()),
    }


def test_ablation_lso_layers(benchmark, may2004, report_sink):
    cdfs = run_once(benchmark, hb_eval.predictor_cdfs, may2004, _variants())
    table = render_quantile_table(
        cdfs,
        quantiles=(0.50, 0.90, 0.99, 1.0),
        title="Ablation: per-trace RMSRE of HW under LSO variants",
    )
    report_sink("ablation_lso", table)
    # The hardenings must tame the worst-case tail.  At full scale the
    # hardened worst case sits strictly below plain HW's; the reduced
    # default's few traces leave the sample maximum noisy, so allow a
    # small margin there rather than pin a coin flip.
    assert cdfs["HW-LSO"].quantile(1.0) <= cdfs["HW-LSO(paper)"].quantile(1.0)
    assert cdfs["HW-LSO"].quantile(1.0) <= 1.05 * cdfs["HW"].quantile(1.0)
