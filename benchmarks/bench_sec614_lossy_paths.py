"""Section 6.1.4 — HB error versus the a priori loss rate on lossy paths.

Paper: across all paths no single metric explained HB accuracy, *except*
on paths with a loss rate above 0.5% before the transfer, where the
RMSRE-vs-loss correlation ranged 0.72-0.94 — congested paths are harder
for HB too.

Reproduction caveat (see EXPERIMENTS.md): in this substrate the
correlation is positive but weak.  On the paper's paths the measured
loss was itself a congestion symptom, so it co-varied with throughput
volatility; our catalog assigns part of each path's loss as inherent
line noise, which predicts nothing about volatility.  The bench asserts
only that lossy paths are not *easier* than average — the robust part
of the claim.
"""

from repro.analysis import hb_eval
from repro.analysis.report import render_scatter_summary
from repro.core.errors import DataError

from benchmarks.conftest import run_once


def test_sec614_lossy_path_correlation(benchmark, may2004, report_sink):
    def compute(dataset):
        # The paper's 0.5% threshold leaves only a handful of our paths,
        # and a correlation over so few points is noise; use the largest
        # threshold that qualifies at least eight paths.
        for threshold in (0.005, 0.002, 0.001, 0.0005):
            try:
                relation = hb_eval.lossy_path_correlation(
                    dataset, min_loss=threshold
                )
            except DataError:
                continue
            if len(relation.path_ids) >= 8:
                return threshold, relation
        raise DataError("no threshold qualified enough paths")

    threshold, relation = run_once(benchmark, compute, may2004)
    table = render_scatter_summary(
        relation.loss_rates, relation.rmsres, "mean p^", "RMSRE", n_bins=4
    )
    text = (
        f"Section 6.1.4: HB RMSRE vs a priori loss (paths with p^ > {threshold})\n"
        f"{table}\ncorrelation: {relation.correlation():.2f} (paper 0.72-0.94)"
    )
    report_sink("sec614_lossy_paths", text)
    # Weak-form assertion; see the module docstring.  The correlation
    # over ~10 paths is noise-dominated (≈ −0.1 at full scale, wider at
    # the reduced default); the robust claim is the level, not the slope.
    assert relation.correlation() > -0.35
    assert float(relation.rmsres.mean()) >= 0.2
