"""Validation — a packet-level mini-campaign against the fluid model.

Runs a short trace of *packet-granularity* epochs (real TCP Reno, real
queues, real ping/pathload) on two representative paths, applies the FB
predictor of Eq. (3) to both this and the matching fluid-model trace,
and compares the error signatures.  This is the end-to-end check that
the fluid substrate running the full campaign produces the same
qualitative FB behaviour as the packet physics.

Epoch segments are shortened (8 s) to keep the default benchmark run
fast; set ``REPRO_PACKET_VALIDATION=1`` for paper-length 50 s epochs.
"""

import os

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.fb_eval import predict_epoch
from repro.analysis.report import render_bar_table
from repro.core.metrics import rmsre
from repro.formulas.fb_predictor import FormulaBasedPredictor
from repro.formulas.params import TcpParameters
from repro.fastpath.pathsim import FluidPathSimulator
from repro.paths.config import may_2004_catalog
from repro.paths.records import Trace
from repro.testbed.packet_epoch import PacketTraceRunner

FULL = os.environ.get("REPRO_PACKET_VALIDATION", "") == "1"
SEGMENT_S = 50.0 if FULL else 8.0
N_EPOCHS = 12 if FULL else 6

#: A congested mid-capacity path and a DSL path — the two FB stories.
VALIDATION_PATHS = ("p12", "p01")


def _mini_campaigns():
    fb = FormulaBasedPredictor(tcp=TcpParameters.congestion_limited())
    rows = []
    for path_id in VALIDATION_PATHS:
        config = next(c for c in may_2004_catalog() if c.path_id == path_id)

        # Pin both engines to the path's long-run load level so they
        # sample the same regime (their short-term draws still differ).
        packet_trace = PacketTraceRunner(
            config, np.random.default_rng(77), regime_mean=config.base_util
        ).run_trace(
            N_EPOCHS,
            transfer_duration_s=SEGMENT_S,
            pre_probe_duration_s=SEGMENT_S,
        )
        fluid_sim = FluidPathSimulator(
            config, np.random.default_rng(78), regime_mean=config.base_util
        )
        fluid_trace = Trace(path_id=config.path_id, trace_index=0)
        for index in range(N_EPOCHS):
            fluid_trace.append(
                fluid_sim.run_epoch(
                    config.path_id, 0, index, index * 170.0, 170.0,
                    TcpParameters.congestion_limited(),
                )
            )

        stats = {}
        for label, trace in (("packet", packet_trace), ("fluid", fluid_trace)):
            errors = [predict_epoch(e, fb).error for e in trace]
            throughputs = [e.throughput_mbps for e in trace]
            stats[f"{label} medR"] = float(np.median(throughputs))
            stats[f"{label} RMSRE"] = rmsre(errors)
            stats[f"{label} overest"] = float(np.mean([e > 0 for e in errors]))
        rows.append((path_id, stats))
    return rows


def test_validation_packet_vs_fluid(benchmark, report_sink):
    rows = run_once(benchmark, _mini_campaigns)
    table = render_bar_table(
        rows,
        title=(
            "Validation: FB behaviour on packet-level vs fluid mini-campaigns "
            f"({N_EPOCHS} epochs x {SEGMENT_S:.0f}s segments)"
        ),
    )
    report_sink("validation_packet", table)
    by_path = dict(rows)
    for path_id, stats in rows:
        # Throughputs in the same ballpark and real FB errors in both.
        ratio = stats["packet medR"] / stats["fluid medR"]
        assert 0.3 < ratio < 3.0, (path_id, ratio)
        assert stats["packet RMSRE"] > 0.2, path_id
        assert stats["fluid RMSRE"] > 0.15, path_id
    # The DSL path shows the paper's signature in both engines: heavy,
    # overestimation-dominant errors at low throughput.  The fractions
    # are quantized to 6 (or 12) epochs, so "dominant" here is a clear
    # majority, not the campaign-scale ~0.8.
    dsl = by_path["p01"]
    assert dsl["packet overest"] >= 0.6
    assert dsl["fluid overest"] >= 0.6
    assert dsl["packet medR"] < 0.6 and dsl["fluid medR"] < 0.6
