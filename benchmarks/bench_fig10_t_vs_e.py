"""Fig. 10 — a priori RTT versus FB error.

Paper: no positive correlation between T^ and the prediction error.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_scatter_summary


def test_fig10_rtt_vs_error(benchmark, may2004, report_sink):
    scatter = run_once(benchmark, fb_eval.rtt_vs_error, may2004)
    table = render_scatter_summary(
        scatter.x, scatter.errors, "T^ (s)", "E", n_bins=6
    )
    corr = scatter.correlation()
    report_sink(
        "fig10_t_vs_e",
        f"Fig. 10: T^ vs E (binned)\n{table}\ncorrelation: {corr:+.2f} (paper: none)",
    )
    assert corr < 0.4
