"""The hot-path performance benchmark suite (``make bench-perf``).

Measures the throughput of the two simulation hot paths and the
end-to-end campaign loop, and writes ``BENCH_perf.json`` at the
repository root:

* ``engine_micro`` — a pure discrete-event microbench: eight
  interleaved periodic callback chains through :class:`Simulator`, no
  packets, no RNG.  Isolates heap-entry comparison, scheduling, and
  dispatch cost; reported as events/s.
* ``packet_epoch`` — one packet-level measurement epoch
  (:class:`PacketEpochRunner`, path p12 at utilization 0.4), the
  workload behind the validation tests.  Reported as simulator events/s.
* ``fluid_trace`` — 600 fluid epochs (4 paths x 1 trace x 150) through
  :class:`Campaign.run_trace` on the *scalar* reference engine
  (``REPRO_FLUID_VECTOR=0``); reported as epochs/s.
* ``fluid_vector`` — the identical workload on the vectorized fluid
  engine; its ``epochs_per_s`` over ``fluid_trace``'s is the campaign
  speedup the engine exists for (the gate requires the same epoch
  count; wall time is what the ≥10x target in docs/performance.md is
  measured from).
* ``campaign_serial`` / ``campaign_parallel`` — the full campaign loop
  (catalog x traces x epochs through the executor, checkpointing and
  caching off) serially and with two workers, reported as wall time.
* ``hb_eval`` — walk-forward HB evaluation (the analysis hot path
  behind Figs. 16-23): the Fig. 16/17-style predictor set, LSO-wrapped
  and bare, over four 150-epoch campaign traces.  Reported as walked
  epochs/s; the ``forecasts`` counter is deterministic because predictor
  readiness is structural (history length), not value-dependent.
* ``lso_segmentation`` — the full-trace LSO pass behind Fig. 20's CoV
  and outlier exclusion, on three long synthetic traces with level
  shifts and outlier spikes; the O(n^2) -> O(n) rewrite is measured
  here.  The ``detections`` counter pins the exact LSO structure found.
* ``fluid_traced`` / ``fluid_vector_traced`` / ``packet_epoch_traced``
  — the same per-engine workloads run *inside an open unit span*, so
  epoch/phase span synthesis (:func:`repro.obs.spans.record_epoch_spans`)
  is live.  Each reports ``overhead_frac`` against a paired,
  interleaved untraced measurement; the run **fails** if any traced
  fixture exceeds the 5% overhead budget (``TRACED_OVERHEAD_BUDGET``),
  which is the enforcement teeth behind docs/observability.md's
  "tracing costs <5%" claim.

Every fixture's workload is deterministic (fixed seeds, fixed event
counts), so the ``epochs``/``events`` counts are exact across runs and
machines — only the wall-clock timings vary.  The report has the same
``fixtures`` shape as ``BENCH_obs.json``, so the ``repro-obs bench``
regression gate consumes it directly:

    repro-obs bench record BENCH_perf.json --name perf_baseline
    repro-obs bench check  BENCH_perf.json --name perf_baseline

``make perf-smoke`` re-measures and checks against the committed
baseline under ``benchmarks/baselines/`` with a tolerance loose enough
for shared-runner noise; see docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro._version import __version__  # noqa: E402
from repro.obs import get_telemetry  # noqa: E402
from repro.paths.config import may_2004_catalog  # noqa: E402
from repro.simnet.engine import Simulator  # noqa: E402
from repro.testbed.campaign import Campaign, CampaignSettings  # noqa: E402
from repro.testbed.packet_epoch import PacketEpochRunner  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Deterministic engine microbench scale.
ENGINE_EVENTS = 200_000
ENGINE_CHAINS = 8

#: Repetitions of the fast fixtures; the best run is reported (the
#: usual microbenchmark practice: the minimum is the least noisy
#: estimator of the true cost on a shared machine).
REPEATS = 3

#: Traced-overhead gate: span synthesis may cost at most this fraction
#: of the untraced wall time, measured pairwise (interleaved repeats,
#: best-of on both sides so scheduler noise largely cancels).
TRACED_OVERHEAD_BUDGET = 0.05
TRACED_REPEATS = 5


def bench_engine_micro() -> dict:
    """Pure event-loop throughput: interleaved periodic callback chains."""

    def run_once() -> tuple[int, float]:
        sim = Simulator()
        remaining = [ENGINE_EVENTS // ENGINE_CHAINS] * ENGINE_CHAINS
        periods = [0.001 * (i + 1) for i in range(ENGINE_CHAINS)]

        def make_chain(i: int):
            def chain() -> None:
                if remaining[i] > 0:
                    remaining[i] -= 1
                    sim.schedule(periods[i], chain)

            return chain

        for i in range(ENGINE_CHAINS):
            sim.schedule(periods[i], make_chain(i))
        started = time.perf_counter()
        sim.run()
        return sim.events_processed, time.perf_counter() - started

    events, wall = min((run_once() for _ in range(REPEATS)), key=lambda r: r[1])
    return {
        "events": events,
        "wall_time_s": round(wall, 4),
        "events_per_s": round(events / wall),
    }


def bench_packet_epoch() -> dict:
    """One packet-level epoch: the validation-path workload."""
    config = next(c for c in may_2004_catalog() if c.path_id == "p12")
    telemetry = get_telemetry()

    def run_once() -> tuple[int, float]:
        telemetry.drain()
        runner = PacketEpochRunner(config, np.random.default_rng(0))
        started = time.perf_counter()
        runner.run_epoch(
            utilization=0.4, transfer_duration_s=10.0, pre_probe_duration_s=10.0
        )
        wall = time.perf_counter() - started
        events = 0
        for entry in telemetry.drain()["counters"]:
            if entry["name"] == "simnet.events_processed":
                events = entry["value"]
        return events, wall

    events, wall = min((run_once() for _ in range(REPEATS)), key=lambda r: r[1])
    return {
        "epochs": 1,
        "events": events,
        "wall_time_s": round(wall, 4),
        "events_per_s": round(events / wall),
    }


def _bench_fluid(engine: str) -> dict:
    """Fluid-model epoch throughput, without executor overhead."""
    from repro.fastpath.vector import ENV_FLUID_VECTOR

    catalog = may_2004_catalog()[:4]
    settings = CampaignSettings(n_traces=1, epochs_per_trace=150)

    def run_once() -> tuple[int, float]:
        campaign = Campaign(catalog, seed=0, label="perf-fluid")
        started = time.perf_counter()
        epochs = sum(
            len(campaign.run_trace(config, 0, settings)) for config in catalog
        )
        return epochs, time.perf_counter() - started

    saved = os.environ.get(ENV_FLUID_VECTOR)
    os.environ[ENV_FLUID_VECTOR] = "1" if engine == "vector" else "0"
    try:
        epochs, wall = min(
            (run_once() for _ in range(REPEATS)), key=lambda r: r[1]
        )
    finally:
        if saved is None:
            del os.environ[ENV_FLUID_VECTOR]
        else:
            os.environ[ENV_FLUID_VECTOR] = saved
    return {
        "epochs": epochs,
        "wall_time_s": round(wall, 4),
        "epochs_per_s": round(epochs / wall, 1),
    }


def _bench_campaign(n_workers: int) -> dict:
    """The full campaign loop through the executor (no cache, no
    checkpointing), at the requested worker count."""
    settings = CampaignSettings(n_traces=2, epochs_per_trace=75)
    campaign = Campaign(may_2004_catalog(), seed=0, label="perf-campaign")
    started = time.perf_counter()
    dataset = campaign.run(settings, n_workers=n_workers)
    wall = time.perf_counter() - started
    epochs = len(dataset.epochs())
    return {
        "epochs": epochs,
        "wall_time_s": round(wall, 4),
        "epochs_per_s": round(epochs / wall, 1),
        "workers": n_workers,
    }


def _campaign_series(n_paths: int = 4, n_epochs: int = 150) -> list:
    """Deterministic throughput traces for the HB-analysis fixtures."""
    from repro.core.timeseries import TimeSeries

    catalog = may_2004_catalog()[:n_paths]
    settings = CampaignSettings(n_traces=1, epochs_per_trace=n_epochs)
    campaign = Campaign(catalog, seed=0, label="perf-hb")
    series = []
    for config in catalog:
        epochs = campaign.run_trace(config, 0, settings)
        series.append(
            TimeSeries.from_values(
                [e.throughput_mbps for e in epochs],
                period=180.0,
                name=config.path_id,
            )
        )
    return series


def bench_hb_eval() -> dict:
    """Walk-forward HB evaluation over the Fig. 16/17-style predictor set."""
    from repro.analysis.hb_eval import ewma, hw, ma, with_lso
    from repro.hb.evaluate import evaluate_predictor

    predictors = {
        "1-MA": ma(1),
        "10-MA": ma(10),
        "0.8-EWMA": ewma(0.8),
        "HW": hw(),
        "10-MA-LSO": with_lso(ma(10)),
        "HW-LSO": with_lso(hw()),
    }
    traces = _campaign_series()
    n_epochs = sum(len(series) for series in traces)

    def run_once() -> tuple[int, float]:
        forecasts = 0
        started = time.perf_counter()
        for series in traces:
            for factory in predictors.values():
                evaluation = evaluate_predictor(series, factory)
                forecasts += int(
                    np.count_nonzero(~np.isnan(evaluation.predictions))
                )
        return forecasts, time.perf_counter() - started

    forecasts, wall = min((run_once() for _ in range(REPEATS)), key=lambda r: r[1])
    epochs = n_epochs * len(predictors)
    return {
        "epochs": epochs,
        "forecasts": forecasts,
        "wall_time_s": round(wall, 4),
        "epochs_per_s": round(epochs / wall, 1),
    }


def bench_lso_segmentation() -> dict:
    """Full-trace LSO segmentation over long synthetic traces."""
    from repro.hb.evaluate import lso_segmentation

    rng = np.random.default_rng(987)
    traces = []
    for t in range(3):
        base = 30.0 + 5.0 * t
        n = 1500
        vals = base + rng.normal(0.0, 0.05 * base, size=n)
        vals[n // 3 :] *= 1.7
        vals[2 * n // 3 :] *= 0.55
        vals[::97] *= 2.4
        np.maximum(vals, 0.1, out=vals)
        traces.append(vals)
    epochs = sum(len(vals) for vals in traces)

    def run_once() -> tuple[int, float]:
        detections = 0
        started = time.perf_counter()
        for vals in traces:
            seg = lso_segmentation(vals)
            detections += len(seg.outlier_indices) + len(seg.shift_indices)
        return detections, time.perf_counter() - started

    detections, wall = min((run_once() for _ in range(REPEATS)), key=lambda r: r[1])
    return {
        "epochs": epochs,
        "detections": detections,
        "wall_time_s": round(wall, 4),
        "epochs_per_s": round(epochs / wall, 1),
    }


def _bench_fluid_traced(engine: str) -> dict:
    """Fluid throughput inside a live unit span, vs a paired untraced run.

    Traced and untraced runs interleave, and ``overhead_frac`` comes
    from adjacent pairs (each traced run ratioed against the untraced
    run just before it, best pair wins): a host-speed swing lands on
    both sides of a pair, so it cancels, while a real span-cost
    regression shows up in every pair.
    """
    from repro.fastpath.vector import ENV_FLUID_VECTOR

    catalog = may_2004_catalog()[:4]
    settings = CampaignSettings(n_traces=1, epochs_per_trace=150)
    telemetry = get_telemetry()

    def run_once(traced: bool) -> tuple[int, float]:
        campaign = Campaign(catalog, seed=0, label="perf-fluid")
        telemetry.drain()
        epochs = 0
        started = time.perf_counter()
        for config in catalog:
            if traced:
                with telemetry.span("trace", path=config.path_id, trace=0):
                    epochs += len(campaign.run_trace(config, 0, settings))
            else:
                epochs += len(campaign.run_trace(config, 0, settings))
        wall = time.perf_counter() - started
        telemetry.drain()
        return epochs, wall

    saved = os.environ.get(ENV_FLUID_VECTOR)
    os.environ[ENV_FLUID_VECTOR] = "1" if engine == "vector" else "0"
    try:
        untraced_walls, traced_walls = [], []
        for _ in range(TRACED_REPEATS):
            _, wall = run_once(False)
            untraced_walls.append(wall)
            epochs, wall = run_once(True)
            traced_walls.append(wall)
    finally:
        if saved is None:
            del os.environ[ENV_FLUID_VECTOR]
        else:
            os.environ[ENV_FLUID_VECTOR] = saved
    wall, untraced = min(traced_walls), min(untraced_walls)
    ratio = min(t / u for u, t in zip(untraced_walls, traced_walls))
    return {
        "epochs": epochs,
        "wall_time_s": round(wall, 4),
        "epochs_per_s": round(epochs / wall, 1),
        "untraced_wall_s": round(untraced, 4),
        "overhead_frac": round(max(0.0, ratio - 1.0), 4),
    }


def bench_packet_epoch_traced() -> dict:
    """One traced packet epoch vs a paired untraced one."""
    config = next(c for c in may_2004_catalog() if c.path_id == "p12")
    telemetry = get_telemetry()

    def run_once(traced: bool) -> float:
        telemetry.drain()
        runner = PacketEpochRunner(config, np.random.default_rng(0))
        started = time.perf_counter()
        if traced:
            with telemetry.span("trace", path=config.path_id, trace=0):
                runner.run_epoch(
                    utilization=0.4,
                    transfer_duration_s=10.0,
                    pre_probe_duration_s=10.0,
                )
        else:
            runner.run_epoch(
                utilization=0.4,
                transfer_duration_s=10.0,
                pre_probe_duration_s=10.0,
            )
        wall = time.perf_counter() - started
        telemetry.drain()
        return wall

    untraced_walls, traced_walls = [], []
    for _ in range(REPEATS):
        untraced_walls.append(run_once(False))
        traced_walls.append(run_once(True))
    wall, untraced = min(traced_walls), min(untraced_walls)
    # Adjacent-pair overhead, as in _bench_fluid_traced: host-speed
    # swings cancel within a pair instead of masquerading as span cost.
    ratio = min(t / u for u, t in zip(untraced_walls, traced_walls))
    return {
        "epochs": 1,
        "wall_time_s": round(wall, 4),
        "untraced_wall_s": round(untraced, 4),
        "overhead_frac": round(max(0.0, ratio - 1.0), 4),
    }


FIXTURES = {
    "engine_micro": bench_engine_micro,
    "packet_epoch": bench_packet_epoch,
    "fluid_trace": lambda: _bench_fluid("scalar"),
    "fluid_vector": lambda: _bench_fluid("vector"),
    "fluid_traced": lambda: _bench_fluid_traced("scalar"),
    "fluid_vector_traced": lambda: _bench_fluid_traced("vector"),
    "packet_epoch_traced": bench_packet_epoch_traced,
    "campaign_serial": lambda: _bench_campaign(1),
    "campaign_parallel": lambda: _bench_campaign(2),
    "hb_eval": bench_hb_eval,
    "lso_segmentation": bench_lso_segmentation,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure hot-path throughput and write a bench report."
    )
    parser.add_argument(
        "--output",
        default=str(OUTPUT),
        metavar="FILE",
        help=f"report path (default: {OUTPUT})",
    )
    parser.add_argument(
        "--fixtures",
        nargs="+",
        choices=sorted(FIXTURES),
        default=sorted(FIXTURES),
        metavar="NAME",
        help="subset of fixtures to run (default: all)",
    )
    parser.add_argument(
        "--pre-change",
        default=None,
        metavar="FILE",
        help="earlier bench report to embed under 'pre_change' for "
        "before/after comparison in the same file",
    )
    args = parser.parse_args(argv)
    if os.environ.get("REPRO_OBS", "1") == "0":
        print(
            "error: REPRO_OBS=0 — telemetry is required to count engine events",
            file=sys.stderr,
        )
        return 2

    report = {
        "bench": "perf",
        "code_version": __version__,
        "recorded_unix": round(time.time(), 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fixtures": {},
    }
    over_budget = []
    for name in sorted(args.fixtures):
        report["fixtures"][name] = FIXTURES[name]()
        entry = report["fixtures"][name]
        rate = entry.get("events_per_s") or entry.get("epochs_per_s") or ""
        unit = "events/s" if "events_per_s" in entry else "epochs/s"
        note = f" ({rate:,} {unit})" if rate else ""
        overhead = entry.get("overhead_frac")
        if overhead is not None:
            note += f" [span overhead {overhead * 100:.1f}%]"
            if overhead > TRACED_OVERHEAD_BUDGET:
                over_budget.append((name, overhead))
        print(f"  {name}: {entry['wall_time_s']}s{note}")

    if args.pre_change:
        previous = json.loads(Path(args.pre_change).read_text(encoding="utf-8"))
        report["pre_change"] = {
            "code_version": previous.get("code_version"),
            "recorded_unix": previous.get("recorded_unix"),
            "fixtures": previous.get("fixtures", {}),
        }

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if over_budget:
        for name, overhead in over_budget:
            print(
                f"error: {name} span overhead {overhead * 100:.1f}% exceeds "
                f"the {TRACED_OVERHEAD_BUDGET * 100:.0f}% budget",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
