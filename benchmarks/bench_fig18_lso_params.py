"""Fig. 18 — sensitivity of MA-5-LSO to the chi / psi thresholds.

Paper: the |E| CDF is nearly identical across chi and psi settings —
the LSO heuristics do not need tuning.
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_quantile_table


def test_fig18_lso_parameter_sensitivity(benchmark, may2004, report_sink):
    cdfs = run_once(
        benchmark,
        hb_eval.lso_sensitivity,
        may2004,
        5,
        (0.2, 0.3, 0.4),
        (0.3, 0.4, 0.5),
    )
    table = render_quantile_table(
        cdfs, title="Fig. 18: |E| quantiles of 5-MA-LSO across chi/psi"
    )
    report_sink("fig18_lso_params", table)
    medians = [cdf.median() for cdf in cdfs.values()]
    assert max(medians) - min(medians) < 0.1
