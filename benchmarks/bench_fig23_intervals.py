"""Fig. 23 — HB accuracy at longer transfer intervals (down-sampling).

Paper: accuracy degrades as the measurement period grows from 3 to 45
minutes, but stays reasonable — at 45 minutes, 65% of traces keep an
RMSRE below 0.4 and the 90th percentile stays below 1.0.
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_quantile_table


def test_fig23_transfer_intervals(benchmark, may2004, report_sink):
    cdfs = run_once(benchmark, hb_eval.interval_effect, may2004)
    table = render_quantile_table(
        cdfs, title="Fig. 23: per-trace RMSRE quantiles by transfer interval"
    )
    fractions = "\n".join(
        f"P(RMSRE < 0.4) at {label}: {cdf.fraction_below(0.4):.2f}"
        for label, cdf in cdfs.items()
    )
    report_sink("fig23_intervals", table + "\n" + fractions)
    assert cdfs["45min"].fraction_below(1.0) > 0.6
