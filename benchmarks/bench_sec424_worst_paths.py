"""Section 4.2.4 — drill-down into the ten worst-predicted paths.

Paper: 77% of the predictions on the ten highest-median-error paths are
PFTK-based, against 56% across all paths; on those paths the loss rate
rises significantly once the target flow starts while the RTT barely
moves — the signature of a bottleneck already congested before the
transfer.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval


def test_sec424_worst_paths(benchmark, may2004, report_sink):
    analysis = run_once(benchmark, fb_eval.worst_paths_analysis, may2004)
    report_sink("sec424_worst_paths", analysis.summary())
    assert analysis.lossy_fraction_worst > analysis.lossy_fraction_all
    assert analysis.mean_loss_ratio_worst > analysis.mean_rtt_ratio_worst
