"""Fig. 21 — per-path predictability classes.

Paper: paths fall into four classes — predictable (low RMSRE), small
stable errors, small but varying errors, and unpredictable (high
RMSRE) — i.e. predictability is strongly path-dependent.
"""

import collections

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_bar_table


def test_fig21_path_classes(benchmark, may2004, report_sink):
    classes = run_once(benchmark, hb_eval.path_classes, may2004)
    rows = [
        (
            f"{c.path_id} [{c.label}]",
            {
                name: sum(values) / len(values)
                for name, values in c.rmsres_by_predictor.items()
            },
        )
        for c in classes
    ]
    table = render_bar_table(
        rows, title="Fig. 21: mean per-trace RMSRE by predictor and path"
    )
    histogram = collections.Counter(c.label for c in classes)
    report_sink("fig21_path_classes", table + f"\nclass histogram: {dict(histogram)}")
    assert len(histogram) >= 2
