"""Fig. 6 — FB prediction using during-flow (T~, p~) vs a priori
(T^, p^) estimates, lossy epochs.

Paper: with during-flow inputs the error CDF becomes roughly symmetric
and much tighter (-3 < E < 3 for ~80%), yet more than half of the
predictions are still off by over a factor of two — the residual is the
periodic-probing vs TCP sampling mismatch.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig06_during_flow_inputs(benchmark, may2004, report_sink):
    comp = run_once(benchmark, fb_eval.during_flow_prediction, may2004)
    table = render_cdf_table(
        {"using (T^, p^)": comp.with_prior, "using (T~, p~)": comp.with_during},
        thresholds=(-3.0, -1.0, 0.0, 1.0, 3.0, 9.0),
        title="Fig. 6: error CDFs with prior vs during-flow estimates",
    )
    during = comp.with_during
    stats = (
        f"\nP(-3 < E < 3) during-flow: "
        f"{during.fraction_below(3.0) - during.fraction_below(-3.0):.2f} (paper ~0.8)"
        f"\noverestimation fraction during-flow: "
        f"{during.fraction_above(0.0):.2f} (paper ~0.5, symmetric)"
    )
    report_sink("fig06_during_flow", table + stats)
    prior_med = np.median(np.abs(comp.with_prior.sorted_values))
    during_med = np.median(np.abs(during.sorted_values))
    assert during_med < prior_med
