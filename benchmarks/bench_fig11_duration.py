"""Fig. 11 — FB accuracy against the first 30/60/120 s of each transfer
(the second, March 2006 measurement set).

Paper: no noticeable correlation between transfer duration and FB
prediction error.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig11_transfer_duration(benchmark, march2006, report_sink):
    effect = run_once(benchmark, fb_eval.duration_effect, march2006)
    table = render_cdf_table(
        effect.cdfs,
        thresholds=(-1.0, 0.0, 1.0, 3.0, 9.0),
        title="Fig. 11: error CDFs at 30/60/120 s cuts (2006 set)",
    )
    report_sink("fig11_duration", table)
    medians = [cdf.median() for cdf in effect.cdfs.values()]
    assert max(medians) - min(medians) < 1.0
