"""Extension — the paper's future-work predictors on the same campaign.

Compares, per trace:

* the paper's best evaluated predictor (HW-LSO),
* an AR(3) predictor with LSO ("more complex linear predictors"),
* the NWS-style adaptive ensemble (related work, Wolski et al.),
* the hybrid FB+HB predictor (Section 7's proposal).

The hybrid is evaluated with the honest protocol: at each epoch it sees
that epoch's *a priori* measurements plus the realized throughputs of
all earlier epochs — exactly the information an application would have.
For comparability with the pure-HB predictors (which produce no
forecast before their warm-up), the first ``WARMUP`` epochs are not
scored for any predictor; the hybrid's unique ability to forecast from
epoch zero (via FB) is its availability advantage, not part of this
accuracy comparison.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_quantile_table
from repro.core.metrics import Cdf, relative_error, rmsre
from repro.formulas.fb_predictor import FormulaBasedPredictor
from repro.formulas.params import PathEstimates, TcpParameters
from repro.hb.autoregressive import AutoRegressive
from repro.hb.holt_winters import HoltWinters
from repro.hb.hybrid import HybridPredictor
from repro.hb.nws import AdaptiveEnsemble


WARMUP = 5


def _hybrid_trace_rmsre(trace) -> float:
    hybrid = HybridPredictor(
        fb=FormulaBasedPredictor(tcp=TcpParameters.congestion_limited()),
        hb_factory=lambda: HoltWinters(0.8, 0.2),
    )
    errors = []
    for index, epoch in enumerate(trace):
        estimates = PathEstimates(
            rtt_s=epoch.that_s,
            loss_rate=epoch.phat,
            availbw_mbps=epoch.ahat_mbps,
        )
        if index >= WARMUP:
            errors.append(
                relative_error(hybrid.forecast(estimates), epoch.throughput_mbps)
            )
        hybrid.update(estimates, epoch.throughput_mbps)
    return rmsre(errors)


def _compare(dataset):
    hb_cdfs = hb_eval.predictor_cdfs(
        dataset,
        {
            "HW-LSO": hb_eval.with_lso(hb_eval.hw()),
            "AR(3)-LSO": hb_eval.with_lso(lambda: AutoRegressive(order=3)),
            "NWS-ensemble": AdaptiveEnsemble,
        },
    )
    hybrid_rmsres = [_hybrid_trace_rmsre(trace) for trace in dataset]
    hb_cdfs["Hybrid FB+HB"] = Cdf.from_values(hybrid_rmsres, label="Hybrid FB+HB")
    return hb_cdfs


def test_extension_predictor_comparison(benchmark, may2004, report_sink):
    cdfs = run_once(benchmark, _compare, may2004)
    table = render_quantile_table(
        cdfs,
        title="Extension: per-trace RMSRE of the future-work predictors",
    )
    notes = "\n".join(
        f"P(RMSRE < 0.4) {name}: {cdf.fraction_below(0.4):.2f}"
        for name, cdf in cdfs.items()
    )
    report_sink("extension_predictors", table + "\n" + notes)
    # The paper's conclusion extends: no candidate dramatically beats
    # HW-LSO, and the hybrid is competitive while also covering the
    # no-history cold start.
    reference = cdfs["HW-LSO"].median()
    assert cdfs["Hybrid FB+HB"].median() < reference * 2.0
    assert cdfs["NWS-ensemble"].median() < reference * 2.0
