"""Fig. 5 — CDF of the relative loss-rate increase during the target
flow (epochs lossy before the transfer only).

Paper: >70% of epochs have a relative increase above 1.25 (i.e. the
during-flow loss rate is more than 2.25x the a priori one); the mean
ratio is ~5.  The visible discretization comes from the 600-probe
estimates — reproduced here by the binomial sampling model.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig05_relative_loss_increase(benchmark, may2004, report_sink):
    inc = run_once(benchmark, fb_eval.increase_cdfs, may2004)
    table = render_cdf_table(
        {"relative loss increase": inc.loss_relative},
        thresholds=(-0.5, 0.0, 1.25, 3.0, 10.0),
        title="Fig. 5: relative loss increase (p~ - p^)/p^, lossy epochs",
    )
    table += f"\nmean loss ratio during/before: {inc.mean_loss_ratio:.2f} (paper ~5)"
    report_sink("fig05_rel_loss", table)
    assert inc.mean_loss_ratio > 2.0
