"""Counterfactual — RED at the bottleneck instead of drop-tail.

The paper's Section 3.3 error cause is the sampling mismatch: with a
drop-tail queue, losses cluster in the target flow's own overflow
bursts, so periodic probes under-observe them.  RED decouples drops
from instantaneous overflow (random early drops spread over time), so
probes and TCP sample much more similar loss processes — and the queue
runs shorter, shrinking the RTT inflation too.

Packet-level epochs on a congested 10 Mbps path, drop-tail vs RED.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.report import render_bar_table
from repro.paths.config import may_2004_catalog
from repro.testbed.packet_epoch import PacketEpochRunner

N_EPOCHS = 4
SEGMENT_S = 10.0


def _compare():
    config = next(c for c in may_2004_catalog() if c.path_id == "p12")
    rows = []
    for aqm in ("droptail", "red"):
        runner = PacketEpochRunner(config, np.random.default_rng(11), aqm=aqm)
        epochs = [
            runner.run_epoch(
                utilization=0.55,
                transfer_duration_s=SEGMENT_S,
                pre_probe_duration_s=SEGMENT_S,
                epoch_index=i,
            )
            for i in range(N_EPOCHS)
        ]
        rows.append(
            (
                aqm,
                {
                    "med R": float(np.median([e.throughput_mbps for e in epochs])),
                    "med T~ (ms)": float(
                        np.median([e.ttilde_s for e in epochs]) * 1000
                    ),
                    "med p~": float(np.median([e.ptilde for e in epochs])),
                    "RTT ratio": float(
                        np.median([e.ttilde_s / e.that_s for e in epochs])
                    ),
                },
            )
        )
    return rows


def test_red_counterfactual(benchmark, report_sink):
    rows = run_once(benchmark, _compare)
    table = render_bar_table(
        rows,
        title=(
            "Counterfactual: drop-tail vs RED bottleneck "
            f"(packet-level, {N_EPOCHS} epochs x {SEGMENT_S:.0f}s)"
        ),
        value_format="{:.3f}",
    )
    report_sink("red_counterfactual", table)
    stats = dict(rows)
    # RED keeps the during-transfer RTT inflation smaller.
    assert stats["red"]["RTT ratio"] <= stats["droptail"]["RTT ratio"] + 0.05
