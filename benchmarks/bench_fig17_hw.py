"""Fig. 17 — per-trace RMSRE CDFs for the Holt-Winters family.

Paper: alpha = 0.8 is close to optimal; LSO improves every variant; the
HW-LSO predictor edges out MA-LSO only slightly (few traces have linear
trends).
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_quantile_table


def test_fig17_holt_winters(benchmark, may2004, report_sink):
    cdfs = run_once(
        benchmark, hb_eval.predictor_cdfs, may2004, hb_eval.hw_family((0.2, 0.5, 0.8))
    )
    table = render_quantile_table(
        cdfs, title="Fig. 17: per-trace RMSRE quantiles, HW family"
    )
    report_sink("fig17_hw", table)
    assert cdfs["0.8-HW-LSO"].quantile(0.9) <= cdfs["0.8-HW"].quantile(0.9) * 1.15
