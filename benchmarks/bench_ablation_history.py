"""Ablation — how much history HB prediction actually needs.

The paper asserts (Section 6.2, finding 1) that 10-20 sporadic samples
suffice.  This ablation truncates every trace to its first N epochs and
reports the RMSRE over the final 10 forecasts of each truncated trace,
for N in {8, 15, 30, 60}.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_bar_table
from repro.core.metrics import rmsre
from repro.hb.evaluate import evaluate_predictor

HISTORY_LENGTHS = (8, 15, 30, 60)
EVAL_TAIL = 10


def _history_sweep(dataset):
    factory = hb_eval.with_lso(hb_eval.hw())
    results = {}
    for length in HISTORY_LENGTHS:
        per_trace = []
        for trace in dataset:
            series = trace.throughput_series()
            if len(series) < length:
                continue
            truncated = series[:length]
            evaluation = evaluate_predictor(truncated, factory)
            tail_errors = evaluation.valid_errors[-EVAL_TAIL:]
            if tail_errors.size:
                per_trace.append(rmsre(tail_errors))
        results[f"N={length}"] = per_trace
    return results


def test_ablation_history_length(benchmark, may2004, report_sink):
    results = run_once(benchmark, _history_sweep, may2004)
    rows = [
        (
            label,
            {
                "median": float(np.median(values)),
                "p90": float(np.quantile(values, 0.9)),
                "traces": float(len(values)),
            },
        )
        for label, values in results.items()
    ]
    table = render_bar_table(
        rows, title="Ablation: HW-LSO RMSRE (last 10 forecasts) vs history length"
    )
    report_sink("ablation_history", table)
    # A short history already performs within ~2x of a long one.
    assert np.median(results["N=15"]) < 2.5 * np.median(results["N=60"])
