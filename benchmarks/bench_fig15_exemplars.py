"""Fig. 15 — exemplar traces with level shifts / trends / outliers, and
the RMSRE of candidate predictors on each.

Paper panels (d)-(f): LSO materially reduces the error on traces with
shifts and outliers, and makes the predictor choice secondary.
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_bar_table


def test_fig15_exemplar_traces(benchmark, may2004, report_sink):
    examples = run_once(benchmark, hb_eval.exemplar_traces, may2004)
    rows = [
        (
            f"{e.trace_name} ({e.n_level_shifts} shifts, {e.n_outliers} outliers)",
            e.rmsres,
        )
        for e in examples
    ]
    table = render_bar_table(
        rows, title="Fig. 15d-f: RMSRE on traces with LSO structure"
    )
    report_sink("fig15_exemplars", table)
    assert examples
