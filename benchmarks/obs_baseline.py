"""Record the benchmark fixtures' wall time and phase timings.

Runs the same reduced campaigns the benchmark suite uses as fixtures
(``benchmarks/conftest.py``: may-2004 at 2x80, march-2006 at 1x40),
with telemetry on and the cache bypassed, and writes the aggregate
timings to ``BENCH_obs.json`` at the repository root.  Re-run with
``make bench-obs`` after performance work so the perf trajectory keeps
populating; ``repro-obs compare`` diffs two full manifests when more
detail is needed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro._version import __version__  # noqa: E402
from repro.obs import get_telemetry  # noqa: E402
from repro.paths.config import march_2006_catalog, may_2004_catalog  # noqa: E402
from repro.testbed.campaign import Campaign, CampaignSettings  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: The same reduced fixture scales as benchmarks/conftest.py.
FIXTURES = {
    "may2004": (
        lambda: Campaign(may_2004_catalog(), seed=2004, label="may-2004"),
        CampaignSettings(n_traces=2, epochs_per_trace=80),
    ),
    "march2006": (
        lambda: Campaign(march_2006_catalog(), seed=2006, label="march-2006"),
        CampaignSettings(
            n_traces=1,
            epochs_per_trace=40,
            transfer_duration_s=120.0,
            run_small_window=False,
            checkpoint_fractions=(0.25, 0.5, 1.0),
        ),
    ),
}


def record_fixture(name: str) -> dict:
    """Run one fixture campaign and aggregate its telemetry."""
    build, settings = FIXTURES[name]
    telemetry = get_telemetry()
    telemetry.drain()
    started = time.perf_counter()
    campaign = build()
    dataset = campaign.run(settings)
    wall_s = time.perf_counter() - started
    snapshot = telemetry.drain()

    from repro.obs.metrics import Timer

    phases = {}
    epoch_wall = None
    for entry in snapshot["timers"]:
        timer = Timer(entry["name"], entry["tags"])
        timer.samples = entry["samples"]
        if entry["name"] == "epoch.phase_s":
            phases[entry["tags"]["phase"]] = timer.stats()
        elif entry["name"] == "epoch.wall_s":
            epoch_wall = timer.stats()
    return {
        "wall_time_s": round(wall_s, 4),
        "epochs": len(dataset.epochs()),
        "epochs_per_s": round(len(dataset.epochs()) / wall_s, 1),
        "epoch_wall_s": epoch_wall,
        "phase_s": phases,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record benchmark fixture timings as a bench report."
    )
    parser.add_argument(
        "--output",
        default=str(OUTPUT),
        metavar="FILE",
        help=f"report path (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)
    output = Path(args.output)
    if os.environ.get("REPRO_OBS", "1") == "0":
        print("error: REPRO_OBS=0 — telemetry is required to record timings",
              file=sys.stderr)
        return 2
    report = {
        "bench": "obs_baseline",
        "code_version": __version__,
        "recorded_unix": round(time.time(), 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fixtures": {name: record_fixture(name) for name in FIXTURES},
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    for name, entry in report["fixtures"].items():
        print(f"  {name}: {entry['wall_time_s']}s for {entry['epochs']} epochs "
              f"({entry['epochs_per_s']} epochs/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
