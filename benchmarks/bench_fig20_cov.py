"""Fig. 20 — per-trace HW-LSO RMSRE against the trace CoV.

Paper: strong correlation (coefficient 0.91); as a first-order
approximation the RMSRE equals the CoV of the throughput series.
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_scatter_summary


def test_fig20_cov_vs_rmsre(benchmark, may2004, report_sink):
    relation = run_once(benchmark, hb_eval.cov_correlation, may2004)
    table = render_scatter_summary(
        relation.covs, relation.rmsres, "CoV", "RMSRE", n_bins=6
    )
    corr = relation.correlation()
    report_sink(
        "fig20_cov",
        f"Fig. 20: CoV vs HW-LSO RMSRE (binned)\n{table}"
        f"\ncorrelation: {corr:.2f} (paper 0.91)",
    )
    assert corr > 0.35
