"""Ablation — how non-stationarity drives the Fig. 23 degradation.

The paper's Fig. 23 finding (HB accuracy degrades with the transfer
interval) is a statement about non-stationarity: a sparser history
spans more level shifts and drift.  This ablation runs three versions
of the same catalog subset —

* ``stationary``   — level shifts and outliers disabled,
* ``baseline``     — the calibrated catalog,
* ``diurnal``      — plus a 24-hour utilization cycle (amplitude 0.15),

and reports the per-trace HW-LSO RMSRE at 3-minute and 45-minute
intervals.  Removing non-stationarity should flatten the degradation;
adding the diurnal cycle should steepen it.
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_bar_table
from repro.paths.config import may_2004_catalog, scaled_catalog
from repro.testbed.campaign import Campaign, CampaignSettings

N_PATHS = 10
EPOCHS = 160  # long traces so 45-min down-sampling keeps >= 10 samples


def _variants():
    base = scaled_catalog(may_2004_catalog(), N_PATHS)
    return {
        "stationary": [
            replace(c, shift_rate_per_hour=0.0, outlier_rate=0.0) for c in base
        ],
        "baseline": base,
        "diurnal": [replace(c, diurnal_amplitude=0.15) for c in base],
    }


def _sweep():
    rows = []
    factory = hb_eval.with_lso(hb_eval.hw())
    for label, catalog in _variants().items():
        campaign = Campaign(catalog, seed=55, label=label)
        dataset = campaign.run(
            CampaignSettings(
                n_traces=2, epochs_per_trace=EPOCHS, run_small_window=False
            )
        )
        cdfs = hb_eval.interval_effect(
            dataset, {"3min": 1, "45min": 15}, hb_factory=factory
        )
        rows.append(
            (
                label,
                {
                    "3min p50": cdfs["3min"].median(),
                    "45min p50": cdfs["45min"].median(),
                    "degradation": cdfs["45min"].median() / cdfs["3min"].median(),
                },
            )
        )
    return rows


def test_ablation_nonstationarity(benchmark, report_sink):
    rows = run_once(benchmark, _sweep)
    table = render_bar_table(
        rows,
        title="Ablation: interval degradation vs non-stationarity (HW-LSO RMSRE)",
    )
    report_sink("ablation_nonstationarity", table)
    stats = dict(rows)
    # More non-stationarity, steeper interval degradation.
    assert (
        stats["stationary"]["degradation"]
        <= stats["diurnal"]["degradation"] * 1.1
    )
