"""Fig. 4 — CDF of the relative RTT increase during the target flow.

Paper: ~20% of epochs have a relative increase above 0.5; the mean RTT
during the transfer is ~1.3x the pre-transfer RTT.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig04_relative_rtt_increase(benchmark, may2004, report_sink):
    inc = run_once(benchmark, fb_eval.increase_cdfs, may2004)
    table = render_cdf_table(
        {"relative RTT increase": inc.rtt_relative},
        thresholds=(0.0, 0.1, 0.25, 0.5, 1.0, 2.0),
        title="Fig. 4: relative RTT increase (T~ - T^)/T^",
    )
    table += f"\nmean RTT ratio during/before: {inc.mean_rtt_ratio:.2f} (paper ~1.3)"
    report_sink("fig04_rel_rtt", table)
    assert 1.0 < inc.mean_rtt_ratio < 2.5
