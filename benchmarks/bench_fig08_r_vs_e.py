"""Fig. 8 — actual throughput versus FB prediction error.

Paper: the large overestimations concentrate at low throughputs — 42%
of epochs with R <= 0.5 Mbps have E > 10, against 0.2% above 0.5 Mbps.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_scatter_summary


def test_fig08_throughput_vs_error(benchmark, may2004, report_sink):
    scatter = run_once(benchmark, fb_eval.throughput_vs_error, may2004)
    table = render_scatter_summary(
        scatter.x, scatter.errors, "R (Mbps)", "E", n_bins=8
    )
    low = scatter.fraction_large_error(0.5, error_threshold=10.0)
    high = scatter.fraction_large_error(0.5, error_threshold=10.0, below=False)
    notes = (
        f"\nP(E > 10 | R <= 0.5 Mbps) = {low:.2f} (paper 0.42)"
        f"\nP(E > 10 | R > 0.5 Mbps)  = {high:.4f} (paper 0.002)"
    )
    report_sink("fig08_r_vs_e", "Fig. 8: R vs E (binned)\n" + table + notes)
    assert low > 10 * max(high, 1e-3)
