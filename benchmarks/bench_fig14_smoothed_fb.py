"""Fig. 14 — FB with history-smoothed RTT and loss inputs.

Paper: smoothing the a priori (T^, p^) with a 10-sample moving average
changes the error CDF very little — estimation noise in the inputs is
not where the FB errors come from.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig14_smoothed_inputs(benchmark, may2004, report_sink):
    cdfs = run_once(benchmark, fb_eval.smoothed_inputs, may2004)
    table = render_cdf_table(
        cdfs,
        thresholds=(-1.0, 0.0, 1.0, 3.0, 9.0),
        title="Fig. 14: FB with latest vs 10-MA-smoothed inputs",
    )
    report_sink("fig14_smoothed_fb", table)
    assert abs(cdfs["smoothed"].median() - cdfs["plain"].median()) < 0.5
