"""Fig. 13 — FB error with the revised PFTK model.

Paper: the difference between the original and the revised PFTK
predictors is negligible compared to the overall FB errors — model
refinements cannot fix input errors.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig13_revised_pftk(benchmark, may2004, report_sink):
    cdfs = run_once(benchmark, fb_eval.revised_model_comparison, may2004)
    table = render_cdf_table(
        cdfs,
        thresholds=(-1.0, 0.0, 1.0, 3.0, 9.0),
        title="Fig. 13: original vs revised PFTK error CDFs",
    )
    report_sink("fig13_revised_pftk", table)
    original, revised = cdfs["original PFTK"], cdfs["revised PFTK"]
    assert abs(revised.median() - original.median()) < 0.5
