"""Fig. 16 — per-trace RMSRE CDFs for the Moving Average family.

Paper: the n-MA predictors (n < 20) perform very similarly except the
trivial 1-MA; LSO reduces the RMSRE significantly and flattens the
sensitivity to n.
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_quantile_table


def test_fig16_moving_average(benchmark, may2004, report_sink):
    cdfs = run_once(
        benchmark, hb_eval.predictor_cdfs, may2004, hb_eval.ma_family((1, 5, 10, 20))
    )
    table = render_quantile_table(
        cdfs, title="Fig. 16: per-trace RMSRE quantiles, MA family"
    )
    report_sink("fig16_ma", table)
    # LSO must not hurt, and the non-trivial orders must be close.
    assert cdfs["10-MA-LSO"].quantile(0.9) <= cdfs["10-MA"].quantile(0.9) * 1.15
    assert abs(cdfs["5-MA"].median() - cdfs["20-MA"].median()) < 0.15
