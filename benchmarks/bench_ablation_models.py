"""Ablation — the throughput model inside the FB predictor.

Swaps Eq. (3)'s lossy-path core between the Mathis square-root formula
(what RON used), the paper's PFTK approximation, the full PFTK model,
and the revised PFTK.  The paper's Fig. 13 point generalizes: model
choice barely moves the error CDF, because the inputs — not the model —
dominate FB errors.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table
from repro.core.metrics import Cdf
from repro.formulas.fb_predictor import MODEL_VARIANTS, FormulaBasedPredictor
from repro.formulas.params import TcpParameters


def _compare(dataset):
    tcp = TcpParameters.congestion_limited()
    return {
        model: Cdf.from_values(
            [
                r.error
                for r in fb_eval.evaluate(
                    dataset, FormulaBasedPredictor(tcp=tcp, model=model)
                )
            ],
            label=model,
        )
        for model in sorted(MODEL_VARIANTS)
    }


def test_ablation_fb_model_choice(benchmark, may2004, report_sink):
    cdfs = run_once(benchmark, _compare, may2004)
    table = render_cdf_table(
        cdfs,
        thresholds=(-1.0, 0.0, 1.0, 3.0, 9.0),
        title="Ablation: FB error CDFs across throughput models",
    )
    report_sink("ablation_models", table)
    medians = [cdf.median() for cdf in cdfs.values()]
    assert max(medians) - min(medians) < 1.0
