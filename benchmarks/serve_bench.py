"""The online-serving load benchmark (``make bench-serve``).

Measures the three layers of ``repro-serve`` and writes
``BENCH_serve.json`` at the repository root:

* ``streaming_ingest`` — the tentpole number: samples/s through one
  :class:`StreamingPredictorState` (``ma10`` + LSO, the default serve
  spec) on a synthetic trace with level shifts and outliers.  This is
  the layer the streaming refactor makes O(1) amortised; the offline
  wrapper replays the whole history per update and would be quadratic
  over the same stream.
* ``store_ops`` — ingest+predict operations/s through the sharded LRU
  store across many path keys, including eviction pressure.
* ``http_load`` — end-to-end requests/s over real sockets: keep-alive
  connections alternating sample ingest (POST) and forecast reads
  (GET) against the full app, single process — with per-request
  tracing (access log to a temp dir) and quality scoring ON, so the
  number gates the fully-instrumented configuration.
* ``quality`` — scores/s through :class:`QualityTracker` across many
  paths (the per-ingest cost the quality layer adds).
* ``access_log`` — records/s through :class:`AccessLog` including
  rotation (the per-request cost of tracing).

Sample and request counts are fixed, so the ``epochs`` counters are
exact across runs and machines — only wall-clock varies.  The report
has the same ``fixtures`` shape as ``BENCH_perf.json``, so the
``repro-obs bench`` regression gate consumes it directly:

    repro-obs bench record BENCH_serve.json --name serve_baseline
    repro-obs bench check  BENCH_serve.json --name serve_baseline

``make serve-smoke`` re-measures and checks against the committed
baseline under ``benchmarks/baselines/`` with a tolerance loose enough
for shared-runner noise; see docs/serving.md.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro._version import __version__  # noqa: E402
from repro.hb.streaming import PredictorSpec, StreamingPredictorState  # noqa: E402
from repro.obs.quality import QualityConfig, QualityTracker  # noqa: E402
from repro.serve.accesslog import AccessLog  # noqa: E402
from repro.serve.app import ServeApp  # noqa: E402
from repro.serve.http import serve_app  # noqa: E402
from repro.serve.state import ShardedStateStore, default_specs  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Fixed workload sizes (exact counters in the regression gate).
INGEST_SAMPLES = 20_000
STORE_OPS = 10_000
HTTP_REQUESTS = 4_000
HTTP_CONNECTIONS = 8
QUALITY_SCORES = 20_000
ACCESS_RECORDS = 10_000

#: Best-of repetitions (min is the least noisy estimator on a shared
#: machine).
REPEATS = 3


def synthetic_stream(n: int, seed: int = 3) -> list[float]:
    """A deterministic trace with regime shifts and outlier spikes."""
    rng = random.Random(seed)
    values, level = [], 40.0
    for i in range(n):
        if i % 500 == 250:
            level *= rng.choice([0.5, 2.0])
        value = level * rng.uniform(0.9, 1.1)
        if i % 37 == 11:
            value *= 3.0
        values.append(value)
    return values


def bench_streaming_ingest() -> dict:
    """samples/s through one StreamingPredictorState (ma10 + LSO)."""
    stream = synthetic_stream(INGEST_SAMPLES)
    spec = PredictorSpec(predictor="ma10", lso=True)

    def run_once() -> float:
        state = StreamingPredictorState(spec)
        started = time.perf_counter()
        for value in stream:
            state.ingest(value)
        return time.perf_counter() - started

    wall = min(run_once() for _ in range(REPEATS))
    return {
        "epochs": INGEST_SAMPLES,
        "wall_time_s": round(wall, 4),
        "samples_per_s": round(INGEST_SAMPLES / wall),
    }


def bench_store_ops() -> dict:
    """ingest+predict ops/s through the sharded LRU store."""
    stream = synthetic_stream(STORE_OPS)
    keys = [f"path-{i}" for i in range(64)]

    def run_once() -> float:
        store = ShardedStateStore(
            specs=default_specs(["ma10"]), n_shards=8, max_paths_per_shard=4
        )
        started = time.perf_counter()
        for i, value in enumerate(stream):
            store.ingest(keys[i % len(keys)], [value])
        return time.perf_counter() - started

    wall = min(run_once() for _ in range(REPEATS))
    return {
        "epochs": STORE_OPS,
        "wall_time_s": round(wall, 4),
        "ops_per_s": round(STORE_OPS / wall),
    }


def bench_quality() -> dict:
    """scores/s through the QualityTracker across rotating paths."""
    stream = synthetic_stream(QUALITY_SCORES)
    keys = [f"path-{i}" for i in range(32)]

    def run_once() -> float:
        tracker = QualityTracker(QualityConfig())
        started = time.perf_counter()
        forecast = stream[0]
        for i, value in enumerate(stream):
            tracker.score(keys[i % len(keys)], "ma10", forecast, value)
            forecast = value
        return time.perf_counter() - started

    wall = min(run_once() for _ in range(REPEATS))
    return {
        "epochs": QUALITY_SCORES,
        "wall_time_s": round(wall, 4),
        "scores_per_s": round(QUALITY_SCORES / wall),
    }


def bench_access_log() -> dict:
    """records/s through the AccessLog, rotation included."""

    def run_once(directory: str) -> float:
        log = AccessLog(Path(directory) / "access.jsonl", max_bytes=1024 * 1024)
        traces = []
        for _ in range(ACCESS_RECORDS):
            trace = log.begin()
            trace.lap("parse")
            trace.annotate(route="ingest", key="path-1")
            traces.append(trace)
        started = time.perf_counter()
        for trace in traces:
            log.record(trace, "POST", "/paths/path-1/samples", 200, 48, 391)
        wall = time.perf_counter() - started
        log.close()
        return wall

    with tempfile.TemporaryDirectory(prefix="serve-bench-") as directory:
        wall = min(run_once(directory) for _ in range(REPEATS))
    return {
        "epochs": ACCESS_RECORDS,
        "wall_time_s": round(wall, 4),
        "records_per_s": round(ACCESS_RECORDS / wall),
    }


async def _read_response(reader: asyncio.StreamReader) -> None:
    header = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in header.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    if length:
        await reader.readexactly(length)


async def _http_client(port: int, requests: int, offset: int) -> None:
    """Drive one keep-alive connection, pipelined in small windows.

    Pipelining (write a window of requests, then drain the responses)
    keeps the server's accept loop busy instead of measuring the event
    loop's per-round-trip latency — the point is server capacity.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    ingest_body = json.dumps({"samples": [42.5]}).encode()
    window = 16
    for start in range(0, requests, window):
        batch = min(window, requests - start)
        for i in range(start, start + batch):
            key = f"path-{(offset + i) % 32}"
            if i % 2 == 0:
                head = (
                    f"POST /paths/{key}/samples HTTP/1.1\r\nHost: b\r\n"
                    f"Content-Length: {len(ingest_body)}\r\n\r\n"
                ).encode()
                writer.write(head + ingest_body)
            else:
                writer.write(
                    f"GET /paths/{key}/predict HTTP/1.1\r\nHost: b\r\n\r\n".encode()
                )
        await writer.drain()
        for _ in range(batch):
            await _read_response(reader)
    writer.write(b"GET /healthz HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n")
    await writer.drain()
    await reader.read()
    writer.close()
    await writer.wait_closed()


async def _run_http_load(log_dir: str) -> float:
    # The fully-instrumented configuration: quality scoring (the store's
    # default tracker) plus per-request tracing into an access log.
    store = ShardedStateStore(specs=default_specs(["ma10", "ewma"]))
    app = ServeApp(store, label="serve-bench")
    access_log = AccessLog(Path(log_dir) / "access.jsonl")
    server = await serve_app(app.handle, port=0, access_log=access_log)
    port = server.sockets[0].getsockname()[1]
    per_client = HTTP_REQUESTS // HTTP_CONNECTIONS
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _http_client(port, per_client, offset=c * per_client)
            for c in range(HTTP_CONNECTIONS)
        )
    )
    wall = time.perf_counter() - started
    server.close()
    await server.wait_closed()
    access_log.close()
    return wall


def bench_http_load() -> dict:
    """End-to-end requests/s over keep-alive sockets, single process."""
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as log_dir:
        wall = min(asyncio.run(_run_http_load(log_dir)) for _ in range(REPEATS))
    return {
        "epochs": HTTP_REQUESTS,
        "wall_time_s": round(wall, 4),
        "requests_per_s": round(HTTP_REQUESTS / wall),
        "connections": HTTP_CONNECTIONS,
    }


FIXTURES = {
    "streaming_ingest": bench_streaming_ingest,
    "store_ops": bench_store_ops,
    "http_load": bench_http_load,
    "quality": bench_quality,
    "access_log": bench_access_log,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure serving-layer throughput and write a bench report."
    )
    parser.add_argument(
        "--output",
        default=str(OUTPUT),
        metavar="FILE",
        help=f"report path (default: {OUTPUT})",
    )
    parser.add_argument(
        "--fixtures",
        nargs="+",
        choices=sorted(FIXTURES),
        default=sorted(FIXTURES),
        metavar="NAME",
        help="subset of fixtures to run (default: all)",
    )
    args = parser.parse_args(argv)

    report = {
        "bench": "serve",
        "code_version": __version__,
        "recorded_unix": round(time.time(), 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fixtures": {},
    }
    for name in sorted(args.fixtures):
        report["fixtures"][name] = FIXTURES[name]()
        entry = report["fixtures"][name]
        rate_units = (
            "samples_per_s", "ops_per_s", "requests_per_s",
            "scores_per_s", "records_per_s",
        )
        rate = next((entry[u] for u in rate_units if u in entry), 0)
        unit = next(
            (u for u in rate_units if u in entry), ""
        ).replace("_per_s", "/s")
        print(f"  {name}: {entry['wall_time_s']}s ({rate:,} {unit})")

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
