"""The online-serving load benchmark (``make bench-serve``).

Measures the three layers of ``repro-serve`` and writes
``BENCH_serve.json`` at the repository root:

* ``streaming_ingest`` — the tentpole number: samples/s through one
  :class:`StreamingPredictorState` (``ma10`` + LSO, the default serve
  spec) on a synthetic trace with level shifts and outliers.  This is
  the layer the streaming refactor makes O(1) amortised; the offline
  wrapper replays the whole history per update and would be quadratic
  over the same stream.
* ``store_ops`` — ingest+predict operations/s through the sharded LRU
  store across many path keys, including eviction pressure.
* ``http_load`` — end-to-end requests/s over real sockets: keep-alive
  connections alternating sample ingest (POST) and forecast reads
  (GET) against the full app, single process — with per-request
  tracing (access log to a temp dir), request *span* emission at the
  default ``REPRO_TRACE_SAMPLE=1.0``, and quality scoring ON, so the
  number gates the fully-instrumented configuration.
* ``http_load_untraced`` — the same load with span sampling off
  (``trace_sample=0.0``); the delta to ``http_load`` is what span
  synthesis costs per request.  The two are measured interleaved and
  the span overhead taken from adjacent pairs, so host-speed swings
  cancel.  The run **fails** when the untraced rate clears
  ``HTTP_FLOOR_RPS`` (10k requests/s) but the traced rate — measured,
  and projected from the untraced rate plus the paired overhead —
  cannot: that means span emission itself broke the serving floor.  A
  machine that cannot reach the floor even untraced only warns
  (shared-runner throughput here swings 2x between runs; an
  unconditional absolute floor would gate on the hypervisor's mood,
  not on this code).
* ``quality`` — scores/s through :class:`QualityTracker` across many
  paths (the per-ingest cost the quality layer adds).
* ``access_log`` — records/s through :class:`AccessLog` including
  rotation (the per-request cost of tracing).

Sample and request counts are fixed, so the ``epochs`` counters are
exact across runs and machines — only wall-clock varies.  The report
has the same ``fixtures`` shape as ``BENCH_perf.json``, so the
``repro-obs bench`` regression gate consumes it directly:

    repro-obs bench record BENCH_serve.json --name serve_baseline
    repro-obs bench check  BENCH_serve.json --name serve_baseline

``make serve-smoke`` re-measures and checks against the committed
baseline under ``benchmarks/baselines/`` with a tolerance loose enough
for shared-runner noise; see docs/serving.md.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro._version import __version__  # noqa: E402
from repro.hb.streaming import PredictorSpec, StreamingPredictorState  # noqa: E402
from repro.obs import get_telemetry  # noqa: E402
from repro.obs.quality import QualityConfig, QualityTracker  # noqa: E402
from repro.serve.accesslog import AccessLog  # noqa: E402
from repro.serve.app import ServeApp  # noqa: E402
from repro.serve.http import serve_app  # noqa: E402
from repro.serve.state import ShardedStateStore, default_specs  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Fixed workload sizes (exact counters in the regression gate).
INGEST_SAMPLES = 20_000
STORE_OPS = 10_000
HTTP_REQUESTS = 4_000
HTTP_CONNECTIONS = 8
QUALITY_SCORES = 20_000
ACCESS_RECORDS = 10_000

#: Best-of repetitions (min is the least noisy estimator on a shared
#: machine).
REPEATS = 3

#: The fully-traced serving floor: ``http_load`` (request spans ON)
#: must clear this rate on any machine whose untraced rate clears it.
HTTP_FLOOR_RPS = 10_000


def synthetic_stream(n: int, seed: int = 3) -> list[float]:
    """A deterministic trace with regime shifts and outlier spikes."""
    rng = random.Random(seed)
    values, level = [], 40.0
    for i in range(n):
        if i % 500 == 250:
            level *= rng.choice([0.5, 2.0])
        value = level * rng.uniform(0.9, 1.1)
        if i % 37 == 11:
            value *= 3.0
        values.append(value)
    return values


def bench_streaming_ingest() -> dict:
    """samples/s through one StreamingPredictorState (ma10 + LSO)."""
    stream = synthetic_stream(INGEST_SAMPLES)
    spec = PredictorSpec(predictor="ma10", lso=True)

    def run_once() -> float:
        state = StreamingPredictorState(spec)
        started = time.perf_counter()
        for value in stream:
            state.ingest(value)
        return time.perf_counter() - started

    wall = min(run_once() for _ in range(REPEATS))
    return {
        "epochs": INGEST_SAMPLES,
        "wall_time_s": round(wall, 4),
        "samples_per_s": round(INGEST_SAMPLES / wall),
    }


def bench_store_ops() -> dict:
    """ingest+predict ops/s through the sharded LRU store."""
    stream = synthetic_stream(STORE_OPS)
    keys = [f"path-{i}" for i in range(64)]

    def run_once() -> float:
        store = ShardedStateStore(
            specs=default_specs(["ma10"]), n_shards=8, max_paths_per_shard=4
        )
        started = time.perf_counter()
        for i, value in enumerate(stream):
            store.ingest(keys[i % len(keys)], [value])
        return time.perf_counter() - started

    wall = min(run_once() for _ in range(REPEATS))
    return {
        "epochs": STORE_OPS,
        "wall_time_s": round(wall, 4),
        "ops_per_s": round(STORE_OPS / wall),
    }


def bench_quality() -> dict:
    """scores/s through the QualityTracker across rotating paths."""
    stream = synthetic_stream(QUALITY_SCORES)
    keys = [f"path-{i}" for i in range(32)]

    def run_once() -> float:
        tracker = QualityTracker(QualityConfig())
        started = time.perf_counter()
        forecast = stream[0]
        for i, value in enumerate(stream):
            tracker.score(keys[i % len(keys)], "ma10", forecast, value)
            forecast = value
        return time.perf_counter() - started

    wall = min(run_once() for _ in range(REPEATS))
    return {
        "epochs": QUALITY_SCORES,
        "wall_time_s": round(wall, 4),
        "scores_per_s": round(QUALITY_SCORES / wall),
    }


def bench_access_log() -> dict:
    """records/s through the AccessLog, rotation included."""

    def run_once(directory: str) -> float:
        # Spans ride the singleton's event buffer now; drain so repeats
        # measure from the same starting state (and memory stays flat).
        get_telemetry().drain()
        log = AccessLog(Path(directory) / "access.jsonl", max_bytes=1024 * 1024)
        traces = []
        for _ in range(ACCESS_RECORDS):
            trace = log.begin()
            trace.lap("parse")
            trace.annotate(route="ingest", key="path-1")
            traces.append(trace)
        started = time.perf_counter()
        for trace in traces:
            log.record(trace, "POST", "/paths/path-1/samples", 200, 48, 391)
        wall = time.perf_counter() - started
        log.close()
        return wall

    with tempfile.TemporaryDirectory(prefix="serve-bench-") as directory:
        wall = min(run_once(directory) for _ in range(REPEATS))
    return {
        "epochs": ACCESS_RECORDS,
        "wall_time_s": round(wall, 4),
        "records_per_s": round(ACCESS_RECORDS / wall),
    }


async def _read_response(reader: asyncio.StreamReader) -> None:
    header = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in header.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    if length:
        await reader.readexactly(length)


async def _http_client(port: int, requests: int, offset: int) -> None:
    """Drive one keep-alive connection, pipelined in small windows.

    Pipelining (write a window of requests, then drain the responses)
    keeps the server's accept loop busy instead of measuring the event
    loop's per-round-trip latency — the point is server capacity.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    ingest_body = json.dumps({"samples": [42.5]}).encode()
    window = 16
    for start in range(0, requests, window):
        batch = min(window, requests - start)
        for i in range(start, start + batch):
            key = f"path-{(offset + i) % 32}"
            if i % 2 == 0:
                head = (
                    f"POST /paths/{key}/samples HTTP/1.1\r\nHost: b\r\n"
                    f"Content-Length: {len(ingest_body)}\r\n\r\n"
                ).encode()
                writer.write(head + ingest_body)
            else:
                writer.write(
                    f"GET /paths/{key}/predict HTTP/1.1\r\nHost: b\r\n\r\n".encode()
                )
        await writer.drain()
        for _ in range(batch):
            await _read_response(reader)
    writer.write(b"GET /healthz HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n")
    await writer.drain()
    await reader.read()
    writer.close()
    await writer.wait_closed()


async def _run_http_load(log_dir: str, trace_sample: float | None) -> float:
    # The fully-instrumented configuration: quality scoring (the store's
    # default tracker) plus per-request tracing into an access log —
    # request spans at trace_sample (None = the REPRO_TRACE_SAMPLE
    # default, i.e. every request).
    get_telemetry().drain()
    store = ShardedStateStore(specs=default_specs(["ma10", "ewma"]))
    app = ServeApp(store, label="serve-bench")
    access_log = AccessLog(
        Path(log_dir) / "access.jsonl", trace_sample=trace_sample
    )
    server = await serve_app(app.handle, port=0, access_log=access_log)
    port = server.sockets[0].getsockname()[1]
    per_client = HTTP_REQUESTS // HTTP_CONNECTIONS
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _http_client(port, per_client, offset=c * per_client)
            for c in range(HTTP_CONNECTIONS)
        )
    )
    wall = time.perf_counter() - started
    server.close()
    await server.wait_closed()
    access_log.close()
    return wall


def _measure_http_pair() -> dict[str, dict]:
    """Measure traced and untraced http_load interleaved.

    The two configurations alternate within one pass (untraced, traced,
    untraced, traced, ...) so a host-speed swing lands on both equally;
    measuring them as back-to-back fixtures made the traced/untraced
    delta track the hypervisor, not the span code.
    """
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as log_dir:
        untraced_walls, traced_walls = [], []
        for _ in range(REPEATS):
            untraced_walls.append(asyncio.run(_run_http_load(log_dir, 0.0)))
            traced_walls.append(asyncio.run(_run_http_load(log_dir, None)))
    get_telemetry().drain()

    def entry(wall: float) -> dict:
        return {
            "epochs": HTTP_REQUESTS,
            "wall_time_s": round(wall, 4),
            "requests_per_s": round(HTTP_REQUESTS / wall),
            "connections": HTTP_CONNECTIONS,
        }

    # Overhead from adjacent pairs: each traced run is ratioed against
    # the untraced run that just preceded it, so both sides of the
    # ratio saw the same host-speed window.  min-of-mins would compare
    # runs from different windows and report the hypervisor's swing
    # (routinely 30%+) as span cost.
    ratios = [t / u for u, t in zip(untraced_walls, traced_walls)]
    traced = entry(min(traced_walls))
    traced["overhead_frac"] = round(max(0.0, min(ratios) - 1.0), 4)
    return {
        "http_load": traced,
        "http_load_untraced": entry(min(untraced_walls)),
    }


_HTTP_PAIR: dict[str, dict] = {}


def bench_http_load(name: str = "http_load") -> dict:
    """End-to-end requests/s over keep-alive sockets, single process.

    Both HTTP fixtures come from one interleaved measurement; whichever
    is requested first runs the pair and the second reads the cache.
    """
    if not _HTTP_PAIR:
        _HTTP_PAIR.update(_measure_http_pair())
    return _HTTP_PAIR[name]


FIXTURES = {
    "streaming_ingest": bench_streaming_ingest,
    "store_ops": bench_store_ops,
    "http_load": bench_http_load,
    "http_load_untraced": lambda: bench_http_load("http_load_untraced"),
    "quality": bench_quality,
    "access_log": bench_access_log,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure serving-layer throughput and write a bench report."
    )
    parser.add_argument(
        "--output",
        default=str(OUTPUT),
        metavar="FILE",
        help=f"report path (default: {OUTPUT})",
    )
    parser.add_argument(
        "--fixtures",
        nargs="+",
        choices=sorted(FIXTURES),
        default=sorted(FIXTURES),
        metavar="NAME",
        help="subset of fixtures to run (default: all)",
    )
    args = parser.parse_args(argv)

    report = {
        "bench": "serve",
        "code_version": __version__,
        "recorded_unix": round(time.time(), 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fixtures": {},
    }
    for name in sorted(args.fixtures):
        report["fixtures"][name] = FIXTURES[name]()
        entry = report["fixtures"][name]
        rate_units = (
            "samples_per_s", "ops_per_s", "requests_per_s",
            "scores_per_s", "records_per_s",
        )
        rate = next((entry[u] for u in rate_units if u in entry), 0)
        unit = next(
            (u for u in rate_units if u in entry), ""
        ).replace("_per_s", "/s")
        print(f"  {name}: {entry['wall_time_s']}s ({rate:,} {unit})")

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    traced = report["fixtures"].get("http_load")
    untraced = report["fixtures"].get("http_load_untraced")
    if traced and traced["requests_per_s"] < HTTP_FLOOR_RPS:
        if untraced and untraced["requests_per_s"] >= HTTP_FLOOR_RPS:
            # The machine can reach the floor untraced; project what
            # its best window sustains with spans on (paired overhead)
            # before blaming tracing — the traced best-of may simply
            # have missed the fast window the untraced best-of caught.
            projected = round(
                untraced["requests_per_s"] / (1.0 + traced["overhead_frac"])
            )
            if projected < HTTP_FLOOR_RPS:
                print(
                    f"error: fully-traced http_load sustains at most "
                    f"{projected:,} requests/s "
                    f"({traced['overhead_frac']:.1%} span overhead on the "
                    f"{untraced['requests_per_s']:,} untraced rate), below "
                    f"the {HTTP_FLOOR_RPS:,} floor",
                    file=sys.stderr,
                )
                return 1
            print(
                f"note: traced http_load measured "
                f"{traced['requests_per_s']:,} requests/s but projects to "
                f"{projected:,} at the untraced run's host speed — floor ok",
                file=sys.stderr,
            )
        else:
            print(
                f"warning: http_load at {traced['requests_per_s']:,} "
                f"requests/s is below the {HTTP_FLOOR_RPS:,} floor, but so "
                "is the untraced load — machine too slow to attribute the "
                "miss to tracing",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
