"""Fig. 22 — HB RMSRE per path: window-limited vs congestion-limited
transfers.

Paper: the W = 20 KB series has the lower RMSRE on essentially every
path, though the margin shrinks where the congestion-limited RMSRE is
already small.
"""

from benchmarks.conftest import run_once
from repro.analysis import hb_eval
from repro.analysis.report import render_bar_table


def test_fig22_hb_window_limited(benchmark, may2004, report_sink):
    comparisons = run_once(benchmark, hb_eval.window_limited_hb, may2004)
    rows = [
        (
            c.path_id,
            {"W=1MB": c.rmsre_large_window, "W=20KB": c.rmsre_small_window},
        )
        for c in comparisons
    ]
    table = render_bar_table(rows, title="Fig. 22: HB (HW-LSO) RMSRE per path")
    better = sum(
        c.rmsre_small_window < c.rmsre_large_window for c in comparisons
    )
    report_sink(
        "fig22_hb_window",
        table + f"\nsmall window lower on {better}/{len(comparisons)} paths",
    )
    assert better / len(comparisons) > 0.6
