"""Fig. 2 — CDF of the FB prediction error E.

Paper's series: all predictions, lossy-path (PFTK) predictions,
lossless-path (avail-bw) predictions.  Headline numbers: ~40% of all
predictions overestimate by more than 2x (E >= 1), ~10% by more than an
order of magnitude (E >= 9), only ~8% underestimate by more than 2x.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig02_fb_error_cdf(benchmark, may2004, report_sink):
    cdfs = run_once(benchmark, fb_eval.error_cdfs, may2004)
    table = render_cdf_table(
        {
            "all predictions": cdfs.all,
            "lossy (PFTK)": cdfs.lossy,
            "lossless (avail-bw)": cdfs.lossless,
        },
        thresholds=(-1.0, 0.0, 1.0, 2.0, 5.0, 9.0),
        title="Fig. 2: CDF of relative prediction error E",
    )
    report_sink("fig02_fb_error_cdf", table + "\n" + cdfs.summary())
    # Shape guards (paper Section 4.3, findings 1-2).
    assert cdfs.all.fraction_above(0.0) > 0.6
    assert cdfs.lossy.quantile(0.9) > cdfs.lossless.quantile(0.9)
