"""Fig. 9 — a priori loss rate versus FB error (lossy epochs).

Paper: no visible correlation between p^ and the prediction error.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_scatter_summary


def test_fig09_loss_vs_error(benchmark, may2004, report_sink):
    scatter = run_once(benchmark, fb_eval.loss_vs_error, may2004)
    table = render_scatter_summary(scatter.x, scatter.errors, "p^", "E", n_bins=6)
    corr = scatter.correlation()
    report_sink(
        "fig09_p_vs_e",
        f"Fig. 9: p^ vs E (binned)\n{table}\ncorrelation: {corr:+.2f} (paper: none)",
    )
    assert abs(corr) < 0.4
