"""Fig. 3 — CDF of the absolute RTT and loss-rate increase during the
target flow.

Paper: in ~50% of epochs the RTT did not increase significantly; in 10%
it rose by more than 100 ms; the loss rate rose by 0.1-2% in almost all
epochs.
"""

from benchmarks.conftest import run_once
from repro.analysis import fb_eval
from repro.analysis.report import render_cdf_table


def test_fig03_increase_cdf(benchmark, may2004, report_sink):
    inc = run_once(benchmark, fb_eval.increase_cdfs, may2004)
    table = render_cdf_table(
        {"RTT increase (s)": inc.rtt_absolute_s},
        thresholds=(0.0, 0.005, 0.02, 0.06, 0.1),
        title="Fig. 3a: absolute RTT increase during flow",
    )
    table += "\n\n" + render_cdf_table(
        {"loss increase": inc.loss_absolute},
        thresholds=(0.0, 0.001, 0.005, 0.02, 0.05),
        title="Fig. 3b: absolute loss-rate increase during flow",
    )
    report_sink("fig03_increase_cdf", table)
    assert inc.loss_absolute.fraction_above(0.0) > 0.3
