"""Pytest bootstrap: make ``src/`` importable without installation.

The offline environment lacks the ``wheel`` package, which breaks
``pip install -e .``; ``python setup.py develop`` works, but this shim
means the test and benchmark suites run even from a pristine checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
