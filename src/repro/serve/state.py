"""Sharded, LRU-bounded per-path predictor state for ``repro-serve``.

The store maps a *path key* (an opaque client-chosen identifier, e.g.
``"lulea-to-anl"``) to a bundle of
:class:`~repro.hb.streaming.StreamingPredictorState` instances — one per
configured :class:`~repro.hb.streaming.PredictorSpec` — all fed every
ingested sample, so a client can compare predictors on the same path
exactly as the paper does offline.

Keys are hashed (CRC-32, stable across processes and restarts) into a
fixed number of **shards**; each shard is an LRU-ordered dict with a
bounded capacity.  When a shard overflows, its least-recently-used path
is evicted (counted in ``serve.evictions``).  Sharding keeps eviction
pressure and the per-shard ``serve.shard_paths`` gauges local: one
chatty tenant fills one shard, not the whole store.

``snapshot()``/``restore()`` round-trip the entire store through plain
JSON-able dicts; :meth:`ShardedStateStore.save` writes atomically (temp
file + ``os.replace``) so a crash mid-save can never leave a torn
snapshot behind.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.errors import ConfigurationError, DataError
from repro.hb.streaming import (
    DEFAULT_SERVE_PREDICTORS,
    PredictorSpec,
    StreamingPredictorState,
)
from repro.obs import PhaseClock, get_telemetry, obs_enabled
from repro.obs.quality import QualityTracker

__all__ = ["SNAPSHOT_VERSION", "ShardedStateStore", "default_specs"]

#: Sentinel distinguishing "default quality tracking" from an explicit
#: ``quality=None`` (tracking off).
_DEFAULT_QUALITY = object()

#: Schema version of store snapshot files.
SNAPSHOT_VERSION = 1

#: Longest accepted path key (keys are URL path segments).
MAX_KEY_LENGTH = 200

#: One path's state: predictor name -> live streaming state.
PathStates = dict[str, StreamingPredictorState]


def default_specs(
    predictors: Iterable[str] = DEFAULT_SERVE_PREDICTORS,
) -> dict[str, PredictorSpec]:
    """The spec bundle maintained per path: LSO-wrapped, paper thresholds."""
    return {name: PredictorSpec(predictor=name, lso=True) for name in predictors}


def validate_key(key: str) -> str:
    """Check a client-supplied path key; returns it unchanged.

    Raises:
        DataError: empty, over-long, or containing ``/`` (keys are
            single URL path segments) or whitespace.
    """
    if not key:
        raise DataError("path key must be non-empty")
    if len(key) > MAX_KEY_LENGTH:
        raise DataError(f"path key too long ({len(key)} > {MAX_KEY_LENGTH} chars)")
    if "/" in key or any(c.isspace() for c in key):
        raise DataError(f"path key {key!r} must not contain '/' or whitespace")
    return key


class ShardedStateStore:
    """In-memory per-path predictor state, sharded and LRU-bounded.

    Args:
        specs: predictor bundle created for every new path; defaults to
            :func:`default_specs`.
        n_shards: number of shards (CRC-32 of the key, modulo).
        max_paths_per_shard: LRU capacity of each shard; the store holds
            at most ``n_shards * max_paths_per_shard`` paths.
        quality: the prediction-quality tracker scoring every ingested
            sample against the forecast that preceded it (see
            :class:`~repro.obs.quality.QualityTracker`).  Defaults to a
            fresh tracker; pass ``None`` to disable scoring entirely.
            Scoring is additionally skipped live while ``REPRO_OBS=0``.

    The store is designed for a single asyncio event loop: methods are
    plain synchronous CPU work with no awaits, so handlers never observe
    a half-applied mutation.
    """

    def __init__(
        self,
        specs: Mapping[str, PredictorSpec] | None = None,
        n_shards: int = 8,
        max_paths_per_shard: int = 128,
        quality: QualityTracker | None | object = _DEFAULT_QUALITY,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if max_paths_per_shard < 1:
            raise ConfigurationError(
                f"max_paths_per_shard must be >= 1, got {max_paths_per_shard}"
            )
        self.specs: dict[str, PredictorSpec] = dict(
            specs if specs is not None else default_specs()
        )
        if not self.specs:
            raise ConfigurationError("store needs at least one predictor spec")
        self.n_shards = n_shards
        self.max_paths_per_shard = max_paths_per_shard
        if quality is _DEFAULT_QUALITY:
            quality = QualityTracker()
        self.quality: QualityTracker | None = quality  # type: ignore[assignment]
        self._shards: list[OrderedDict[str, PathStates]] = [
            OrderedDict() for _ in range(n_shards)
        ]
        self.n_evicted = 0

    # -- lookup ----------------------------------------------------------

    def shard_index(self, key: str) -> int:
        """Stable shard of a key (CRC-32; survives restarts/processes)."""
        return zlib.crc32(key.encode("utf-8")) % self.n_shards

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: str) -> bool:
        return key in self._shards[self.shard_index(key)]

    def keys(self) -> list[str]:
        """All live path keys (shard by shard, LRU to MRU within each)."""
        return [key for shard in self._shards for key in shard]

    def get(self, key: str) -> PathStates | None:
        """The path's predictor states, refreshing its LRU position."""
        shard = self._shards[self.shard_index(key)]
        states = shard.get(key)
        if states is not None:
            shard.move_to_end(key)
        return states

    def get_or_create(self, key: str) -> PathStates:
        """The path's predictor states, creating (and possibly evicting)."""
        validate_key(key)
        index = self.shard_index(key)
        shard = self._shards[index]
        states = shard.get(key)
        if states is None:
            states = {
                name: StreamingPredictorState(spec)
                for name, spec in self.specs.items()
            }
            shard[key] = states
            if len(shard) > self.max_paths_per_shard:
                evicted_key, _ = shard.popitem(last=False)
                self.n_evicted += 1
                if self.quality is not None:
                    self.quality.drop(evicted_key)
                tele = get_telemetry()
                tele.counter("serve.evictions").inc()
                tele.emit("serve.evicted", key=evicted_key, shard=index)
        shard.move_to_end(key)
        return states

    def ingest(
        self,
        key: str,
        samples: Iterable[float],
        clock: PhaseClock | None = None,
    ) -> dict[str, Any]:
        """Feed samples to every predictor of a path.

        Each sample is scored by the quality tracker against the
        forecast that stood *before* it was ingested — the same
        walk-forward order as the offline evaluator, so the online
        error stream matches ``evaluate_predictor`` bit-for-bit.

        Args:
            key: the path key (created on first ingest).
            samples: the throughput samples, in arrival order.
            clock: optional request-phase clock; laps ``"store"`` after
                the path lookup and ``"ingest"`` after the batch.

        Returns a summary: per-predictor prediction after the batch plus
        accepted/invalid sample counts (invalid = non-positive or
        non-finite, flagged by the streaming layer, never raised).
        """
        states = self.get_or_create(key)
        if clock is not None:
            clock.lap("store")
        samples = list(samples)
        quality = self.quality if obs_enabled() else None
        invalid_before = sum(s.n_invalid for s in states.values())
        predictions: dict[str, float | None] = {}
        for name, state in states.items():
            last = state.prediction()
            if quality is None:
                for value in samples:
                    last = state.ingest(value)
            else:
                for value in samples:
                    previous = last
                    last = state.ingest(value)
                    if math.isfinite(value) and value > 0:
                        quality.score(
                            key,
                            name,
                            previous,
                            value,
                            level_shifts=state.n_level_shifts,
                        )
                    else:
                        quality.observe_invalid(key, name)
            predictions[name] = last
        if clock is not None:
            clock.lap("ingest")
        invalid_after = sum(s.n_invalid for s in states.values())
        n_specs = max(len(states), 1)
        n_invalid = (invalid_after - invalid_before) // n_specs
        return {
            "key": key,
            "accepted": len(samples) - n_invalid,
            "invalid": n_invalid,
            "predictions": predictions,
        }

    def shard_sizes(self) -> list[int]:
        """Live path count per shard (the ``serve.shard_paths`` gauges)."""
        return [len(shard) for shard in self._shards]

    def update_gauges(self) -> None:
        """Publish per-shard occupancy gauges to the process telemetry."""
        tele = get_telemetry()
        for index, size in enumerate(self.shard_sizes()):
            tele.gauge("serve.shard_paths", shard=str(index)).set(size)
        tele.gauge("serve.paths").set(len(self))

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The whole store as one JSON-able document."""
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "specs": {name: spec.to_dict() for name, spec in self.specs.items()},
            "n_shards": self.n_shards,
            "max_paths_per_shard": self.max_paths_per_shard,
            "paths": {
                key: {name: state.snapshot() for name, state in states.items()}
                for shard in self._shards
                for key, states in shard.items()
            },
        }

    def restore(self, doc: dict[str, Any]) -> int:
        """Load a :meth:`snapshot` document into this store.

        The store's own shard geometry is kept (snapshots are portable
        across ``--shards`` settings); per-path predictor state is
        restored bit-for-bit.  Returns the number of paths restored.

        Restore is **best effort per path**: a snapshot written under a
        different configuration (renamed predictors, smaller capacity)
        or partially corrupted must not take the server down on start.
        Unusable entries — invalid key, malformed entry, corrupt
        predictor state, a shard already at capacity — are skipped and
        counted (``serve.snapshot_skipped`` counter, one
        ``serve.snapshot_skip`` event each); snapshot predictors no
        longer registered on this store are dropped the same way while
        the rest of the path still restores, and registered predictors
        missing from the snapshot start fresh.

        Raises:
            DataError: structurally unusable snapshot (non-object
                document, bad version, missing ``paths``) — per-entry
                damage never raises.
        """
        if not isinstance(doc, dict):
            raise DataError("store snapshot must be a JSON object")
        version = doc.get("snapshot_version")
        if not isinstance(version, int) or version < 1:
            raise DataError(f"store snapshot has invalid version {version!r}")
        if version > SNAPSHOT_VERSION:
            raise DataError(
                f"store snapshot version {version} is newer than this "
                f"code understands ({SNAPSHOT_VERSION})"
            )
        paths = doc.get("paths")
        if not isinstance(paths, dict):
            raise DataError("store snapshot has no 'paths' object")
        for shard in self._shards:
            shard.clear()
        tele = get_telemetry()

        def skip(key: Any, reason: str) -> None:
            tele.counter("serve.snapshot_skipped").inc()
            tele.emit("serve.snapshot_skip", key=repr(key), reason=reason)

        restored = 0
        for key, states_doc in paths.items():
            try:
                validate_key(key)
            except DataError:
                skip(key, "invalid-key")
                continue
            if not isinstance(states_doc, dict):
                skip(key, "malformed-entry")
                continue
            shard = self._shards[self.shard_index(key)]
            if len(shard) >= self.max_paths_per_shard:
                skip(key, "shard-full")
                continue
            for name in states_doc:
                if name not in self.specs:
                    skip(key, f"unregistered-predictor:{name}")
            states: PathStates = {}
            try:
                for name, spec in self.specs.items():
                    state_doc = states_doc.get(name)
                    if state_doc is None:
                        states[name] = StreamingPredictorState(spec)
                    else:
                        states[name] = StreamingPredictorState.restore(state_doc)
            except (DataError, KeyError, TypeError, ValueError):
                skip(key, "corrupt-state")
                continue
            shard[key] = states
            restored += 1
        return restored

    def save(self, path: str | Path) -> Path:
        """Write the snapshot as JSON, atomically (temp + ``os.replace``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.snapshot(), sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):  # pragma: no cover - error path
                os.unlink(tmp_name)
        return path

    def load(self, path: str | Path) -> int:
        """Restore from a :meth:`save` file; returns paths restored.

        Raises:
            DataError: missing file or malformed snapshot.
        """
        path = Path(path)
        if not path.is_file():
            raise DataError(f"no store snapshot at {path}")
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DataError(f"{path} is not valid JSON: {exc}") from exc
        return self.restore(doc)
