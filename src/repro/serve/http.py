"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

``repro-serve`` needs exactly four things from HTTP: parse a request
line + headers + optional body, route it, send a response, and keep the
connection alive for the next request.  A full web framework is a
dependency this repo does not take, so this module implements that
subset directly on :mod:`asyncio` streams:

* keep-alive by default (HTTP/1.1 semantics; ``Connection: close`` and
  HTTP/1.0 honoured),
* bounded request head and body sizes (413/431 instead of unbounded
  buffering),
* malformed requests answered with a JSON 400 and the connection
  closed — a broken client never wedges a worker.

The handler contract is deliberately tiny: an ``async
handler(request) -> (status, payload)`` where the payload is a
JSON-able object, or a :class:`RawResponse` when a route needs a
non-JSON content type (the ``/metrics`` exposition).

When an :class:`~repro.serve.accesslog.AccessLog` is attached (and
``REPRO_OBS`` is not ``0``), every parsed request carries a
:class:`~repro.serve.accesslog.RequestTrace`: the trace clock starts
when the request **head has arrived** (keep-alive idle time between
requests is never attributed to a phase), header parsing + the body
read are lapped as ``"parse"``, handlers lap their own phases, and the
response write is lapped as ``"render"``.  The request id is echoed in
an ``X-Request-Id`` response header and the completed request is
written to the access log — including error responses; only
protocol-level failures that abort the connection before a request
exists go unrecorded.

The same laps feed the tracing pipeline: for sampled requests
(``REPRO_TRACE_SAMPLE``) the access log also records a span tree —
a root ``"request"`` span whose trace id **is** the ``X-Request-Id``,
with the phase laps as child spans — into the telemetry event stream
(see :mod:`repro.obs.spans`), servable live at ``GET /trace`` and
renderable with ``repro-obs trace``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

if TYPE_CHECKING:  # import cycle: accesslog only needed for typing
    from repro.serve.accesslog import AccessLog, RequestTrace

__all__ = [
    "HttpError",
    "HttpRequest",
    "RawResponse",
    "serve_app",
]

#: Hard limits keeping a misbehaving client from ballooning memory.
MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request-level failure with an HTTP status.

    Raised by the parser and by route handlers; converted into a JSON
    error response by the connection loop.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    keep_alive: bool = True
    #: per-request trace (set by the connection loop when tracing is on).
    trace: "RequestTrace | None" = None

    def json(self) -> Any:
        """The body decoded as JSON.

        Raises:
            HttpError: 400 on an empty or malformed body.
        """
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None


@dataclass
class RawResponse:
    """A non-JSON response payload (e.g. the OpenMetrics exposition)."""

    body: bytes
    content_type: str = "text/plain; charset=utf-8"
    headers: dict[str, str] = field(default_factory=dict)


Handler = Callable[[HttpRequest], Awaitable[tuple[int, Any]]]


async def read_request(
    reader: asyncio.StreamReader,
    access_log: "AccessLog | None" = None,
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    When ``access_log`` is given (and enabled), a trace is started the
    moment the request head has arrived — keep-alive idle time spent
    waiting for the next request is never attributed to a phase — and
    attached to the returned request, with header parsing + the body
    read lapped as ``"parse"``.

    Raises:
        HttpError: malformed request line/headers or over-limit sizes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head too large") from None
    trace = None
    if access_log is not None and access_log.enabled:
        trace = access_log.begin()
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, "request head too large")

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    connection = headers.get("connection", "").lower()
    keep_alive = version == "HTTP/1.1"
    if connection == "close":
        keep_alive = False
    elif connection == "keep-alive":
        keep_alive = True

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    if trace is not None:
        trace.lap("parse")
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
        trace=trace,
    )


def render_response(
    status: int,
    payload: Any,
    keep_alive: bool,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize a handler result into response bytes."""
    if isinstance(payload, RawResponse):
        body = payload.body
        content_type = payload.content_type
        extra = payload.headers
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        content_type = "application/json"
        extra = {}
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    lines.extend(f"{name}: {value}" for name, value in extra.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def _connection_loop(
    handler: Handler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    access_log: "AccessLog | None" = None,
) -> None:
    """Serve requests on one connection until close/EOF/parse error."""
    try:
        while True:
            try:
                request = await read_request(reader, access_log)
            except HttpError as exc:
                writer.write(
                    render_response(
                        exc.status, {"error": exc.message}, keep_alive=False
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            try:
                status, payload = await handler(request)
            except HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except Exception as exc:  # noqa: BLE001 - last-resort boundary
                # The service must answer something rather than drop the
                # connection; the error detail stays server-side.
                status, payload = 500, {"error": f"internal error: {type(exc).__name__}"}
            trace = request.trace
            extra_headers = None
            if trace is not None:
                if isinstance(payload, dict) and "error" in payload:
                    trace.annotate(error=payload["error"])
                extra_headers = {"X-Request-Id": trace.request_id}
            response = render_response(
                status, payload, request.keep_alive, extra_headers
            )
            writer.write(response)
            await writer.drain()
            if trace is not None and access_log is not None:
                trace.lap("render")
                access_log.record(
                    trace,
                    method=request.method,
                    path=request.path,
                    status=status,
                    bytes_in=len(request.body),
                    bytes_out=len(response),
                )
            if not request.keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def serve_app(
    handler: Handler,
    host: str = "127.0.0.1",
    port: int = 0,
    access_log: "AccessLog | None" = None,
) -> asyncio.AbstractServer:
    """Bind and start serving; returns the asyncio server (not awaited).

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.sockets[0].getsockname()[1]``.  ``access_log`` turns on
    per-request tracing (request ids, phase laps, JSONL records).
    """
    return await asyncio.start_server(
        lambda r, w: _connection_loop(handler, r, w, access_log),
        host=host,
        port=port,
        limit=MAX_HEAD_BYTES,
    )
