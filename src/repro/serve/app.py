"""``repro-serve`` request routing and instrumentation.

:class:`ServeApp` owns a :class:`~repro.serve.state.ShardedStateStore`
and exposes it over the routes below.  Every route is counted
(``serve.requests`` tagged by route, ``serve.bad_requests`` for 4xx)
and timed (``serve.request_s`` tagged by route); the live registry is
exported at ``/metrics`` in OpenMetrics text form, and the same
counters land in the ``kind: "serve"`` shutdown manifest the CLI
writes.

Routes
------

===========================================  ==================================
``GET /healthz``                             liveness + store occupancy
``GET /metrics``                             OpenMetrics exposition (live)
``GET /quality``                             prediction-quality summary
``GET /trace``                               recent request span trees
``POST /predict/fb``                         stateless FB prediction (Eq. 3)
``POST /paths/{key}/samples``                ingest throughput samples
``GET /paths/{key}/predict?predictor=NAME``  current HB forecast(s)
``GET /paths/{key}``                         per-path diagnostics
``GET /paths/{key}/quality``                 per-path forecast-error series
===========================================  ==================================

Errors are always JSON ``{"error": ...}`` with a proper status: 400 for
bad input (same messages as ``repro-predict`` — both surfaces share
:func:`~repro.formulas.params.fb_input_errors`), 404 for unknown paths,
405 for wrong methods.
"""

from __future__ import annotations

import re
import uuid
from time import monotonic, perf_counter
from typing import Any

from repro.core.errors import DataError, ReproError
from repro.formulas.fb_predictor import MODEL_VARIANTS, FormulaBasedPredictor
from repro.formulas.params import PathEstimates, TcpParameters, fb_input_errors
from repro.obs import get_telemetry, to_openmetrics
from repro.obs.metrics import Timer
from repro.obs.spans import span_ring_enabled, span_ring_snapshot
from repro.obs.telemetry import obs_enabled
from repro.serve.http import HttpError, HttpRequest, RawResponse
from repro.serve.state import ShardedStateStore

__all__ = ["OPENMETRICS_CONTENT_TYPE", "ServeApp"]

#: The content type the OpenMetrics spec requires of expositions.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_PATHS_RE = re.compile(r"^/paths/([^/]+)(?:/([a-z]+))?$")
_FLAG_RE = re.compile(r"--([a-z-]+)")


def _json_field_names(message: str) -> str:
    """Rewrite ``--rtt-ms``-style flag names to JSON field names."""
    return _FLAG_RE.sub(lambda m: m.group(1).replace("-", "_"), message)


def _number(doc: dict[str, Any], field: str, default: float | None) -> float | None:
    """A numeric JSON field, or its default; 400 on a non-number."""
    value = doc.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HttpError(400, f"{field} must be a number, got {value!r}")
    return float(value)


class ServeApp:
    """The route handler bound into the HTTP layer.

    Args:
        store: the per-path predictor state store.
        label: service label stamped into ``/metrics`` and manifests.
    """

    def __init__(self, store: ShardedStateStore, label: str = "repro-serve") -> None:
        self.store = store
        self.label = label
        self.run_id = uuid.uuid4().hex[:12]
        self._started_monotonic = monotonic()

    # -- dispatch ----------------------------------------------------------

    async def handle(self, request: HttpRequest) -> tuple[int, Any]:
        """Route one request; the HTTP layer's handler callable."""
        tele = get_telemetry()
        try:
            route, responder = self._route(request)
        except HttpError:
            tele.counter("serve.requests", route="unmatched").inc()
            tele.counter("serve.bad_requests").inc()
            raise
        if request.trace is not None:
            request.trace.annotate(route=route)
        started = perf_counter()
        try:
            status, payload = responder(request)
        except HttpError as exc:
            if 400 <= exc.status < 500:
                tele.counter("serve.bad_requests").inc()
            raise
        finally:
            tele.counter("serve.requests", route=route).inc()
            tele.timer("serve.request_s", route=route).observe(
                perf_counter() - started
            )
        return status, payload

    def _route(self, request: HttpRequest):
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET")
            return "healthz", self._healthz
        if path == "/metrics":
            self._require(method, "GET")
            return "metrics", self._metrics
        if path == "/quality":
            self._require(method, "GET")
            return "quality", self._quality
        if path == "/trace":
            self._require(method, "GET")
            return "trace", self._trace
        if path == "/predict/fb":
            self._require(method, "POST")
            return "predict_fb", self._predict_fb
        match = _PATHS_RE.match(path)
        if match:
            key, action = match.group(1), match.group(2)
            if action == "samples":
                self._require(method, "POST")
                return "ingest", lambda req: self._ingest(req, key)
            if action == "predict":
                self._require(method, "GET")
                return "predict_hb", lambda req: self._predict_hb(req, key)
            if action == "quality":
                self._require(method, "GET")
                return "path_quality", lambda req: self._path_quality(req, key)
            if action is None:
                self._require(method, "GET")
                return "path_info", lambda req: self._path_info(req, key)
        raise HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected} on this route")

    # -- routes --------------------------------------------------------------

    def _healthz(self, request: HttpRequest) -> tuple[int, Any]:
        return 200, {
            "status": "ok",
            "paths": len(self.store),
            "shards": self.store.shard_sizes(),
            "uptime_s": round(monotonic() - self._started_monotonic, 3),
        }

    def _metrics(self, request: HttpRequest) -> tuple[int, Any]:
        text = to_openmetrics(self.live_metrics_document())
        # Content negotiation: OpenMetrics is the default (the body *is*
        # the OpenMetrics exposition, `# EOF` included); plain scrapers
        # that ask only for text/plain get the text/plain label.
        accept = request.headers.get("accept", "")
        if "text/plain" in accept and "openmetrics" not in accept:
            content_type = "text/plain; charset=utf-8"
        else:
            content_type = OPENMETRICS_CONTENT_TYPE
        return 200, RawResponse(
            body=text.encode("utf-8"),
            content_type=content_type,
        )

    def _quality(self, request: HttpRequest) -> tuple[int, Any]:
        # REPRO_OBS=0 stops the store from scoring, so report the layer
        # as off rather than an enabled-but-empty tracker.
        quality = self.store.quality if obs_enabled() else None
        if quality is None:
            return 200, {"enabled": False}
        include_paths = request.query.get("paths") in ("1", "true")
        doc = quality.summary(include_paths=include_paths)
        doc["enabled"] = True
        return 200, doc

    def _trace(self, request: HttpRequest) -> tuple[int, Any]:
        """Recent request span trees (the live tracing window).

        Query params: ``trace=<X-Request-Id>`` restricts to one tree;
        ``limit=N`` bounds the span count (most recent last).  Spans
        come from the in-process ring the CLI installs at boot, so the
        window is the last ~4096 spans regardless of uptime.
        """
        if not obs_enabled() or not span_ring_enabled():
            return 200, {"enabled": False, "spans": []}
        limit_raw = request.query.get("limit")
        limit = None
        if limit_raw is not None:
            try:
                limit = max(0, int(limit_raw))
            except ValueError:
                raise HttpError(400, f"limit must be an integer, got {limit_raw!r}")
        trace_id = request.query.get("trace")
        if trace_id is not None:
            spans = [
                s for s in span_ring_snapshot()
                if s.get("trace_id") == trace_id
            ]
            if limit is not None:
                spans = spans[-limit:]
        else:
            spans = span_ring_snapshot(limit)
        return 200, {"enabled": True, "spans": spans}

    def _path_quality(self, request: HttpRequest, key: str) -> tuple[int, Any]:
        self._states_or_404(key)  # unknown path -> 404, like /paths/{key}
        quality = self.store.quality if obs_enabled() else None
        summary = quality.path_summary(key) if quality is not None else None
        return 200, {
            "key": key,
            "enabled": quality is not None,
            "predictors": summary or {},
        }

    def _predict_fb(self, request: HttpRequest) -> tuple[int, Any]:
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        rtt_ms = _number(doc, "rtt_ms", None)
        loss = _number(doc, "loss", None)
        if rtt_ms is None or loss is None:
            raise HttpError(400, "rtt_ms and loss are required")
        window_kb = _number(doc, "window_kb", 1000.0)
        mss = _number(doc, "mss", 1460.0)
        availbw = _number(doc, "availbw", None)
        model = doc.get("model", "pftk")
        if model not in MODEL_VARIANTS:
            raise HttpError(
                400, f"unknown model {model!r}; choose from {sorted(MODEL_VARIANTS)}"
            )
        problems = fb_input_errors(
            rtt_ms=rtt_ms, loss=loss, window_kb=window_kb, mss=mss, availbw=availbw
        )
        if problems:
            raise HttpError(
                400, "; ".join(_json_field_names(p) for p in problems)
            )
        try:
            tcp = TcpParameters(
                mss_bytes=int(mss), max_window_bytes=int(window_kb * 1000)
            )
            estimates = PathEstimates(
                rtt_s=rtt_ms / 1000.0, loss_rate=loss, availbw_mbps=availbw
            )
            predicted = FormulaBasedPredictor(tcp=tcp, model=model).predict(estimates)
        except (ReproError, ValueError) as exc:
            raise HttpError(400, str(exc)) from None
        get_telemetry().counter("serve.predictions").inc()
        return 200, {
            "predicted_mbps": predicted,
            "model": model,
            "lossless": estimates.lossless,
            "window_ceiling_mbps": tcp.max_window_bytes * 8 / estimates.rtt_s / 1e6,
        }

    def _ingest(self, request: HttpRequest, key: str) -> tuple[int, Any]:
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        if "samples" in doc:
            samples = doc["samples"]
        elif "sample" in doc:
            samples = [doc["sample"]]
        else:
            raise HttpError(400, "body needs 'samples' (list) or 'sample' (number)")
        if not isinstance(samples, list):
            raise HttpError(400, f"samples must be a list, got {samples!r}")
        values: list[float] = []
        for k, value in enumerate(samples):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise HttpError(400, f"samples[{k}] must be a number, got {value!r}")
            values.append(float(value))
        trace = request.trace
        try:
            summary = self.store.ingest(
                key, values, clock=trace.clock if trace is not None else None
            )
        except DataError as exc:
            raise HttpError(400, str(exc)) from None
        if trace is not None:
            trace.annotate(key=key)
        tele = get_telemetry()
        tele.counter("serve.ingested").inc(summary["accepted"])
        return 200, summary

    def _states_or_404(self, key: str):
        states = self.store.get(key)
        if states is None:
            raise HttpError(404, f"unknown path key {key!r} (ingest samples first)")
        return states

    def _predict_hb(self, request: HttpRequest, key: str) -> tuple[int, Any]:
        trace = request.trace
        states = self._states_or_404(key)
        if trace is not None:
            trace.annotate(key=key)
            trace.lap("store")
        name = request.query.get("predictor")
        tele = get_telemetry()
        if name is None:
            predictions = {n: s.prediction() for n, s in states.items()}
            if trace is not None:
                trace.lap("predict")
            tele.counter("serve.predictions").inc()
            return 200, {"key": key, "predictions": predictions}
        state = states.get(name)
        if state is None:
            raise HttpError(
                400,
                f"predictor {name!r} is not configured for this service; "
                f"choose from {sorted(states)}",
            )
        prediction = state.prediction()
        if trace is not None:
            trace.lap("predict")
        tele.counter("serve.predictions").inc()
        return 200, {
            "key": key,
            "predictor": name,
            "prediction": prediction,
            "ready": state.ready,
            "n_observed": state.n_observed,
        }

    def _path_info(self, request: HttpRequest, key: str) -> tuple[int, Any]:
        states = self._states_or_404(key)
        return 200, {
            "key": key,
            "shard": self.store.shard_index(key),
            "predictors": {n: s.diagnostics() for n, s in states.items()},
        }

    # -- metrics -----------------------------------------------------------

    def live_metrics_document(self) -> dict[str, Any]:
        """A manifest-shaped view of the live registry for ``/metrics``.

        Non-destructive: uses ``MetricsRegistry.snapshot()``, not
        ``drain()``, so the shutdown manifest still sees everything.
        """
        self.store.update_gauges()
        if self.store.quality is not None:
            self.store.quality.update_gauges()
        snapshot = get_telemetry().metrics.snapshot()
        timers = []
        for entry in snapshot.get("timers", ()):
            timer = Timer(entry["name"], entry["tags"])
            timer.samples = entry["samples"]
            timers.append({"name": timer.name, "tags": timer.tags, **timer.stats()})
        return {
            "run_id": self.run_id,
            "kind": "serve",
            "label": self.label,
            "wall_time_s": monotonic() - self._started_monotonic,
            "counters": snapshot.get("counters", []),
            "gauges": snapshot.get("gauges", []),
            "timers": timers,
        }
