"""``repro.serve`` — the online prediction service behind ``repro-serve``.

The analysis pipeline evaluates predictors over *recorded* traces; this
package serves the same predictors *online*: a long-running asyncio
HTTP service holds per-path streaming predictor state
(:class:`~repro.hb.streaming.StreamingPredictorState`) and answers

* ``POST /paths/{key}/samples`` — ingest throughput samples for a path,
* ``GET /paths/{key}/predict?predictor=NAME`` — the current HB forecast,
* ``POST /predict/fb`` — the stateless formula-based prediction (Eq. 3),

at interactive request rates.  Three layers:

* :mod:`repro.serve.state` — :class:`ShardedStateStore`: sharded,
  LRU-bounded per-path predictor state with atomic JSON
  snapshot/restore;
* :mod:`repro.serve.http` — a minimal HTTP/1.1 layer over asyncio
  streams (stdlib only; keep-alive, bounded bodies);
* :mod:`repro.serve.app` — :class:`ServeApp`: routing, request
  validation, ``repro.obs`` instrumentation, and the live
  ``/metrics`` exposition.

Everything is stdlib + the existing ``repro`` packages: no web
framework, no new dependencies.
"""

from repro.serve.app import ServeApp
from repro.serve.http import HttpError, HttpRequest, serve_app
from repro.serve.state import ShardedStateStore, default_specs

__all__ = [
    "HttpError",
    "HttpRequest",
    "ServeApp",
    "ShardedStateStore",
    "default_specs",
    "serve_app",
]
