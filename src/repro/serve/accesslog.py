"""Per-request tracing and the structured JSONL access log.

Every request ``repro-serve`` parses gets a :class:`RequestTrace`: a
process-unique request id (echoed back as the ``X-Request-Id`` response
header) and a :class:`~repro.obs.telemetry.PhaseClock` that the HTTP
layer and route handlers lap through the request's phases::

    parse -> store -> ingest | predict | render

so a slow or erroring request is attributable to a phase and a path
key.  When the request completes (success *or* error response), the
:class:`AccessLog` writes one JSON object per line::

    {"ts": 1754650000.123456, "id": "9f3ac2d1-00000007", "method": "POST",
     "path": "/paths/lulea-to-anl/samples", "status": 200, "route": "ingest",
     "key": "lulea-to-anl", "elapsed_s": 0.000213,
     "phases": {"parse": 0.00003, "store": 0.00001, "ingest": 0.00012,
                "render": 0.00005}, "bytes_in": 48, "bytes_out": 391}

Durability properties:

* **atomic lines** — each record is a single ``write()`` of one
  ``\\n``-terminated line on an unbuffered ``O_APPEND`` handle, so
  concurrent tailing never sees a torn record and a crash loses
  nothing already recorded;
* **size-rotated** — when the file would exceed ``max_bytes`` the
  current file is renamed to ``<path>.1`` (``os.replace``, atomic,
  replacing any previous ``.1``) and a fresh file starts, bounding disk
  to ~2x ``max_bytes``;
* **kill-switched** — while ``REPRO_OBS=0`` no trace is created, no
  file is opened, and nothing is written (the handle opens lazily on
  the first record).

``path="-"`` logs to stdout instead of a file (useful under a process
supervisor that owns log routing); that writer is the one allowlisted
exception to the no-print lint.

Protocol-level failures (malformed request line, oversized head) close
the connection before a request exists, so they are counted by the
``serve.bad_requests`` counter but produce no access-log record.
"""

from __future__ import annotations

import json
import os
import sys
import uuid
from pathlib import Path
from time import time
from typing import Any, BinaryIO

from repro.obs.metrics import Counter
from repro.obs.spans import (
    record_request_spans,
    sample_decision,
    trace_sample_rate,
)
from repro.obs.telemetry import PhaseClock, get_telemetry, obs_enabled

__all__ = ["AccessLog", "RequestTrace", "DEFAULT_MAX_BYTES"]

#: Rotation threshold of the access-log file (~80k records).
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

#: Compact encoder for non-string annotation values (rare path); the
#: common record line is hand-assembled in :meth:`AccessLog.record`.
_encode = json.JSONEncoder(check_circular=False, separators=(",", ":")).encode
#: C-accelerated JSON string escaping (returns the quoted string).
_escape = json.encoder.encode_basestring_ascii


class RequestTrace:
    """One request's identity + phase clock + annotations."""

    __slots__ = ("request_id", "clock", "fields", "lap", "sampled")

    def __init__(self, request_id: str, sampled: bool = True) -> None:
        self.request_id = request_id
        self.clock = PhaseClock(enabled=True)
        #: route/key/error annotations added by the router and handlers.
        self.fields: dict[str, Any] = {}
        #: ``lap("phase")`` attributes time since the previous lap; bound
        #: straight to the clock so the per-request hot path skips a frame.
        self.lap = self.clock.lap
        #: whether this request's span tree is recorded (the
        #: ``REPRO_TRACE_SAMPLE`` decision, made once at begin()).
        self.sampled = sampled

    def annotate(self, **fields: Any) -> None:
        """Attach fields (route, key, error) to the eventual record."""
        self.fields.update(fields)


class AccessLog:
    """Structured JSONL access log with size rotation.

    Args:
        path: log file path, or ``"-"`` for stdout.
        max_bytes: rotate when the file would exceed this size
            (ignored for stdout).
        trace_sample: fraction of requests whose span tree is recorded
            (``None`` reads ``REPRO_TRACE_SAMPLE``, default 1.0).  The
            decision hashes the request id, so a given request's fate
            is reproducible from its ``X-Request-Id``.
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        trace_sample: float | None = None,
    ) -> None:
        if max_bytes < 4096:
            raise ValueError(f"max_bytes must be >= 4096, got {max_bytes}")
        self._stdout = str(path) == "-"
        self.path: Path | None = None if self._stdout else Path(path)
        self.max_bytes = max_bytes
        self._handle: BinaryIO | None = None
        self._size = 0
        self._prefix = uuid.uuid4().hex[:8]
        self._sequence = 0
        self.n_records = 0
        self.n_rotations = 0
        self._records_counter: Counter | None = None
        self.trace_sample = (
            trace_sample_rate() if trace_sample is None
            else min(1.0, max(0.0, trace_sample))
        )

    @property
    def enabled(self) -> bool:
        """Live kill-switch check (``REPRO_OBS=0`` disables tracing)."""
        return obs_enabled()

    def begin(self) -> RequestTrace:
        """Start a trace for a request whose head just arrived."""
        self._sequence += 1
        request_id = f"{self._prefix}-{self._sequence:08d}"
        rate = self.trace_sample
        sampled = rate >= 1.0 or sample_decision(request_id, rate)
        return RequestTrace(request_id, sampled)

    def record(
        self,
        trace: RequestTrace,
        method: str,
        path: str,
        status: int,
        bytes_in: int,
        bytes_out: int,
    ) -> None:
        """Write one completed request as a JSONL line."""
        # The line is assembled by hand (fixed key order, one f-string
        # per segment): this runs once per request and a generic
        # dict+json.dumps pass measurably caps the server's throughput.
        clock = trace.clock
        phases = clock.phases
        parts = [
            f'{{"ts":{time():.6f},"id":"{trace.request_id}"'
            f',"method":{_escape(method)},"path":{_escape(path)}'
            f',"status":{status}'
        ]
        for name, value in trace.fields.items():
            if type(value) is str:
                parts.append(f',"{name}":{_escape(value)}')
            else:
                parts.append(f',"{name}":{_encode(value)}')
        laps = ",".join(f'"{p}":{s:.6f}' for p, s in phases.items())
        parts.append(
            f',"elapsed_s":{sum(phases.values()):.6f},"phases":{{{laps}}}'
            f',"bytes_in":{bytes_in},"bytes_out":{bytes_out}}}\n'
        )
        line = "".join(parts)
        if self._stdout:
            sys.stdout.write(line)
        else:
            self._write(line.encode("utf-8"))
        if trace.sampled:
            # The request id is the trace id: a client holding the
            # X-Request-Id header can find this exact tree in /trace
            # output or the shutdown manifest's events.
            record_request_spans(
                trace.fields, trace.request_id, phases, method, path, status
            )
        # The counter handle is re-fetched every 64 records: the
        # registry get-or-create stays off the per-request path, and a
        # drained/reset telemetry registry heals within one batch.
        if self._records_counter is None or not (self.n_records & 63):
            self._records_counter = get_telemetry().counter(
                "serve.access_log_records"
            )
        self.n_records += 1
        self._records_counter.inc()

    def _write(self, data: bytes) -> None:
        if self._handle is not None and self._size + len(data) > self.max_bytes:
            self._rotate()
        if self._handle is None:
            self._open()
        assert self._handle is not None
        self._handle.write(data)
        self._size += len(data)

    def _open(self) -> None:
        assert self.path is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Unbuffered binary append: one write() syscall per record
        # (O_APPEND, atomic at line sizes), so a tail -f sees whole
        # records as they happen and no buffered tail is lost on crash.
        self._handle = open(self.path, "ab", buffering=0)
        self._size = self.path.stat().st_size

    def _rotate(self) -> None:
        assert self.path is not None and self._handle is not None
        self._handle.close()
        self._handle = None
        os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        self._size = 0
        self.n_rotations += 1

    def close(self) -> None:
        """Flush and close the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
