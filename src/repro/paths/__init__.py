"""Path descriptions and measurement records.

This layer sits below both the fluid model (``repro.fastpath``) and the
campaign runner (``repro.testbed``):

* :mod:`repro.paths.config` — :class:`PathConfig` and the two RON-like
  catalogs (May 2004, March 2006).
* :mod:`repro.paths.records` — the per-epoch measurement record and the
  trace/dataset containers.
"""

from repro.paths.config import (
    PathConfig,
    march_2006_catalog,
    may_2004_catalog,
    scaled_catalog,
)
from repro.paths.records import Dataset, EpochMeasurement, EpochTruth, Trace

__all__ = [
    "Dataset",
    "EpochMeasurement",
    "EpochTruth",
    "PathConfig",
    "Trace",
    "march_2006_catalog",
    "may_2004_catalog",
    "scaled_catalog",
]
