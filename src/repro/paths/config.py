"""Path configurations: the synthetic RON-like testbed.

The paper's May 2004 measurement set used 35 Internet paths between RON
hosts: mostly US universities, two European nodes and one Korean node,
seven paths with DSL bottlenecks, the rest with capacities of at least
10 Mbps.  The March 2006 set used 24 paths between 12 US hosts, one of
them DSL-connected.

We cannot measure the 2004 Internet, so each path is parameterised by
the characteristics that drive everything the paper observes:

* bottleneck capacity and buffering,
* round-trip propagation delay (region),
* the cross-traffic load process: mean utilization, trace-to-trace
  regime variation, within-trace AR(1) dynamics, level-shift hazard and
  outlier-burst rate,
* inherent random loss (noisy DSL lines, lossy international links),
* cross-traffic elasticity and degree of statistical multiplexing,
* probing idiosyncrasies: how differently periodic probes sample the
  loss process compared to TCP, and pathload's bias/noise.

The catalogs are deliberately heterogeneous — the paper's key HB finding
is that predictability is strongly path-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import ConfigurationError
from repro.core.units import kbyte


@dataclass(frozen=True)
class PathConfig:
    """Static description of one wide-area path.

    Attributes:
        path_id: short unique id ("p03").
        name: human-readable endpoints ("mit -> gatech").
        region: 'us', 'eu-us', or 'asia-us'.
        dsl: True when the bottleneck is a DSL line.
        dataset: which measurement set the path belongs to.
        capacity_mbps: bottleneck capacity.
        buffer_bytes: bottleneck drop-tail buffer.
        base_rtt_s: round-trip propagation delay.
        base_util: long-run mean bottleneck utilization from cross
            traffic.
        util_spread: std-dev of the per-trace regime mean around
            ``base_util`` (diurnal variation between the 7 traces).
        ar_phi: AR(1) coefficient of epoch-to-epoch utilization.
        ar_sigma: AR(1) innovation std-dev.
        shift_rate_per_hour: Poisson hazard of cross-load level shifts.
        outlier_rate: probability that an epoch carries a transient
            congestion burst.
        random_loss: inherent per-packet random loss probability.
        elasticity: fraction of cross traffic that is elastic
            (persistent TCP) and yields bandwidth to the target flow.
        n_cross_flows: statistical-multiplexing degree at the bottleneck.
        probe_loss_factor: ratio of the loss rate periodic probes observe
            during saturation to the packet loss TCP inflicts — probes
            sample uniformly in time while TCP's losses cluster in its
            own bursts, so this is usually below 1 (Section 3.3).
        burst_factor: mean packets lost per congestion event, converting
            the event rate into a packet loss rate.
        pathload_bias: mean fractional bias of avail-bw estimates
            (slightly positive: pathload tends to overestimate).
        pathload_noise: fractional std-dev of avail-bw estimates.
        diurnal_amplitude: optional sinusoidal (24 h period) modulation
            of the regime mean, as an absolute utilization amplitude.
            Zero (the default) disables it; the catalogs ship with it
            off so the calibrated shapes are unaffected — it exists for
            non-stationarity experiments (see
            ``benchmarks/bench_ablation_nonstationarity.py``).
        burstiness_scv: squared coefficient of variation of cross-
            traffic service/arrival burstiness. 1.0 (default) is the
            M/M/1/K baseline; larger values scale queueing delays by
            the Pollaczek-Khinchine factor ``(1 + scv) / 2``.
    """

    path_id: str
    name: str
    region: str
    dsl: bool
    dataset: str
    capacity_mbps: float
    buffer_bytes: int
    base_rtt_s: float
    base_util: float
    util_spread: float
    ar_phi: float
    ar_sigma: float
    shift_rate_per_hour: float
    outlier_rate: float
    random_loss: float
    elasticity: float
    n_cross_flows: int
    probe_loss_factor: float
    burst_factor: float
    pathload_bias: float
    pathload_noise: float
    diurnal_amplitude: float = 0.0
    burstiness_scv: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ConfigurationError("capacity_mbps must be positive")
        if self.buffer_bytes <= 0:
            raise ConfigurationError("buffer_bytes must be positive")
        if self.base_rtt_s <= 0:
            raise ConfigurationError("base_rtt_s must be positive")
        if not 0.0 <= self.base_util < 1.0:
            raise ConfigurationError("base_util must be in [0, 1)")
        if not 0.0 <= self.ar_phi < 1.0:
            raise ConfigurationError("ar_phi must be in [0, 1)")
        if not 0.0 <= self.elasticity <= 1.0:
            raise ConfigurationError("elasticity must be in [0, 1]")
        if not 0.0 <= self.random_loss < 0.1:
            raise ConfigurationError("random_loss must be in [0, 0.1)")
        if self.diurnal_amplitude < 0:
            raise ConfigurationError("diurnal_amplitude must be >= 0")
        if self.burstiness_scv < 0.1:
            raise ConfigurationError("burstiness_scv must be >= 0.1")

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the raw path."""
        return self.capacity_mbps * 1e6 * self.base_rtt_s / 8.0


def _dsl(
    path_id: str,
    name: str,
    rtt_ms: float,
    util: float,
    capacity_mbps: float = 1.0,
    random_loss: float = 2e-3,
    outlier_rate: float = 0.015,
    shift_rate: float = 0.25,
    dataset: str = "2004",
) -> PathConfig:
    """A DSL-bottleneck path: low capacity, bloated modem buffer, noisy line."""
    return PathConfig(
        path_id=path_id,
        name=name,
        region="us",
        dsl=True,
        dataset=dataset,
        capacity_mbps=capacity_mbps,
        buffer_bytes=kbyte(32),
        base_rtt_s=rtt_ms / 1000.0,
        base_util=util,
        util_spread=0.08,
        ar_phi=0.75,
        ar_sigma=0.02,
        shift_rate_per_hour=shift_rate,
        outlier_rate=outlier_rate,
        random_loss=random_loss,
        elasticity=0.2,
        n_cross_flows=3,
        probe_loss_factor=0.35,
        burst_factor=2.0,
        pathload_bias=0.06,
        pathload_noise=0.10,
    )


def _congested(
    path_id: str,
    name: str,
    rtt_ms: float,
    util: float,
    capacity_mbps: float = 10.0,
    region: str = "us",
    random_loss: float = 1e-4,
    elasticity: float = 0.3,
    n_cross: int = 15,
    shift_rate: float = 0.4,
    outlier_rate: float = 0.012,
    ar_sigma: float = 0.015,
    dataset: str = "2004",
) -> PathConfig:
    """A moderately provisioned path running at substantial load."""
    return PathConfig(
        path_id=path_id,
        name=name,
        region=region,
        dsl=False,
        dataset=dataset,
        capacity_mbps=capacity_mbps,
        buffer_bytes=kbyte(64),
        base_rtt_s=rtt_ms / 1000.0,
        base_util=util,
        util_spread=0.10,
        ar_phi=0.8,
        ar_sigma=ar_sigma,
        shift_rate_per_hour=shift_rate,
        outlier_rate=outlier_rate,
        random_loss=random_loss,
        elasticity=elasticity,
        n_cross_flows=n_cross,
        probe_loss_factor=0.4,
        burst_factor=2.5,
        pathload_bias=0.05,
        pathload_noise=0.12,
    )


def _provisioned(
    path_id: str,
    name: str,
    rtt_ms: float,
    util: float,
    capacity_mbps: float = 100.0,
    region: str = "us",
    n_cross: int = 60,
    shift_rate: float = 0.15,
    outlier_rate: float = 0.006,
    ar_sigma: float = 0.01,
    random_loss: float = 0.0,
    dataset: str = "2004",
) -> PathConfig:
    """A well-provisioned research-network path: lossless most of the time."""
    return PathConfig(
        path_id=path_id,
        name=name,
        region=region,
        dsl=False,
        dataset=dataset,
        capacity_mbps=capacity_mbps,
        buffer_bytes=kbyte(150),
        base_rtt_s=rtt_ms / 1000.0,
        base_util=util,
        util_spread=0.05,
        ar_phi=0.85,
        ar_sigma=ar_sigma,
        shift_rate_per_hour=shift_rate,
        outlier_rate=outlier_rate,
        random_loss=random_loss,
        elasticity=0.6,
        n_cross_flows=n_cross,
        probe_loss_factor=0.5,
        burst_factor=2.0,
        pathload_bias=0.04,
        pathload_noise=0.08,
    )


def _international(
    path_id: str,
    name: str,
    rtt_ms: float,
    util: float,
    capacity_mbps: float = 34.0,
    region: str = "eu-us",
    random_loss: float = 1e-3,
    shift_rate: float = 0.3,
    outlier_rate: float = 0.02,
    dataset: str = "2004",
) -> PathConfig:
    """A transoceanic path: long RTT, some inherent loss."""
    return PathConfig(
        path_id=path_id,
        name=name,
        region=region,
        dsl=False,
        dataset=dataset,
        capacity_mbps=capacity_mbps,
        buffer_bytes=kbyte(250),
        base_rtt_s=rtt_ms / 1000.0,
        base_util=util,
        util_spread=0.08,
        ar_phi=0.8,
        ar_sigma=0.015,
        shift_rate_per_hour=shift_rate,
        outlier_rate=outlier_rate,
        random_loss=random_loss,
        elasticity=0.4,
        n_cross_flows=30,
        probe_loss_factor=0.3,
        burst_factor=2.5,
        pathload_bias=0.05,
        pathload_noise=0.12,
    )


def may_2004_catalog() -> list[PathConfig]:
    """The 35-path first measurement set (paper Section 4.1).

    Composition mirrors the paper: seven DSL-bottlenecked paths, five
    transatlantic paths, one Korea-US path, the rest US paths of at
    least 10 Mbps with a wide range of load levels and dynamics.
    """
    return [
        # --- seven DSL-bottleneck paths --------------------------------
        _dsl("p01", "dsl-ca -> gatech", rtt_ms=28, util=0.76, random_loss=1.2e-3,
             outlier_rate=0.06),
        _dsl("p02", "dsl-ca -> mit", rtt_ms=75, util=0.74, random_loss=1.8e-3),
        _dsl("p03", "dsl-nc -> cornell", rtt_ms=35, util=0.75, outlier_rate=0.05,
             random_loss=1.5e-3),
        _dsl("p04", "dsl-ma -> nyu", rtt_ms=22, util=0.66, capacity_mbps=1.5,
             random_loss=1.2e-3),
        _dsl("p05", "dsl-ma -> utah", rtt_ms=62, util=0.78, capacity_mbps=0.8,
             random_loss=1.2e-3, outlier_rate=0.06),
        _dsl("p06", "gatech -> dsl-ca", rtt_ms=30, util=0.73, shift_rate=0.5,
             random_loss=1.5e-3),
        _dsl("p07", "nyu -> dsl-nc", rtt_ms=33, util=0.70, random_loss=1.8e-3),
        # --- congested / moderately provisioned US paths ---------------
        _congested("p08", "gatech -> cmu", rtt_ms=25, util=0.88, random_loss=1e-3,
                   elasticity=0.15),
        _congested("p09", "cornell -> ucsd", rtt_ms=68, util=0.84,
                   outlier_rate=0.04, ar_sigma=0.035, random_loss=3e-4),
        _congested("p10", "mit -> utah", rtt_ms=55, util=0.92, shift_rate=0.6,
                   ar_sigma=0.025, random_loss=5e-4, elasticity=0.15),
        # p11/p14: few, aggressive elastic competitors — the target flow
        # grabs well beyond the avail-bw, the paper's underestimation case.
        _congested("p11", "nyu -> gatech", rtt_ms=32, util=0.76,
                   elasticity=0.9, n_cross=3, random_loss=6e-4),
        _congested("p12", "ucsd -> cornell", rtt_ms=70, util=0.72,
                   random_loss=4e-4),
        _congested("p13", "utah -> mit", rtt_ms=52, util=0.87, random_loss=6e-4,
                   outlier_rate=0.05, ar_sigma=0.04, elasticity=0.2),
        _congested("p14", "cmu -> nyu", rtt_ms=18, util=0.70, elasticity=0.85,
                   n_cross=4, random_loss=5e-4),
        _congested("p15", "aros -> utah", rtt_ms=12, util=0.90, shift_rate=0.8,
                   ar_sigma=0.06, outlier_rate=0.05, random_loss=4e-4,
                   elasticity=0.2),
        _congested("p16", "gblx -> cornell", rtt_ms=40, util=0.62,
                   capacity_mbps=45.0, n_cross=40, random_loss=3e-4),
        _congested("p17", "speakeasy -> gatech", rtt_ms=48, util=0.88,
                   random_loss=7e-4),
        # --- well-provisioned US paths ---------------------------------
        _provisioned("p18", "mit -> cmu", rtt_ms=16, util=0.12),
        _provisioned("p19", "gatech -> cornell", rtt_ms=27, util=0.20),
        _provisioned("p20", "nyu -> ucsd", rtt_ms=65, util=0.15),
        _provisioned("p21", "cornell -> mit", rtt_ms=14, util=0.08),
        _provisioned("p22", "ucsd -> gatech", rtt_ms=50, util=0.25,
                     outlier_rate=0.03, random_loss=3e-4),
        _provisioned("p23", "utah -> cornell", rtt_ms=47, util=0.18),
        _provisioned("p24", "cmu -> ucsd", rtt_ms=58, util=0.30, shift_rate=0.3,
                     capacity_mbps=45.0, random_loss=6e-4),
        _provisioned("p25", "mit -> nyu", rtt_ms=9, util=0.10),
        _provisioned("p26", "gatech -> utah", rtt_ms=44, util=0.22),
        _provisioned("p27", "cornell -> cmu", rtt_ms=13, util=0.35,
                     ar_sigma=0.05),
        _provisioned("p28", "nyu -> mit", rtt_ms=10, util=0.16),
        _provisioned("p29", "ucsd -> utah", rtt_ms=21, util=0.28,
                     capacity_mbps=45.0, n_cross=35, random_loss=5e-4),
        # --- five transatlantic paths ----------------------------------
        _international("p30", "lulea -> mit", rtt_ms=105, util=0.45),
        _international("p31", "amsterdam -> gatech", rtt_ms=112, util=0.55,
                       random_loss=1.2e-3, outlier_rate=0.05),
        _international("p32", "mit -> lulea", rtt_ms=108, util=0.35,
                       random_loss=6e-4),
        _international("p33", "gatech -> amsterdam", rtt_ms=118, util=0.68,
                       shift_rate=0.5, random_loss=8e-4),
        _international("p34", "amsterdam -> cornell", rtt_ms=98, util=0.40,
                       capacity_mbps=16.0),
        # --- one Korea - US path ----------------------------------------
        _international("p35", "kaist -> nyu", rtt_ms=215, util=0.62,
                       region="asia-us", capacity_mbps=10.0,
                       random_loss=1.5e-3, outlier_rate=0.05),
    ]


def march_2006_catalog() -> list[PathConfig]:
    """The 24-path second measurement set: 12 US hosts, one DSL-connected.

    Used by the paper for the transfer-duration experiment (Fig. 11);
    transfers in this set run 120 s with 30/60/120 s checkpoints.
    """
    hosts = [
        "gatech", "mit", "cornell", "nyu", "cmu", "ucsd",
        "utah", "umich", "rice", "uwash", "wisc", "dsl-tx",
    ]
    paths: list[PathConfig] = []
    # 24 directed pairs over the 12 hosts, with varied provisioning.
    pairs = [
        (0, 1, 24), (1, 0, 24), (0, 2, 28), (2, 3, 16), (3, 4, 14),
        (4, 5, 60), (5, 6, 22), (6, 7, 39), (7, 8, 33), (8, 9, 52),
        (9, 10, 41), (10, 1, 30), (1, 5, 72), (5, 0, 51), (2, 8, 36),
        (8, 3, 35), (4, 9, 55), (9, 6, 26), (10, 7, 18), (7, 2, 31),
        (3, 10, 23), (6, 4, 45), (0, 11, 29), (11, 0, 29),
    ]
    for i, (src, dst, rtt_ms) in enumerate(pairs, start=1):
        path_id = f"q{i:02d}"
        name = f"{hosts[src]} -> {hosts[dst]}"
        if hosts[src].startswith("dsl") or hosts[dst].startswith("dsl"):
            paths.append(
                _dsl(path_id, name, rtt_ms=rtt_ms, util=0.35, dataset="2006")
            )
        elif i % 3 == 0:
            paths.append(
                _congested(
                    path_id, name, rtt_ms=rtt_ms,
                    util=0.55 + 0.04 * (i % 5), dataset="2006",
                )
            )
        else:
            paths.append(
                _provisioned(
                    path_id, name, rtt_ms=rtt_ms,
                    util=0.10 + 0.03 * (i % 6), dataset="2006",
                )
            )
    return paths


def scaled_catalog(catalog: list[PathConfig], n_paths: int) -> list[PathConfig]:
    """The first ``n_paths`` entries — for quick runs and tests.

    Takes a stratified sample (every ``len/n``-th path) so the reduced
    catalog keeps the full catalog's heterogeneity.
    """
    if n_paths <= 0:
        raise ConfigurationError(f"n_paths must be positive, got {n_paths}")
    if n_paths >= len(catalog):
        return list(catalog)
    stride = len(catalog) / n_paths
    return [catalog[int(i * stride)] for i in range(n_paths)]


def expanded_catalog(catalog: list[PathConfig], n_paths: int) -> list[PathConfig]:
    """Grow ``catalog`` to ``n_paths`` entries by cloning paths round-robin.

    Clones get fresh ids (``{orig}x{k}``, e.g. ``p03x2``), so every path
    draws from its own named RNG streams and a 1000-path sweep measures
    1000 *independent* realizations of the catalog's heterogeneity —
    the scale knob behind the large-catalog experiments in
    ``EXPERIMENTS.md``.  ``n_paths <= len(catalog)`` falls back to the
    stratified subsample of :func:`scaled_catalog`.
    """
    if n_paths <= len(catalog):
        return scaled_catalog(catalog, n_paths)
    expanded = list(catalog)
    clone_round = 1
    while len(expanded) < n_paths:
        for config in catalog:
            if len(expanded) >= n_paths:
                break
            expanded.append(
                replace(config, path_id=f"{config.path_id}x{clone_round}")
            )
        clone_round += 1
    return expanded


def with_dataset(config: PathConfig, dataset: str) -> PathConfig:
    """A copy of ``config`` assigned to another dataset label."""
    return replace(config, dataset=dataset)
