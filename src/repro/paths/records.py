"""Measurement records: epochs, traces, datasets.

An :class:`EpochMeasurement` carries exactly what one epoch of the
paper's methodology produces (Fig. 1): the a priori estimates
(``ahat/phat/that``), the actual transfer throughput ``R``, the
during-flow probe estimates (``ptilde/ttilde``), the companion
small-window transfer, and optional sub-duration throughputs for the
second (March 2006) measurement set.

``truth`` holds the hidden simulator state (true utilization, the loss
rate the flow experienced).  It exists for diagnostics and tests; the
predictors never read it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DataError
from repro.core.timeseries import TimeSeries


@dataclass(frozen=True)
class EpochTruth:
    """Hidden per-epoch simulator state (diagnostics only).

    Attributes:
        utilization_pre: true bottleneck utilization before the transfer.
        utilization_during: true utilization during it (cross traffic
            only, excluding the target flow).
        loss_event_rate: the congestion-event rate the flow experienced.
        regime: 'window', 'loss', or 'congestion' — which constraint
            bound the transfer.
        outlier: whether the epoch carried an injected transient burst.
    """

    utilization_pre: float
    utilization_during: float
    loss_event_rate: float
    regime: str
    outlier: bool


@dataclass(frozen=True)
class EpochMeasurement:
    """One measurement epoch (paper Fig. 1).

    All throughputs are Mbps, times are seconds, loss rates are
    fractions.

    Attributes:
        path_id: which path this epoch belongs to.
        trace_index: which trace on the path (0-based).
        epoch_index: position within the trace (0-based).
        start_time_s: absolute (simulated) epoch start time.
        ahat_mbps: a priori avail-bw estimate (pathload).
        phat: a priori loss rate estimate (ping, 600 probes).
        that_s: a priori RTT estimate (ping).
        throughput_mbps: the target transfer's actual throughput ``R``.
        ptilde: loss rate measured by ping during the transfer.
        ttilde_s: RTT measured by ping during the transfer.
        smallw_throughput_mbps: throughput of the companion W=20 KB
            transfer, or None when not run.
        duration_throughputs_mbps: cumulative throughput after each
            requested checkpoint (the 2006 set's 30/60/120 s cuts).
        truth: hidden simulator state (never used by predictors).
    """

    path_id: str
    trace_index: int
    epoch_index: int
    start_time_s: float
    ahat_mbps: float
    phat: float
    that_s: float
    throughput_mbps: float
    ptilde: float
    ttilde_s: float
    smallw_throughput_mbps: float | None = None
    duration_throughputs_mbps: tuple[float, ...] = ()
    truth: EpochTruth | None = None

    def __post_init__(self) -> None:
        if self.throughput_mbps <= 0:
            raise DataError(
                f"epoch throughput must be positive, got {self.throughput_mbps}"
            )
        if not 0.0 <= self.phat < 1.0 or not 0.0 <= self.ptilde < 1.0:
            raise DataError("loss rates must lie in [0, 1)")

    @property
    def lossless(self) -> bool:
        """True when the a priori probing saw no losses (``phat == 0``)."""
        return self.phat == 0.0


@dataclass
class Trace:
    """One trace: consecutive epochs on one path (the paper's 150)."""

    path_id: str
    trace_index: int
    epochs: list[EpochMeasurement] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self) -> Iterator[EpochMeasurement]:
        return iter(self.epochs)

    def append(self, epoch: EpochMeasurement) -> None:
        """Add an epoch, validating its identity fields."""
        if epoch.path_id != self.path_id or epoch.trace_index != self.trace_index:
            raise DataError(
                f"epoch ({epoch.path_id}, {epoch.trace_index}) does not belong "
                f"to trace ({self.path_id}, {self.trace_index})"
            )
        self.epochs.append(epoch)

    def throughput_series(self, small_window: bool = False) -> TimeSeries:
        """The trace's throughput time series (for HB prediction).

        Args:
            small_window: use the companion W=20 KB transfers instead of
                the main transfers.

        Raises:
            DataError: if ``small_window`` is requested but the trace has
                no small-window measurements.
        """
        times = [e.start_time_s for e in self.epochs]
        if small_window:
            values = []
            for e in self.epochs:
                if e.smallw_throughput_mbps is None:
                    raise DataError(
                        f"trace ({self.path_id}, {self.trace_index}) has no "
                        "small-window measurements"
                    )
                values.append(e.smallw_throughput_mbps)
        else:
            values = [e.throughput_mbps for e in self.epochs]
        name = f"{self.path_id}/t{self.trace_index}" + ("/W20K" if small_window else "")
        return TimeSeries(times, values, name=name)


@dataclass
class Dataset:
    """A full measurement campaign: traces across paths.

    Attributes:
        label: dataset name (e.g. "may-2004").
        traces: all collected traces.
    """

    label: str
    traces: list[Trace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    @property
    def path_ids(self) -> list[str]:
        """Distinct path ids, in first-appearance order."""
        seen: dict[str, None] = {}
        for trace in self.traces:
            seen.setdefault(trace.path_id, None)
        return list(seen)

    def traces_for(self, path_id: str) -> list[Trace]:
        """All traces collected on one path."""
        return [t for t in self.traces if t.path_id == path_id]

    def epochs(self, path_id: str | None = None) -> list[EpochMeasurement]:
        """All epochs, optionally restricted to one path."""
        return [
            e
            for t in self.traces
            if path_id is None or t.path_id == path_id
            for e in t
        ]

    def throughputs(self) -> np.ndarray:
        """All transfer throughputs as one array (Mbps)."""
        return np.asarray([e.throughput_mbps for e in self.epochs()])

    def extend(self, traces: Iterable[Trace]) -> None:
        """Append traces from another run."""
        self.traces.extend(traces)

    def summary(self) -> str:
        """One-line description of the dataset's size."""
        n_epochs = sum(len(t) for t in self.traces)
        return (
            f"Dataset {self.label!r}: {len(self.path_ids)} paths, "
            f"{len(self.traces)} traces, {n_epochs} epochs"
        )


def concat_datasets(label: str, datasets: Sequence[Dataset]) -> Dataset:
    """Merge several datasets into one (traces concatenated)."""
    merged = Dataset(label=label)
    for ds in datasets:
        merged.extend(ds.traces)
    return merged
