"""``repro.obs`` — the observability subsystem.

Three layers, each usable on its own:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Timer``
  (exact p50/p95/p99) series keyed by name + tags, in a mergeable
  :class:`~repro.obs.metrics.MetricsRegistry`;
* :mod:`repro.obs.telemetry` — the per-process collector combining the
  registry with structured events and run-scoped context.  Disabled
  entirely with ``REPRO_OBS=0`` (shared null instruments; zero
  hot-path overhead);
* :mod:`repro.obs.recorder` — run manifests: ``manifest.json`` +
  ``events.jsonl`` sidecars written next to datasets (and cache
  entries), consumed by the ``repro-obs`` CLI.

On top of them, :mod:`repro.obs.spans` adds causal structure — spans
(trace/span/parent ids) recorded as ordinary telemetry events via
``Telemetry.span(name, **tags)`` — and :mod:`repro.obs.traceview`
renders the recorded trees (text timelines, critical paths,
Chrome/Perfetto export) behind ``repro-obs trace``.

Typical instrumentation site::

    from repro.obs import get_telemetry

    tele = get_telemetry()
    tele.counter("cache.hits").inc()
    with tele.timer("epoch.phase_s", phase="iperf"):
        ...

Typical run bracket (what ``repro-campaign`` does)::

    from repro.obs import RunRecorder

    recorder = RunRecorder(label="may2004", seed=7, workers=4).start()
    dataset = campaign.run(settings, n_workers=4)
    recorder.finish(n_epochs=len(dataset.epochs()), ...)
    recorder.write("may.csv")       # may.manifest.json + may.events.jsonl
"""

from repro.obs.export import to_flat_json, to_openmetrics
from repro.obs.metrics import (
    TIMER_MAX_SAMPLES,
    Counter,
    Gauge,
    MetricsRegistry,
    SampleBuffer,
    Timer,
    percentile,
)
from repro.obs.quality import PredictorQuality, QualityConfig, QualityTracker
from repro.obs.recorder import (
    ANALYSIS_CORE_COUNTERS,
    CORE_COUNTERS,
    MANIFEST_VERSION,
    RunRecorder,
    analysis_sidecar_paths,
    load_manifest,
    read_events,
    resolve_manifest,
    sidecar_paths,
)
from repro.obs.regress import (
    check_against_baseline,
    load_baseline,
    record_baseline,
)
from repro.obs.spans import (
    ENV_TRACE_MAX_SPANS,
    ENV_TRACE_SAMPLE,
    Span,
    reparent_spans,
    start_span,
    trace_sample_rate,
)
from repro.obs.telemetry import (
    ENV_OBS,
    PhaseClock,
    Telemetry,
    get_telemetry,
    obs_enabled,
)
from repro.obs.traceview import (
    build_traces,
    critical_path,
    render_timeline,
    to_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "SampleBuffer",
    "TIMER_MAX_SAMPLES",
    "percentile",
    "PredictorQuality",
    "QualityConfig",
    "QualityTracker",
    "ENV_OBS",
    "PhaseClock",
    "Telemetry",
    "get_telemetry",
    "obs_enabled",
    "MANIFEST_VERSION",
    "CORE_COUNTERS",
    "ANALYSIS_CORE_COUNTERS",
    "RunRecorder",
    "load_manifest",
    "read_events",
    "resolve_manifest",
    "sidecar_paths",
    "analysis_sidecar_paths",
    "to_openmetrics",
    "to_flat_json",
    "check_against_baseline",
    "load_baseline",
    "record_baseline",
    "ENV_TRACE_SAMPLE",
    "ENV_TRACE_MAX_SPANS",
    "Span",
    "start_span",
    "reparent_spans",
    "trace_sample_rate",
    "build_traces",
    "render_timeline",
    "critical_path",
    "to_chrome_trace",
]
