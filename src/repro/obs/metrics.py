"""The metrics registry: counters, gauges, and timers with tags.

Instrumentation sites across the package ask the registry for a named
instrument (optionally qualified by string tags, e.g. ``phase="iperf"``)
and update it; the registry aggregates everything in-process and renders
a plain-dict snapshot for the run manifest.

Design constraints, in order:

1. **Zero hot-path overhead when disabled.**  A disabled registry hands
   out shared null instruments whose methods do nothing, so callers
   never need an ``if telemetry:`` guard of their own.
2. **Mergeable.**  Campaign traces may run in worker processes; each
   worker snapshots its registry and the parent merges the snapshots,
   so telemetry is identical for every worker count (up to sample
   order, which the percentile math does not observe).
3. **Deterministic export.**  Snapshots list series sorted by
   ``(name, tags)`` so manifests diff cleanly.

Percentiles use the nearest-rank method on the raw samples: for a
sorted sample of size ``n``, the ``q``-percentile is the value at
(1-based) rank ``ceil(q / 100 * n)``.  Timers keep raw samples up to
:data:`TIMER_MAX_SAMPLES` per series — quantiles are **exact** below
the cap (a full-scale campaign observes a few hundred thousand floats
spread over many series, well within it).  Beyond the cap the buffer
becomes a ring over the most recent observations (oldest overwritten,
``dropped`` counted), so a long-running ``repro-serve`` process holds
bounded memory and its quantiles approximate the *recent* distribution
rather than the whole process lifetime.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_TIMER",
    "SampleBuffer",
    "TIMER_MAX_SAMPLES",
    "percentile",
]

#: Per-series cap on retained timer samples (see :class:`SampleBuffer`).
TIMER_MAX_SAMPLES = 65536


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank ``q``-percentile of an ascending-sorted sample.

    Args:
        sorted_samples: the sample, sorted ascending, non-empty.
        q: percentile in [0, 100].

    Raises:
        ValueError: for an empty sample, ``q`` outside [0, 100], or a
            sample that is not sorted ascending (nearest-rank indexing
            silently returns garbage on unsorted input).
    """
    if not sorted_samples:
        raise ValueError("percentile undefined for an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if any(
        sorted_samples[i] > sorted_samples[i + 1]
        for i in range(len(sorted_samples) - 1)
    ):
        raise ValueError("percentile requires an ascending-sorted sample")
    if q == 0.0:
        return sorted_samples[0]
    rank = math.ceil(q / 100.0 * len(sorted_samples))
    return sorted_samples[rank - 1]


def _tags_key(tags: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(tags.items()))


class Counter:
    """A monotonically increasing count (events, cache hits, drops)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: dict[str, str]) -> None:
        self.name = name
        self.tags = tags
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n


class Gauge:
    """A point-in-time value (traces done, queue depth)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: dict[str, str]) -> None:
        self.name = name
        self.tags = tags
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = float(value)


class SampleBuffer(list):
    """A ``list`` that becomes a ring once ``maxlen`` samples are held.

    Hot paths append to ``Timer.samples`` directly (and tests compare it
    to plain lists), so the bound is implemented as a list subclass
    rather than a ``deque``: below ``maxlen`` it *is* an ordinary list
    and quantiles over it are exact; at capacity, :meth:`append`
    overwrites the oldest retained sample in place (``dropped`` counts
    the overwrites), keeping the most recent ``maxlen`` observations.
    Order is not chronological once wrapped — the percentile math sorts
    and never observes order.
    """

    __slots__ = ("maxlen", "dropped", "_cursor")

    def __init__(
        self, values: Iterable[float] = (), maxlen: int = TIMER_MAX_SAMPLES
    ) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        super().__init__()
        self.maxlen = maxlen
        self.dropped = 0
        self._cursor = 0
        self.extend(values)

    def append(self, value: float) -> None:
        if list.__len__(self) < self.maxlen:
            list.append(self, value)
        else:
            self[self._cursor] = value
            self._cursor += 1
            if self._cursor == self.maxlen:
                self._cursor = 0
            self.dropped += 1

    def extend(self, values: Iterable[float]) -> None:
        if not isinstance(values, (list, tuple)):
            values = list(values)
        # Bulk-extend whatever fits below capacity; only samples that
        # would wrap the ring go through the overwrite path.
        room = self.maxlen - list.__len__(self)
        if room >= len(values):
            list.extend(self, values)
            return
        if room > 0:
            list.extend(self, values[:room])
            values = values[room:]
        for value in values:
            self.append(value)


class Timer:
    """A duration histogram with exact p50/p95/p99.

    Usable either directly (``timer.observe(seconds)``) or as a context
    manager timing its ``with`` block.  Retains at most
    :data:`TIMER_MAX_SAMPLES` samples (see :class:`SampleBuffer`).
    """

    __slots__ = ("name", "tags", "samples", "_entered_at")

    def __init__(self, name: str, tags: dict[str, str]) -> None:
        self.name = name
        self.tags = tags
        self.samples: list[float] = SampleBuffer()
        self._entered_at = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration sample, in seconds."""
        self.samples.append(float(seconds))

    def __enter__(self) -> "Timer":
        from time import perf_counter

        self._entered_at = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        from time import perf_counter

        self.observe(perf_counter() - self._entered_at)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-percentile (``q`` in [0, 100]) of the samples."""
        return percentile(sorted(self.samples), q)

    def stats(self) -> dict[str, float]:
        """count/sum/min/max/p50/p95/p99 as a plain dict (zeros if empty)."""
        if not self.samples:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        ordered = sorted(self.samples)
        return {
            "count": len(ordered),
            "sum": float(sum(ordered)),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "p99": percentile(ordered, 99.0),
        }


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by a disabled registry."""

    def __init__(self) -> None:
        super().__init__("null", {})

    def inc(self, n: int = 1) -> None:  # noqa: D102 - intentionally empty
        pass


class _NullGauge(Gauge):
    def __init__(self) -> None:
        super().__init__("null", {})

    def set(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    def __init__(self) -> None:
        super().__init__("null", {})

    def observe(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Get-or-create home of every instrument in one process.

    A series is identified by ``(name, tags)``: asking twice with the
    same identity returns the same object, so instrumentation sites do
    not need to hold references across calls.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._timers: dict[tuple, Timer] = {}

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str, **tags: str) -> Counter:
        key = (name, _tags_key(tags))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(name, tags)
        return series

    def gauge(self, name: str, **tags: str) -> Gauge:
        key = (name, _tags_key(tags))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(name, tags)
        return series

    def timer(self, name: str, **tags: str) -> Timer:
        key = (name, _tags_key(tags))
        series = self._timers.get(key)
        if series is None:
            series = self._timers[key] = Timer(name, tags)
        return series

    def discard_gauges(self, name: str, **tags: str) -> int:
        """Drop every gauge of ``name`` whose tags include ``tags``.

        Used when the owner of a tagged gauge family (e.g. a per-path
        quality series) goes away, so ``/metrics`` does not accumulate
        stale series forever.  Returns the number removed.
        """
        required = set(tags.items())
        doomed = [
            key
            for key, gauge in self._gauges.items()
            if gauge.name == name and required <= set(gauge.tags.items())
        ]
        for key in doomed:
            del self._gauges[key]
        return len(doomed)

    # -- export / merge ------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Render all series as a plain (picklable, JSON-able) dict.

        Timers export their raw samples so a parent process can merge
        worker snapshots without losing quantile exactness.
        """
        return {
            "counters": [
                {"name": c.name, "tags": dict(c.tags), "value": c.value}
                for _, c in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": g.name, "tags": dict(g.tags), "value": g.value}
                for _, g in sorted(self._gauges.items())
            ],
            "timers": [
                {"name": t.name, "tags": dict(t.tags), "samples": list(t.samples)}
                for _, t in sorted(self._timers.items())
            ],
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (typically from a worker) into this
        registry: counters add, gauges take the snapshot's value, timers
        extend their samples."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry["tags"]).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry["tags"]).set(entry["value"])
        for entry in snapshot.get("timers", ()):
            self.timer(entry["name"], **entry["tags"]).samples.extend(
                entry["samples"]
            )

    def reset(self) -> None:
        """Drop every series (a new run starts clean)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._timers)
