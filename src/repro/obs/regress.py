"""Performance-regression gate over run manifests and bench snapshots.

The bench trajectory (``BENCH_obs.json``, run manifests) used to be
write-only: numbers were recorded but nothing failed when they got
worse.  This module closes the loop:

* :func:`record_baseline` snapshots a metrics source — a run manifest
  or a ``BENCH_obs.json``-style bench report — as a named baseline file
  (flat ``{metric: value}`` form plus provenance);
* :func:`check_against_baseline` compares a current source against a
  baseline: **counters must match exactly** (they are deterministic
  given seed and settings), **timers get a relative tolerance** on
  p50/p95 (default ±25%; per-metric overrides can be stored in the
  baseline file).  Only *slower* timers regress — a faster run is
  reported as an improvement, not a failure.

Surfaced as ``repro-obs bench record`` / ``repro-obs bench check``
(exit 1 on regression), wired into ``make bench-check``.  The committed
default baseline lives in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.core.errors import DataError

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_TIMER_TOLERANCE",
    "DEFAULT_BASELINE_NAME",
    "ENV_BASELINES_DIR",
    "Finding",
    "default_baselines_dir",
    "flatten_manifest",
    "flatten_bench",
    "flatten_source",
    "load_metrics_source",
    "record_baseline",
    "load_baseline",
    "check_against_baseline",
    "render_check_report",
]

#: Schema version of baseline files.
BASELINE_VERSION = 1

#: Default relative tolerance on timer p50/p95 (±25%).
DEFAULT_TIMER_TOLERANCE = 0.25

#: Baseline name used when ``repro-obs bench`` is given none.
DEFAULT_BASELINE_NAME = "obs_baseline"

#: Environment override for the baselines directory.
ENV_BASELINES_DIR = "REPRO_BASELINES_DIR"

#: Timer aggregate fields the gate compares.
TIMER_FIELDS = ("p50", "p95")


def default_baselines_dir() -> Path:
    """The baselines directory: ``$REPRO_BASELINES_DIR`` or the
    repository's committed ``benchmarks/baselines/``."""
    override = os.environ.get(ENV_BASELINES_DIR)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baselines"


@dataclass(frozen=True)
class Finding:
    """One compared metric: its values and the verdict.

    Attributes:
        metric: flat metric key (``counter:...`` or ``timer:...#p50``).
        baseline: the baseline value (None when new in current).
        current: the current value (None when missing from current).
        tolerance: relative tolerance applied; None means exact.
        regressed: whether this finding fails the gate.
        note: one human-readable report line.
    """

    metric: str
    baseline: float | None
    current: float | None
    tolerance: float | None
    regressed: bool
    note: str


def _series_label(entry: dict[str, Any]) -> str:
    tags = entry.get("tags") or {}
    if not tags:
        return entry["name"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"{entry['name']}{{{inner}}}"


def flatten_manifest(manifest: dict[str, Any]) -> dict[str, Any]:
    """A run manifest's gate-relevant metrics in flat form.

    Counters become ``counter:<label>`` ints; timers become
    ``timer:<label>`` dicts of :data:`TIMER_FIELDS`.  Gauges are
    excluded — they are point-in-time progress values, not performance.
    """
    metrics: dict[str, Any] = {}
    for entry in manifest.get("counters", ()):
        metrics[f"counter:{_series_label(entry)}"] = int(entry["value"])
    for entry in manifest.get("timers", ()):
        metrics[f"timer:{_series_label(entry)}"] = {
            field: float(entry.get(field, 0.0)) for field in TIMER_FIELDS
        }
    return metrics


def flatten_bench(bench: dict[str, Any]) -> dict[str, Any]:
    """A ``BENCH_obs.json``- or ``BENCH_perf.json``-style report in the
    same flat form.

    Per fixture: the epoch and simulated-event counts as exact counters
    (when the fixture reports them — both are deterministic given seed
    and settings), the run wall time as a single-sample timer, and the
    ``epoch_wall_s`` / per-phase timer aggregates when present.
    """
    metrics: dict[str, Any] = {}
    for fixture, entry in sorted(bench.get("fixtures", {}).items()):
        prefix = f"bench.{fixture}"
        if "epochs" in entry:
            metrics[f"counter:{prefix}.epochs"] = int(entry["epochs"])
        if "events" in entry:
            metrics[f"counter:{prefix}.events"] = int(entry["events"])
        wall = float(entry.get("wall_time_s", 0.0))
        metrics[f"timer:{prefix}.wall_time_s"] = {
            field: wall for field in TIMER_FIELDS
        }
        epoch_wall = entry.get("epoch_wall_s")
        if epoch_wall is not None:
            metrics[f"timer:{prefix}.epoch_wall_s"] = {
                field: float(epoch_wall.get(field, 0.0))
                for field in TIMER_FIELDS
            }
        for phase, stats in sorted((entry.get("phase_s") or {}).items()):
            metrics[f"timer:{prefix}.phase_s{{phase={phase}}}"] = {
                field: float(stats.get(field, 0.0)) for field in TIMER_FIELDS
            }
    return metrics


def flatten_source(document: dict[str, Any]) -> dict[str, Any]:
    """Flatten either supported source document by sniffing its shape."""
    if "manifest_version" in document:
        return flatten_manifest(document)
    if document.get("bench") or "fixtures" in document:
        return flatten_bench(document)
    raise DataError(
        "unrecognized metrics source: expected a run manifest "
        "(manifest_version) or a bench report (bench/fixtures)"
    )


def load_metrics_source(path: str | Path) -> dict[str, Any]:
    """Load a manifest or bench JSON document from disk."""
    path = Path(path)
    if not path.is_file():
        raise DataError(f"no metrics source at {path}")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DataError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise DataError(f"{path} is not a JSON object")
    return document


def baseline_path(name: str, baselines_dir: str | Path | None = None) -> Path:
    """Where the named baseline lives on disk."""
    directory = Path(baselines_dir) if baselines_dir else default_baselines_dir()
    return directory / f"{name}.json"


def record_baseline(
    source: dict[str, Any],
    name: str = DEFAULT_BASELINE_NAME,
    baselines_dir: str | Path | None = None,
    recorded_from: str = "",
    tolerances: dict[str, float] | None = None,
) -> Path:
    """Snapshot a metrics source as the named baseline file.

    Args:
        source: a loaded manifest or bench document.
        name: baseline name (file stem under the baselines directory).
        baselines_dir: override the baselines directory.
        recorded_from: provenance note (source path) stored in the file.
        tolerances: per-metric relative tolerance overrides, keyed by
            flat metric key (``timer:...``).

    Returns:
        The path written.
    """
    path = baseline_path(name, baselines_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    baseline = {
        "baseline_version": BASELINE_VERSION,
        "name": name,
        "recorded_from": recorded_from,
        "code_version": __version__,
        "created_unix": round(time.time(), 1),
        "default_timer_tolerance": DEFAULT_TIMER_TOLERANCE,
        "tolerances": dict(tolerances or {}),
        "metrics": flatten_source(source),
    }
    path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Load and sanity-check a baseline file."""
    path = Path(path)
    if not path.is_file():
        raise DataError(
            f"no baseline at {path} (record one with `repro-obs bench record`)"
        )
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DataError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(baseline, dict) or "baseline_version" not in baseline:
        raise DataError(f"{path} is not a bench baseline (no baseline_version)")
    version = baseline["baseline_version"]
    if not isinstance(version, int) or version < 1 or version > BASELINE_VERSION:
        raise DataError(f"{path} has unsupported baseline_version {version!r}")
    return baseline


def check_against_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float | None = None,
) -> list[Finding]:
    """Compare a current source document against a loaded baseline.

    Args:
        current: a loaded manifest or bench document (not yet flattened).
        baseline: a baseline dict from :func:`load_baseline`.
        tolerance: override every timer tolerance (CLI ``--tolerance``);
            None uses the baseline's per-metric/default tolerances.

    Returns:
        One :class:`Finding` per compared metric field, regressions
        first, then the rest sorted by metric key.
    """
    current_metrics = flatten_source(current)
    baseline_metrics = baseline.get("metrics", {})
    default_tol = float(
        baseline.get("default_timer_tolerance", DEFAULT_TIMER_TOLERANCE)
    )
    per_metric = baseline.get("tolerances", {}) or {}

    findings: list[Finding] = []
    for key, base_value in sorted(baseline_metrics.items()):
        if key not in current_metrics:
            findings.append(
                Finding(
                    metric=key,
                    baseline=_scalar(base_value),
                    current=None,
                    tolerance=None,
                    regressed=True,
                    note=f"REGRESSION {key}: present in baseline, "
                    "missing from current run",
                )
            )
            continue
        cur_value = current_metrics[key]
        if key.startswith("counter:"):
            findings.append(_check_counter(key, base_value, cur_value))
        else:
            tol = (
                tolerance
                if tolerance is not None
                else float(per_metric.get(key, default_tol))
            )
            findings.extend(_check_timer(key, base_value, cur_value, tol))

    for key in sorted(set(current_metrics) - set(baseline_metrics)):
        findings.append(
            Finding(
                metric=key,
                baseline=None,
                current=_scalar(current_metrics[key]),
                tolerance=None,
                regressed=False,
                note=f"note {key}: new metric, not in baseline",
            )
        )
    findings.sort(key=lambda f: (not f.regressed, f.metric))
    return findings


def _scalar(value: Any) -> float | None:
    if isinstance(value, dict):
        return float(value.get("p50", 0.0))
    return float(value)


def _check_counter(key: str, base: Any, cur: Any) -> Finding:
    base_i, cur_i = int(base), int(cur)
    if base_i != cur_i:
        return Finding(
            metric=key,
            baseline=base_i,
            current=cur_i,
            tolerance=None,
            regressed=True,
            note=f"REGRESSION {key}: expected exactly {base_i}, got {cur_i}",
        )
    return Finding(
        metric=key,
        baseline=base_i,
        current=cur_i,
        tolerance=None,
        regressed=False,
        note=f"ok {key}: {cur_i}",
    )


def _check_timer(
    key: str, base: dict[str, Any], cur: dict[str, Any], tol: float
) -> list[Finding]:
    findings = []
    for field in TIMER_FIELDS:
        base_v = float(base.get(field, 0.0))
        cur_v = float(cur.get(field, 0.0))
        metric = f"{key}#{field}"
        if base_v <= 0.0:
            # An empty/zero baseline timer carries no budget to enforce.
            findings.append(
                Finding(
                    metric=metric,
                    baseline=base_v,
                    current=cur_v,
                    tolerance=tol,
                    regressed=False,
                    note=f"n/a {metric}: zero baseline, nothing to enforce",
                )
            )
            continue
        limit = base_v * (1.0 + tol)
        if cur_v > limit:
            change = (cur_v - base_v) / base_v * 100.0
            findings.append(
                Finding(
                    metric=metric,
                    baseline=base_v,
                    current=cur_v,
                    tolerance=tol,
                    regressed=True,
                    note=(
                        f"REGRESSION {metric}: {cur_v:.6g}s vs baseline "
                        f"{base_v:.6g}s ({change:+.1f}%, tolerance "
                        f"+{tol * 100:.0f}%)"
                    ),
                )
            )
        elif cur_v < base_v * (1.0 - tol):
            change = (cur_v - base_v) / base_v * 100.0
            findings.append(
                Finding(
                    metric=metric,
                    baseline=base_v,
                    current=cur_v,
                    tolerance=tol,
                    regressed=False,
                    note=(
                        f"improved {metric}: {cur_v:.6g}s vs baseline "
                        f"{base_v:.6g}s ({change:+.1f}%) — consider "
                        "re-recording the baseline"
                    ),
                )
            )
        else:
            findings.append(
                Finding(
                    metric=metric,
                    baseline=base_v,
                    current=cur_v,
                    tolerance=tol,
                    regressed=False,
                    note=f"ok {metric}: {cur_v:.6g}s (baseline {base_v:.6g}s)",
                )
            )
    return findings


def render_check_report(findings: list[Finding], verbose: bool = False) -> str:
    """The ``repro-obs bench check`` report.

    Regressions and improvements always print; ``verbose`` adds the
    ``ok`` lines.  Ends with a one-line verdict.
    """
    lines = [
        f.note
        for f in findings
        if verbose or f.regressed or f.note.startswith(("improved", "note"))
    ]
    regressions = sum(1 for f in findings if f.regressed)
    compared = len(findings)
    if regressions:
        lines.append(f"bench check FAILED: {regressions}/{compared} "
                     "compared metrics regressed")
    else:
        lines.append(f"bench check OK: {compared} metrics within tolerance")
    return "\n".join(lines)
