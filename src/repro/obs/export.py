"""Render run manifests for external consumers.

Two formats, both pure functions of a loaded manifest dict:

* :func:`to_openmetrics` — OpenMetrics / Prometheus text exposition.
  Counters become ``*_total`` samples, gauges plain samples, and timers
  summaries (``quantile="0.5" | "0.95" | "0.99"`` plus ``_count`` /
  ``_sum``).  Run identity is exported as a ``repro_run`` info metric.
  The output follows the OpenMetrics text format: one ``# TYPE`` line
  per family, escaped label values, and a trailing ``# EOF``.
* :func:`to_flat_json` — a flat, diff-friendly JSON document keyed by
  series label (``name{tag=value,...}``), for spreadsheet or jq-style
  consumption.

Surfaced as ``repro-obs export --format openmetrics|json``.
"""

from __future__ import annotations

import json
import re
from typing import Any

__all__ = [
    "metric_name",
    "escape_label_value",
    "to_openmetrics",
    "to_flat_json",
]

#: Prefix stamped onto every exported metric family.
METRIC_PREFIX = "repro_"

#: Timer quantiles exported as OpenMetrics summary samples.
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str) -> str:
    """The OpenMetrics family name for an internal metric name.

    Dots (our namespace separator) and any other character outside
    ``[a-zA-Z0-9_:]`` become underscores, and every family gets the
    ``repro_`` prefix: ``epoch.phase_s`` -> ``repro_epoch_phase_s``.
    """
    sanitized = _INVALID_NAME_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return METRIC_PREFIX + sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_pairs(tags: dict[str, str]) -> list[tuple[str, str]]:
    return [
        (_INVALID_LABEL_CHARS.sub("_", key), escape_label_value(str(value)))
        for key, value in sorted(tags.items())
    ]


def _render_labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _series_label(entry: dict[str, Any]) -> str:
    tags = entry.get("tags") or {}
    if not tags:
        return entry["name"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"{entry['name']}{{{inner}}}"


def _group_by_name(entries: Any) -> dict[str, list[dict[str, Any]]]:
    families: dict[str, list[dict[str, Any]]] = {}
    for entry in entries:
        families.setdefault(entry["name"], []).append(entry)
    return families


def to_openmetrics(manifest: dict[str, Any]) -> str:
    """One manifest as OpenMetrics text exposition (with ``# EOF``)."""
    lines: list[str] = []

    info_tags = {
        "run_id": str(manifest.get("run_id", "")),
        "kind": str(manifest.get("kind", "campaign")),
        "label": str(manifest.get("label", "")),
        "code_version": str(manifest.get("code_version", "")),
        "seed": str(manifest.get("seed", "")),
    }
    lines.append(f"# TYPE {METRIC_PREFIX}run info")
    lines.append(
        f"{METRIC_PREFIX}run_info{_render_labels(_label_pairs(info_tags))} 1"
    )

    lines.append(f"# TYPE {METRIC_PREFIX}run_wall_time_seconds gauge")
    lines.append(
        f"{METRIC_PREFIX}run_wall_time_seconds "
        f"{_fmt_value(float(manifest.get('wall_time_s', 0.0)))}"
    )

    for name, entries in sorted(_group_by_name(manifest.get("counters", ()))
                                .items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} counter")
        for entry in entries:
            labels = _render_labels(_label_pairs(entry.get("tags") or {}))
            lines.append(f"{family}_total{labels} {_fmt_value(entry['value'])}")

    for name, entries in sorted(_group_by_name(manifest.get("gauges", ()))
                                .items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        for entry in entries:
            labels = _render_labels(_label_pairs(entry.get("tags") or {}))
            lines.append(f"{family}{labels} {_fmt_value(entry['value'])}")

    for name, entries in sorted(_group_by_name(manifest.get("timers", ()))
                                .items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} summary")
        for entry in entries:
            pairs = _label_pairs(entry.get("tags") or {})
            for quantile, field in SUMMARY_QUANTILES:
                q_labels = _render_labels(pairs + [("quantile", quantile)])
                lines.append(
                    f"{family}{q_labels} "
                    f"{_fmt_value(float(entry.get(field, 0.0)))}"
                )
            labels = _render_labels(pairs)
            lines.append(f"{family}_count{labels} {int(entry.get('count', 0))}")
            lines.append(
                f"{family}_sum{labels} {_fmt_value(float(entry.get('sum', 0.0)))}"
            )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_flat_json(manifest: dict[str, Any]) -> str:
    """One manifest as a flat JSON document keyed by series label."""
    document: dict[str, Any] = {
        "run_id": manifest.get("run_id", ""),
        "kind": manifest.get("kind", "campaign"),
        "label": manifest.get("label", ""),
        "code_version": manifest.get("code_version", ""),
        "seed": manifest.get("seed", 0),
        "wall_time_s": manifest.get("wall_time_s", 0.0),
        "counters": {
            _series_label(entry): entry["value"]
            for entry in manifest.get("counters", ())
        },
        "gauges": {
            _series_label(entry): entry["value"]
            for entry in manifest.get("gauges", ())
        },
        "timers": {
            _series_label(entry): {
                field: entry.get(field, 0 if field == "count" else 0.0)
                for field in ("count", "sum", "min", "max", "p50", "p95", "p99")
            }
            for entry in manifest.get("timers", ())
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
