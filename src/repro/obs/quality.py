"""Online prediction-quality tracking: closing the forecast->outcome loop.

The paper's whole contribution is a *prediction-error* measurement —
the relative error ``E = (R_hat - R) / min(R_hat, R)`` of Eq. (4)
between a forecast and the throughput that then materialises.  Offline,
:func:`~repro.hb.evaluate.evaluate_predictor` walks a trace computing
exactly that.  Online, ``repro-serve`` emits forecasts continuously but
(before this module) never learned whether they were any good.

:class:`QualityTracker` closes the loop: on every ingested sample the
store scores **the forecast that was standing before the sample
arrived** against the sample, per ``path x predictor``, with the same
:func:`~repro.core.metrics.relative_error` the offline evaluator uses.
Because the offline walk-forward also forecasts *before* updating, the
online error stream is bit-identical to ``evaluate_predictor``'s
residuals — the parity suite in ``tests/obs/test_quality.py`` proves it
over replayed campaign traces.

Memory is bounded everywhere:

* each series keeps a **window** of the last ``config.window`` errors
  (deque + sorted mirror, so the exported p50/p95 are exact over the
  window) plus O(1) cumulative aggregates (count, total |E|, EWMA);
* the per-path map is LRU-bounded at ``config.max_paths``; the store
  additionally calls :meth:`QualityTracker.drop` when it evicts a path.

Signals derived from the error stream:

* **SLO breaches** — ``|E| > config.slo_abs_error`` increments the
  ``serve.slo_breaches`` counter (tagged by predictor).
* **Drift alerts** — when the window first fills, its p95 |E| is frozen
  as the baseline; if the live windowed p95 then exceeds
  ``baseline * drift_factor`` (and ``baseline + drift_min_delta``) for
  ``drift_patience`` consecutive scores, a ``predict.drift_alerts``
  counter ticks, a ``quality.drift`` event is emitted, and the baseline
  re-freezes at the new level (one alert per excursion, not per sample).
* **Level-shift resets** — when the predictor's own LSO detector fires
  (``hb.level_shifts``), pre-shift residuals describe a regime that no
  longer exists, so the window and drift baseline are cleared rather
  than blending across the shift.  Cumulative aggregates keep counting:
  the error *stream* is continuous (parity holds), only the *windowed*
  statistics restart.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.metrics import relative_error
from repro.obs.metrics import percentile
from repro.obs.telemetry import get_telemetry, obs_enabled

__all__ = ["QualityConfig", "PredictorQuality", "QualityTracker"]


@dataclass(frozen=True)
class QualityConfig:
    """Tuning knobs of a :class:`QualityTracker`.

    Attributes:
        window: rolling-window length per ``path x predictor`` series;
            the exported p50/p95 are exact over this window.
        ewma_alpha: smoothing factor of the |E| EWMA (weight of the
            newest error).
        slo_abs_error: |E| threshold counted as an SLO breach
            (``serve.slo_breaches``); ``None`` disables SLO accounting.
        drift_factor: windowed p95 must exceed ``baseline * factor``
            to count toward a drift alert.
        drift_min_delta: ... and exceed ``baseline + min_delta`` — an
            absolute floor so a near-zero baseline (a perfectly
            predictable path) cannot alert on noise.
        drift_patience: consecutive over-limit scores required before
            the alert fires.
        max_paths: LRU bound on tracked paths.
    """

    window: int = 120
    ewma_alpha: float = 0.1
    slo_abs_error: float | None = 1.0
    drift_factor: float = 2.0
    drift_min_delta: float = 0.05
    drift_patience: int = 5
    max_paths: int = 4096

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ConfigurationError(f"window must be >= 2, got {self.window}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.slo_abs_error is not None and self.slo_abs_error <= 0:
            raise ConfigurationError(
                f"slo_abs_error must be positive or None, got {self.slo_abs_error}"
            )
        if self.drift_factor <= 1.0:
            raise ConfigurationError(
                f"drift_factor must be > 1, got {self.drift_factor}"
            )
        if self.drift_min_delta < 0:
            raise ConfigurationError(
                f"drift_min_delta must be >= 0, got {self.drift_min_delta}"
            )
        if self.drift_patience < 1:
            raise ConfigurationError(
                f"drift_patience must be >= 1, got {self.drift_patience}"
            )
        if self.max_paths < 1:
            raise ConfigurationError(f"max_paths must be >= 1, got {self.max_paths}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "ewma_alpha": self.ewma_alpha,
            "slo_abs_error": self.slo_abs_error,
            "drift_factor": self.drift_factor,
            "drift_min_delta": self.drift_min_delta,
            "drift_patience": self.drift_patience,
            "max_paths": self.max_paths,
        }


class PredictorQuality:
    """One ``path x predictor`` error series: window + aggregates."""

    __slots__ = (
        "config",
        "n_scored",
        "n_not_ready",
        "n_invalid",
        "n_slo_breaches",
        "n_drift_alerts",
        "n_level_shift_resets",
        "total_abs_error",
        "ewma_abs_error",
        "last_error",
        "baseline_p95",
        "drift_streak",
        "level_shifts_seen",
        "_window",
        "_sorted",
    )

    def __init__(self, config: QualityConfig) -> None:
        self.config = config
        self.n_scored = 0
        self.n_not_ready = 0
        self.n_invalid = 0
        self.n_slo_breaches = 0
        self.n_drift_alerts = 0
        self.n_level_shift_resets = 0
        self.total_abs_error = 0.0
        self.ewma_abs_error: float | None = None
        self.last_error: float | None = None
        self.baseline_p95: float | None = None
        self.drift_streak = 0
        #: cumulative hb.level_shifts of the scored predictor at the last
        #: score; ``None`` until the first score (a path restored from a
        #: snapshot may arrive with shifts already on the odometer).
        self.level_shifts_seen: int | None = None
        self._window: deque[float] = deque(maxlen=config.window)
        self._sorted: list[float] = []  # sorted |E| mirror of _window

    def observe(self, error: float, level_shifts: int) -> tuple[bool, bool, bool]:
        """Absorb one scored error.

        Args:
            error: the signed relative error (Eq. 4).
            level_shifts: the scored predictor's cumulative
                ``n_level_shifts`` at scoring time.

        Returns:
            ``(slo_breach, drift_alert, shift_reset)`` flags for the
            tracker to translate into telemetry.
        """
        shift_reset = False
        if self.level_shifts_seen is None:
            self.level_shifts_seen = level_shifts
        elif level_shifts > self.level_shifts_seen:
            # The predictor's LSO detector fired since the last score:
            # pre-shift residuals describe the old regime.  Restart the
            # windowed statistics; cumulative aggregates keep counting.
            self.level_shifts_seen = level_shifts
            self.n_level_shift_resets += 1
            self._window.clear()
            self._sorted.clear()
            self.baseline_p95 = None
            self.drift_streak = 0
            shift_reset = True

        config = self.config
        abs_error = abs(error)
        self.n_scored += 1
        self.last_error = error
        self.total_abs_error += abs_error
        if self.ewma_abs_error is None:
            self.ewma_abs_error = abs_error
        else:
            alpha = config.ewma_alpha
            self.ewma_abs_error += alpha * (abs_error - self.ewma_abs_error)

        window = self._window
        ordered = self._sorted
        if len(window) == config.window:
            # deque(maxlen) drops the left element on append; mirror that
            # removal in the sorted copy first.
            del ordered[bisect_left(ordered, abs(window[0]))]
        window.append(error)
        insort(ordered, abs_error)

        slo = config.slo_abs_error
        slo_breach = slo is not None and abs_error > slo
        if slo_breach:
            self.n_slo_breaches += 1

        drift_alert = False
        if len(window) == config.window:
            windowed_p95 = percentile(ordered, 95.0)
            if self.baseline_p95 is None:
                self.baseline_p95 = windowed_p95
            else:
                limit = max(
                    self.baseline_p95 * config.drift_factor,
                    self.baseline_p95 + config.drift_min_delta,
                )
                if windowed_p95 > limit:
                    self.drift_streak += 1
                    if self.drift_streak >= config.drift_patience:
                        drift_alert = True
                        self.n_drift_alerts += 1
                        # Re-freeze at the new level: one alert per
                        # excursion, and recovery re-arms naturally.
                        self.baseline_p95 = windowed_p95
                        self.drift_streak = 0
                else:
                    self.drift_streak = 0
        return slo_breach, drift_alert, shift_reset

    def windowed_quantile(self, q: float) -> float | None:
        """Exact nearest-rank |E| quantile over the current window."""
        if not self._sorted:
            return None
        return percentile(self._sorted, q)

    def summary(self) -> dict[str, Any]:
        """JSON-able statistics of this series."""
        scored = self.n_scored
        return {
            "scored": scored,
            "not_ready": self.n_not_ready,
            "invalid": self.n_invalid,
            "mean_abs_error": (self.total_abs_error / scored) if scored else None,
            "ewma_abs_error": self.ewma_abs_error,
            "last_error": self.last_error,
            "window_len": len(self._window),
            "p50_abs_error": self.windowed_quantile(50.0),
            "p95_abs_error": self.windowed_quantile(95.0),
            "baseline_p95": self.baseline_p95,
            "slo_breaches": self.n_slo_breaches,
            "drift_alerts": self.n_drift_alerts,
            "level_shift_resets": self.n_level_shift_resets,
            "level_shifts_seen": self.level_shifts_seen or 0,
        }


class QualityTracker:
    """Rolling per ``path x predictor`` forecast-quality accounting.

    The serving store calls :meth:`score` once per (valid sample,
    predictor) with the forecast that stood *before* the sample was
    ingested — matching the walk-forward order of
    :func:`~repro.hb.evaluate.evaluate_predictor`, so the two error
    streams are bit-identical.
    """

    def __init__(self, config: QualityConfig | None = None) -> None:
        self.config = config or QualityConfig()
        self._paths: OrderedDict[str, dict[str, PredictorQuality]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._paths)

    def paths(self) -> list[str]:
        return list(self._paths)

    def _series(self, key: str, predictor: str) -> PredictorQuality:
        paths = self._paths
        by_predictor = paths.get(key)
        if by_predictor is None:
            if len(paths) >= self.config.max_paths:
                evicted, _ = paths.popitem(last=False)
                self._discard_gauges(evicted)
            by_predictor = paths[key] = {}
        else:
            paths.move_to_end(key)
        series = by_predictor.get(predictor)
        if series is None:
            series = by_predictor[predictor] = PredictorQuality(self.config)
        return series

    def score(
        self,
        key: str,
        predictor: str,
        forecast: float | None,
        actual: float,
        level_shifts: int = 0,
    ) -> float | None:
        """Score one forecast against the sample that followed it.

        Args:
            key: the path key.
            predictor: the predictor name within the path's bundle.
            forecast: the forecast standing before ``actual`` arrived;
                ``None`` while the predictor is warming up (counted,
                not scored — the offline evaluator records NaN there).
            actual: the arriving throughput sample (positive, finite —
                invalid samples go to :meth:`observe_invalid` instead).
            level_shifts: the predictor's cumulative ``n_level_shifts``
                after ingesting ``actual``.

        Returns:
            The signed relative error, or ``None`` when not scored.
        """
        series = self._series(key, predictor)
        if forecast is None:
            series.n_not_ready += 1
            return None
        error = relative_error(float(forecast), float(actual))
        slo_breach, drift_alert, shift_reset = series.observe(error, level_shifts)
        if slo_breach or drift_alert or shift_reset:
            tele = get_telemetry()
            if slo_breach:
                tele.counter("serve.slo_breaches", predictor=predictor).inc()
            if drift_alert:
                tele.counter("predict.drift_alerts", predictor=predictor).inc()
                tele.emit(
                    "quality.drift",
                    path=key,
                    predictor=predictor,
                    windowed_p95=series.windowed_quantile(95.0),
                    ewma_abs_error=series.ewma_abs_error,
                    n_scored=series.n_scored,
                )
            if shift_reset:
                tele.emit(
                    "quality.level_shift_reset",
                    path=key,
                    predictor=predictor,
                    level_shifts=series.level_shifts_seen,
                )
        return error

    def observe_invalid(self, key: str, predictor: str) -> None:
        """Count a sample the streaming layer flagged as invalid.

        Invalid (non-finite / non-positive) samples never reach the
        predictors, so there is no residual to score — Eq. (4) is
        undefined for them.
        """
        self._series(key, predictor).n_invalid += 1

    def drop(self, key: str) -> None:
        """Forget a path (the store evicted it)."""
        if self._paths.pop(key, None) is not None:
            self._discard_gauges(key)

    def _discard_gauges(self, key: str) -> None:
        """Remove a dropped path's gauges from the live registry."""
        if not obs_enabled():
            return
        metrics = get_telemetry().metrics
        metrics.discard_gauges("predict.rel_error", path=key)
        metrics.discard_gauges("predict.ewma_abs_error", path=key)

    # -- export ----------------------------------------------------------

    def update_gauges(self) -> None:
        """Publish windowed quantile + EWMA gauges to the live registry.

        Called on ``/metrics`` render (not per sample): gauge cardinality
        is ``paths x predictors x {0.5, 0.95}``, bounded by the LRU caps.
        """
        tele = get_telemetry()
        if not tele.enabled:
            return
        for key, by_predictor in self._paths.items():
            for name, series in by_predictor.items():
                p50 = series.windowed_quantile(50.0)
                if p50 is not None:
                    tele.gauge(
                        "predict.rel_error", path=key, predictor=name, quantile="0.5"
                    ).set(p50)
                    tele.gauge(
                        "predict.rel_error", path=key, predictor=name, quantile="0.95"
                    ).set(series.windowed_quantile(95.0))
                if series.ewma_abs_error is not None:
                    tele.gauge(
                        "predict.ewma_abs_error", path=key, predictor=name
                    ).set(series.ewma_abs_error)

    def path_summary(self, key: str) -> dict[str, Any] | None:
        """Per-predictor series summaries of one path, or ``None``."""
        by_predictor = self._paths.get(key)
        if by_predictor is None:
            return None
        return {name: series.summary() for name, series in by_predictor.items()}

    def summary(self, include_paths: bool = False) -> dict[str, Any]:
        """The tracker as one JSON-able document (routes, manifest, CLI).

        Per-predictor aggregates are exact over the full scored stream
        (means weight every scored epoch equally, across paths);
        ``worst_ewma_abs_error``/``worst_p95_abs_error`` name the path
        currently hurting most.
        """
        totals = {
            "paths": len(self._paths),
            "scored": 0,
            "not_ready": 0,
            "invalid": 0,
            "slo_breaches": 0,
            "drift_alerts": 0,
            "level_shift_resets": 0,
        }
        predictors: dict[str, dict[str, Any]] = {}
        for key, by_predictor in self._paths.items():
            for name, series in by_predictor.items():
                agg = predictors.get(name)
                if agg is None:
                    agg = predictors[name] = {
                        "paths": 0,
                        "scored": 0,
                        "not_ready": 0,
                        "invalid": 0,
                        "total_abs_error": 0.0,
                        "slo_breaches": 0,
                        "drift_alerts": 0,
                        "level_shift_resets": 0,
                        "worst_ewma_abs_error": None,
                        "worst_path": None,
                    }
                agg["paths"] += 1
                agg["scored"] += series.n_scored
                agg["not_ready"] += series.n_not_ready
                agg["invalid"] += series.n_invalid
                agg["total_abs_error"] += series.total_abs_error
                agg["slo_breaches"] += series.n_slo_breaches
                agg["drift_alerts"] += series.n_drift_alerts
                agg["level_shift_resets"] += series.n_level_shift_resets
                ewma = series.ewma_abs_error
                if ewma is not None and (
                    agg["worst_ewma_abs_error"] is None
                    or ewma > agg["worst_ewma_abs_error"]
                ):
                    agg["worst_ewma_abs_error"] = ewma
                    agg["worst_path"] = key
                totals["scored"] += series.n_scored
                totals["not_ready"] += series.n_not_ready
                totals["invalid"] += series.n_invalid
                totals["slo_breaches"] += series.n_slo_breaches
                totals["drift_alerts"] += series.n_drift_alerts
                totals["level_shift_resets"] += series.n_level_shift_resets
        for agg in predictors.values():
            scored = agg["scored"]
            total_abs = agg.pop("total_abs_error")
            agg["mean_abs_error"] = (total_abs / scored) if scored else None
        doc: dict[str, Any] = {
            "config": self.config.to_dict(),
            "totals": totals,
            "predictors": predictors,
        }
        if include_paths:
            doc["paths"] = {
                key: {name: series.summary() for name, series in by_predictor.items()}
                for key, by_predictor in self._paths.items()
            }
        return doc
