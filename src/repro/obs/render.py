"""Text renderings of telemetry: progress lines and manifest reports.

Everything here is pure — it takes snapshots/manifests and returns
strings — so the CLI layer stays a thin shell and the renderings are
unit-testable without capturing stdout.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "progress_line",
    "summary_report",
    "slowest_report",
    "compare_report",
    "quality_report",
]


def progress_line(snapshot: Any) -> str:
    """One live progress line for a ``CampaignProgress`` snapshot.

    The rate/ETA math lives on the snapshot itself (guarded against
    ``elapsed_s <= 0``); this only formats it.
    """
    eta = snapshot.eta_s
    eta_text = f"{eta:5.0f}s" if eta != float("inf") else "    ?s"
    return (
        f"[{snapshot.traces_done}/{snapshot.traces_total} traces] "
        f"{snapshot.epochs_done}/{snapshot.epochs_total} epochs, "
        f"{snapshot.epochs_per_s:6.1f} epochs/s, ETA {eta_text}"
    )


def _series_label(entry: dict[str, Any]) -> str:
    tags = entry.get("tags") or {}
    if not tags:
        return entry["name"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"{entry['name']}{{{inner}}}"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _counters_by_label(manifest: dict[str, Any]) -> dict[str, int]:
    return {
        _series_label(entry): entry["value"]
        for entry in manifest.get("counters", ())
    }


def summary_report(manifest: dict[str, Any]) -> str:
    """The ``repro-obs summary`` rendering of one manifest."""
    lines = []
    counts = manifest.get("counts", {})
    cache = manifest.get("cache", {})
    kind = manifest.get("kind", "campaign")
    kind_note = "" if kind == "campaign" else f" kind={kind}"
    lines.append(
        f"run {manifest.get('run_id', '?')} {kind_note} "
        f"label={manifest.get('label', '?')} seed={manifest.get('seed', '?')} "
        f"workers={manifest.get('workers', '?')}"
    )
    catalog_hash = manifest.get("catalog_hash", "")
    if catalog_hash:
        lines.append(f"catalog {catalog_hash[:16]}  cache_key "
                     f"{str(manifest.get('cache_key', ''))[:16]}")
    lines.append(
        f"dataset: {counts.get('paths', 0)} paths x "
        f"{counts.get('traces', 0)} traces, {counts.get('epochs', 0)} epochs"
    )
    analysis = manifest.get("analysis")
    if analysis:
        rendered = ", ".join(str(f) for f in analysis.get("figures", ()))
        lines.append(f"analyzed: {analysis.get('dataset', '?')}  "
                     f"figures: {rendered or '-'}")
        skipped = analysis.get("skipped", ())
        if skipped:
            lines.append(
                "skipped (not derivable): "
                + ", ".join(str(f) for f in skipped)
            )
    if kind == "analysis":
        lines.append(f"wall time: {manifest.get('wall_time_s', 0.0):.2f}s")
    else:
        source = "cache hit" if cache.get("hit") else "simulated"
        lines.append(
            f"wall time: {manifest.get('wall_time_s', 0.0):.2f}s ({source})"
        )

    timers = manifest.get("timers", ())
    if timers:
        lines.append("")
        lines.append(f"{'timer':<34} {'count':>7} {'total':>10} "
                     f"{'p50':>9} {'p95':>9} {'p99':>9}")
        for entry in timers:
            lines.append(
                f"{_series_label(entry):<34} {entry['count']:>7} "
                f"{_fmt_seconds(entry['sum']):>10} "
                f"{_fmt_seconds(entry['p50']):>9} "
                f"{_fmt_seconds(entry['p95']):>9} "
                f"{_fmt_seconds(entry['p99']):>9}"
            )

    counters = manifest.get("counters", ())
    if counters:
        lines.append("")
        lines.append(f"{'counter':<34} {'value':>12}")
        for entry in counters:
            lines.append(f"{_series_label(entry):<34} {entry['value']:>12}")

    by_kind = manifest.get("events", {}).get("by_kind", {})
    if by_kind:
        lines.append("")
        rendered = ", ".join(f"{kind}={n}" for kind, n in sorted(by_kind.items()))
        lines.append(f"events: {rendered}")
    return "\n".join(lines)


def slowest_report(events: list[dict[str, Any]], n: int = 10) -> str:
    """Top-``n`` slowest epochs by simulated wall time."""
    epochs = [
        event for event in events
        if "elapsed_s" in event and "epoch" in event
    ]
    if not epochs:
        return "no epoch events recorded"
    ranked = sorted(epochs, key=lambda e: e["elapsed_s"], reverse=True)[:n]
    phase_keys = sorted(
        {
            key
            for event in ranked
            for key in event
            if key.endswith("_s") and key != "elapsed_s"
        }
    )
    header = f"{'path':<10} {'trace':>5} {'epoch':>5} {'elapsed':>10}"
    for key in phase_keys:
        header += f" {key[:-2]:>10}"
    lines = [header]
    for event in ranked:
        row = (
            f"{str(event.get('path', '?')):<10} "
            f"{event.get('trace', 0):>5} {event.get('epoch', 0):>5} "
            f"{_fmt_seconds(event['elapsed_s']):>10}"
        )
        for key in phase_keys:
            value = event.get(key)
            row += f" {_fmt_seconds(value):>10}" if value is not None else f" {'-':>10}"
        lines.append(row)
    return "\n".join(lines)


def _fmt_error(value: float | None) -> str:
    """An |E| statistic as text (``-`` when the series never scored)."""
    return f"{value:.4f}" if value is not None else "-"


def quality_report(doc: dict[str, Any]) -> str:
    """The ``repro-obs quality`` rendering of one quality document.

    ``doc`` is a :meth:`~repro.obs.quality.QualityTracker.summary`
    document — from a live server's ``GET /quality`` or the ``quality``
    section of a ``kind: "serve"`` manifest.
    """
    totals = doc.get("totals", {})
    config = doc.get("config", {})
    slo = config.get("slo_abs_error")
    slo_note = f"slo |E|>{slo}" if slo is not None else "no slo"
    lines = [
        f"quality: {totals.get('paths', 0)} path(s), "
        f"{totals.get('scored', 0)} scored, "
        f"{totals.get('not_ready', 0)} warm-up, "
        f"{totals.get('invalid', 0)} invalid ({slo_note}, "
        f"window {config.get('window', '?')})",
        f"drift alerts: {totals.get('drift_alerts', 0)}  "
        f"slo breaches: {totals.get('slo_breaches', 0)}  "
        f"level-shift resets: {totals.get('level_shift_resets', 0)}",
    ]
    predictors = doc.get("predictors", {})
    if predictors:
        lines.append("")
        lines.append(
            f"{'predictor':<12} {'scored':>8} {'mean|E|':>9} {'worst ewma':>11} "
            f"{'drift':>6} {'slo':>5} {'shifts':>7}  worst path"
        )
        for name in sorted(predictors):
            agg = predictors[name]
            lines.append(
                f"{name:<12} {agg.get('scored', 0):>8} "
                f"{_fmt_error(agg.get('mean_abs_error')):>9} "
                f"{_fmt_error(agg.get('worst_ewma_abs_error')):>11} "
                f"{agg.get('drift_alerts', 0):>6} {agg.get('slo_breaches', 0):>5} "
                f"{agg.get('level_shift_resets', 0):>7}  "
                f"{agg.get('worst_path') or '-'}"
            )
    paths = doc.get("paths")
    if paths:
        lines.append("")
        lines.append(
            f"{'path x predictor':<34} {'scored':>8} {'p50|E|':>8} "
            f"{'p95|E|':>8} {'ewma|E|':>8} {'last E':>8}"
        )
        for key in sorted(paths):
            for name in sorted(paths[key]):
                series = paths[key][name]
                last = series.get("last_error")
                last_text = f"{last:+.4f}" if last is not None else "-"
                lines.append(
                    f"{key + ' ' + name:<34} {series.get('scored', 0):>8} "
                    f"{_fmt_error(series.get('p50_abs_error')):>8} "
                    f"{_fmt_error(series.get('p95_abs_error')):>8} "
                    f"{_fmt_error(series.get('ewma_abs_error')):>8} "
                    f"{last_text:>8}"
                )
    return "\n".join(lines)


def _delta(a: float | None, b: float | None) -> str:
    """Relative change of ``b`` against baseline ``a``, as text.

    Degenerate baselines never divide: a series absent on one side is
    ``n/a``, a zero baseline gaining a value is ``new`` (the relative
    change is undefined), and equal values (including 0 -> 0) are ``=``.
    """
    if a is None or b is None:
        return "n/a"
    if a == b:
        return "="
    if a == 0:
        return "new"
    change = (b - a) / abs(a) * 100.0
    return f"{change:+.1f}%"


def compare_report(a: dict[str, Any], b: dict[str, Any]) -> str:
    """The ``repro-obs compare RUN_A RUN_B`` rendering.

    Counters and timer aggregates side by side with relative deltas
    (B relative to A).
    """
    lines = [
        f"A: run {a.get('run_id', '?')}  label={a.get('label', '?')} "
        f"seed={a.get('seed', '?')}  wall={a.get('wall_time_s', 0.0):.2f}s",
        f"B: run {b.get('run_id', '?')}  label={b.get('label', '?')} "
        f"seed={b.get('seed', '?')}  wall={b.get('wall_time_s', 0.0):.2f}s",
    ]
    if a.get("catalog_hash") and a.get("catalog_hash") == b.get("catalog_hash"):
        lines.append("same catalog")
    wall_a = a.get("wall_time_s", 0.0)
    wall_b = b.get("wall_time_s", 0.0)
    lines.append(f"wall time: {wall_a:.2f}s -> {wall_b:.2f}s "
                 f"({_delta(wall_a, wall_b)})")

    counters_a = _counters_by_label(a)
    counters_b = _counters_by_label(b)
    labels = sorted(set(counters_a) | set(counters_b))
    if labels:
        lines.append("")
        lines.append(f"{'counter':<34} {'A':>12} {'B':>12} {'delta':>8}")
        for label in labels:
            va = counters_a.get(label, 0)
            vb = counters_b.get(label, 0)
            lines.append(f"{label:<34} {va:>12} {vb:>12} {_delta(va, vb):>8}")

    timers_a = {_series_label(t): t for t in a.get("timers", ())}
    timers_b = {_series_label(t): t for t in b.get("timers", ())}
    labels = sorted(set(timers_a) | set(timers_b))
    if labels:
        lines.append("")
        lines.append(f"{'timer (p50)':<34} {'A':>10} {'B':>10} {'delta':>8}")
        for label in labels:
            pa = timers_a[label].get("p50", 0.0) if label in timers_a else None
            pb = timers_b[label].get("p50", 0.0) if label in timers_b else None
            fa = _fmt_seconds(pa) if pa is not None else "-"
            fb = _fmt_seconds(pb) if pb is not None else "-"
            lines.append(f"{label:<34} {fa:>10} {fb:>10} {_delta(pa, pb):>8}")

    quality_a = (a.get("quality") or {}).get("predictors", {})
    quality_b = (b.get("quality") or {}).get("predictors", {})
    names = sorted(set(quality_a) | set(quality_b))
    if names:
        lines.append("")
        lines.append(
            f"{'quality (mean|E|)':<34} {'A':>10} {'B':>10} {'delta':>8}"
        )
        for name in names:
            ea = quality_a.get(name, {}).get("mean_abs_error")
            eb = quality_b.get(name, {}).get("mean_abs_error")
            lines.append(
                f"{name:<34} {_fmt_error(ea):>10} {_fmt_error(eb):>10} "
                f"{_delta(ea, eb):>8}"
            )
        for field, title in (
            ("scored", "quality (scored)"),
            ("drift_alerts", "quality (drift alerts)"),
            ("slo_breaches", "quality (slo breaches)"),
        ):
            lines.append("")
            lines.append(f"{title:<34} {'A':>10} {'B':>10} {'delta':>8}")
            for name in names:
                va = quality_a.get(name, {}).get(field)
                vb = quality_b.get(name, {}).get(field)
                fa = str(va) if va is not None else "-"
                fb = str(vb) if vb is not None else "-"
                lines.append(
                    f"{name:<34} {fa:>10} {fb:>10} {_delta(va, vb):>8}"
                )
    return "\n".join(lines)
