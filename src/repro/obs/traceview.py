"""Rendering span trees: timelines, critical paths, Perfetto export.

The consumer side of :mod:`repro.obs.spans`.  Input is the flat list of
``kind: "span"`` events a run recorded (from an ``*.events.jsonl``
sidecar via :func:`repro.obs.recorder.read_events`, or a live server's
``GET /trace``); output is one of:

* :func:`render_timeline` — an indented text tree per trace, children
  in start-time order, durations and tags inline;
* :func:`critical_path` / :func:`critical_path_table` — the longest
  chain of child spans from a trace's root (at every node, descend
  into the child with the greatest duration), and the per-name
  aggregation over it: where would optimization effort pay off;
* :func:`to_chrome_trace` — Chrome trace-event JSON (``ph: "X"``
  complete events, microsecond timestamps), loadable in
  ``ui.perfetto.dev`` or ``chrome://tracing``.

Span events arrive flat and unordered; :func:`build_traces` groups them
by ``trace_id`` and rebuilds parent/child structure from the ids.  A
span whose parent is missing (sampled out, dropped past the span cap,
or lost with a crashed worker) is treated as a root of its trace rather
than discarded — a damaged timeline renders partially, like a damaged
events sidecar loads partially.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "SpanNode",
    "build_traces",
    "render_timeline",
    "critical_path",
    "critical_path_table",
    "render_critical_path",
    "to_chrome_trace",
    "validate_chrome_trace",
]

#: Span-event bookkeeping fields; everything else on the event is a tag.
_CORE_FIELDS = frozenset(
    ("kind", "trace_id", "span_id", "parent_id", "name", "ts", "dur_s", "run")
)


class SpanNode:
    """One span in a rebuilt tree."""

    __slots__ = ("event", "children")

    def __init__(self, event: dict[str, Any]) -> None:
        self.event = event
        self.children: list[SpanNode] = []

    @property
    def name(self) -> str:
        return str(self.event.get("name", "?"))

    @property
    def ts(self) -> float:
        return float(self.event.get("ts", 0.0))

    @property
    def dur_s(self) -> float:
        return float(self.event.get("dur_s", 0.0))

    @property
    def tags(self) -> dict[str, Any]:
        return {
            k: v for k, v in self.event.items() if k not in _CORE_FIELDS
        }


def build_traces(
    events: list[dict[str, Any]],
) -> dict[str, list[SpanNode]]:
    """Group span events by trace and rebuild each trace's tree(s).

    Returns ``{trace_id: [root SpanNode, ...]}`` in first-seen trace
    order; each trace's roots and every node's children are sorted by
    start time (ties broken by insertion order, which follows the
    recorded event order).  Non-span events are ignored, so the whole
    events sidecar can be passed in unfiltered.
    """
    nodes: dict[str, dict[str, SpanNode]] = {}
    order: list[str] = []
    for event in events:
        if event.get("kind") != "span":
            continue
        trace_id = str(event.get("trace_id", ""))
        span_id = event.get("span_id")
        if not trace_id or not isinstance(span_id, str):
            continue
        per_trace = nodes.get(trace_id)
        if per_trace is None:
            per_trace = nodes[trace_id] = {}
            order.append(trace_id)
        per_trace[span_id] = SpanNode(event)
    traces: dict[str, list[SpanNode]] = {}
    for trace_id in order:
        per_trace = nodes[trace_id]
        roots: list[SpanNode] = []
        for node in per_trace.values():
            parent = per_trace.get(node.event.get("parent_id"))
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in per_trace.values():
            node.children.sort(key=lambda n: n.ts)
        roots.sort(key=lambda n: n.ts)
        traces[trace_id] = roots
    return traces


def _format_tags(tags: dict[str, Any]) -> str:
    if not tags:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in sorted(tags.items()))


def _format_dur(dur_s: float) -> str:
    if dur_s >= 1.0:
        return f"{dur_s:.3f}s"
    if dur_s >= 1e-3:
        return f"{dur_s * 1e3:.3f}ms"
    return f"{dur_s * 1e6:.0f}us"


def _render_node(
    node: SpanNode,
    depth: int,
    lines: list[str],
    max_children: int,
) -> None:
    lines.append(
        f"{'  ' * depth}{node.name}  {_format_dur(node.dur_s)}"
        f"{_format_tags(node.tags)}"
    )
    shown = node.children
    hidden = 0
    if max_children > 0 and len(shown) > max_children:
        hidden = len(shown) - max_children
        shown = shown[:max_children]
    for child in shown:
        _render_node(child, depth + 1, lines, max_children)
    if hidden:
        lines.append(f"{'  ' * (depth + 1)}... (+{hidden} more)")


def render_timeline(
    events: list[dict[str, Any]],
    trace: str | None = None,
    max_children: int = 10,
) -> str:
    """Render span events as indented per-trace text timelines.

    Args:
        events: flat event list (non-span events ignored).
        trace: restrict to one trace id.
        max_children: children shown per node before eliding with a
            ``(+N more)`` line; ``0`` shows everything.  Keeps a
            1000-path campaign's timeline scrollable.
    """
    traces = build_traces(events)
    if trace is not None:
        traces = {t: r for t, r in traces.items() if t == trace}
        if not traces:
            return f"no spans for trace {trace!r}\n"
    if not traces:
        return "no spans recorded\n"
    lines: list[str] = []
    for trace_id, roots in traces.items():
        n_spans = _count_nodes(roots)
        total = sum(r.dur_s for r in roots)
        lines.append(
            f"trace {trace_id}  ({n_spans} span(s), {_format_dur(total)})"
        )
        for root in roots:
            _render_node(root, 1, lines, max_children)
        lines.append("")
    return "\n".join(lines)


def _count_nodes(roots: list[SpanNode]) -> int:
    count = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node.children)
    return count


def critical_path(roots: list[SpanNode]) -> list[SpanNode]:
    """The longest chain of child spans from a trace's dominant root.

    Starting from the longest root, descend at every node into the
    child with the greatest duration until a leaf.  The returned chain
    is the sequence of spans that bounds the trace's wall time: making
    anything *off* it faster cannot make the trace faster.
    """
    if not roots:
        return []
    node = max(roots, key=lambda n: n.dur_s)
    chain = [node]
    while node.children:
        node = max(node.children, key=lambda n: n.dur_s)
        chain.append(node)
    return chain


def critical_path_table(
    traces: dict[str, list[SpanNode]],
) -> list[dict[str, Any]]:
    """Aggregate every trace's critical path into a per-name table.

    For each span on a critical path, its **exclusive** time is its
    duration minus the chosen child's — the share only that span can
    account for.  Rows sum exclusive time per span name across all
    traces and come back sorted by it, descending: the top row is where
    optimization effort pays off first.
    """
    rows: dict[str, dict[str, Any]] = {}
    for roots in traces.values():
        chain = critical_path(roots)
        for i, node in enumerate(chain):
            child_dur = chain[i + 1].dur_s if i + 1 < len(chain) else 0.0
            row = rows.get(node.name)
            if row is None:
                row = rows[node.name] = {
                    "name": node.name,
                    "count": 0,
                    "total_s": 0.0,
                    "exclusive_s": 0.0,
                }
            row["count"] += 1
            row["total_s"] += node.dur_s
            row["exclusive_s"] += max(0.0, node.dur_s - child_dur)
    return sorted(
        rows.values(), key=lambda r: r["exclusive_s"], reverse=True
    )


def render_critical_path(events: list[dict[str, Any]]) -> str:
    """The aggregated who's-on-the-critical-path table as text."""
    traces = build_traces(events)
    table = critical_path_table(traces)
    if not table:
        return "no spans recorded\n"
    width = max(len(r["name"]) for r in table)
    width = max(width, len("span"))
    lines = [
        f"critical path across {len(traces)} trace(s):",
        f"  {'span':<{width}}  {'count':>7}  {'exclusive':>11}  {'total':>11}",
    ]
    for row in table:
        lines.append(
            f"  {row['name']:<{width}}  {row['count']:>7}"
            f"  {_format_dur(row['exclusive_s']):>11}"
            f"  {_format_dur(row['total_s']):>11}"
        )
    lines.append("")
    return "\n".join(lines)


def to_chrome_trace(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert span events to Chrome trace-event JSON.

    One ``ph: "X"`` (complete) event per span, timestamps/durations in
    microseconds normalized to the earliest span; one process per
    trace (``pid``), named by a ``process_name`` metadata event; one
    thread (``tid``) per direct child of a trace's root, so sibling
    subtrees that genuinely overlapped in wall time (parallel campaign
    units) land on separate tracks and nest cleanly within them.  Load
    the output in ``ui.perfetto.dev`` or ``chrome://tracing``.
    """
    traces = build_traces(events)
    out: list[dict[str, Any]] = []
    t0 = None
    for roots in traces.values():
        for root in roots:
            start = root.ts
            if t0 is None or start < t0:
                t0 = start
    if t0 is None:
        t0 = 0.0
    for pid, (trace_id, roots) in enumerate(traces.items(), start=1):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"trace {trace_id}"},
            }
        )
        next_tid = 0
        for root in roots:
            tid = next_tid
            next_tid += 1
            _emit_chrome(root, pid, tid, t0, out)
            for child in root.children:
                tid = next_tid
                next_tid += 1
                label = child.name + _format_tags(child.tags)
                out.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": label},
                    }
                )
                _emit_subtree(child, pid, tid, t0, out)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _emit_chrome(
    node: SpanNode, pid: int, tid: int, t0: float, out: list[dict[str, Any]]
) -> None:
    """Emit one span as a complete event (no recursion into children)."""
    out.append(
        {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": node.name,
            "cat": "span",
            "ts": round((node.ts - t0) * 1e6, 3),
            "dur": round(node.dur_s * 1e6, 3),
            "args": node.tags,
        }
    )


def _emit_subtree(
    node: SpanNode, pid: int, tid: int, t0: float, out: list[dict[str, Any]]
) -> None:
    _emit_chrome(node, pid, tid, t0, out)
    for child in node.children:
        _emit_subtree(child, pid, tid, t0, out)


def validate_chrome_trace(doc: Any) -> list[str]:
    """Schema-check a Chrome trace document; returns problem strings.

    Used by the trace smoke test: an empty list means the document is
    loadable by Perfetto's trace-event importer.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document must be an object with a traceEvents list"]
    entries = doc["traceEvents"]
    if not isinstance(entries, list):
        return ["traceEvents must be a list"]
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"traceEvents[{i}] is not an object")
            continue
        ph = entry.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"traceEvents[{i}] has unexpected ph {ph!r}")
            continue
        for field in ("pid", "tid", "name"):
            if field not in entry:
                problems.append(f"traceEvents[{i}] is missing {field!r}")
        if ph == "X":
            for field in ("ts", "dur"):
                value = entry.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"traceEvents[{i}].{field} must be a non-negative "
                        f"number, got {value!r}"
                    )
        try:
            json.dumps(entry)
        except (TypeError, ValueError) as exc:
            problems.append(f"traceEvents[{i}] is not JSON-able: {exc}")
    return problems
