"""Span-based tracing: one causal timeline over the telemetry stream.

A **span** is a named, tagged interval with an identity — ``trace_id``
(the tree it belongs to), ``span_id`` (itself), ``parent_id`` (the span
it happened inside, ``None`` for a root).  Completed spans are recorded
as ordinary telemetry events (``kind: "span"``) in
:attr:`Telemetry.events`, so they ride the existing machinery end to
end: they survive the executor's per-job ``drain()``/``merge()``
protocol, land in ``*.events.jsonl`` sidecars next to datasets and
serve manifests, and come back out through
:func:`repro.obs.recorder.read_events` for ``repro-obs trace`` to
render (see :mod:`repro.obs.traceview`).

The span tree a campaign produces::

    campaign                       (root, parent process)
      trace {path=p01, trace=0}    (one per (path, trace) unit)
        epoch {epoch=0}            (scalar engines; one per epoch)
          load / ping / pathload / iperf   (PhaseClock laps)
        ...
      trace {path=p01, trace=1}
        load / ping / pathload / iperf     (vector engine; per-trace)

Context propagates through a :class:`contextvars.ContextVar`, so spans
nest correctly across threads and asyncio tasks.  Worker processes
have no inherited context: their unit spans start as roots of fresh
traces, and :func:`reparent_spans` rewrites them under the dispatching
campaign span at merge time — a parallel campaign yields the *same
tree* as a serial one (``tests/testbed/test_span_parity.py``).

Phase spans are **synthesized from PhaseClock laps** after the fact
(:func:`record_epoch_spans`): the engines already lap a clock per
epoch, so tracing adds no extra clock reads to the hot path — the
spans' start times are reconstructed by laying the laps end to end
against one ``time.time()`` read.

Cost model:

* ``REPRO_OBS=0`` — :meth:`Telemetry.span` hands out one shared no-op
  object; nothing is allocated, no context is touched.
* ``REPRO_TRACE_SAMPLE`` (default 1.0) — the fraction of keyed traces
  recorded.  The decision is a **deterministic hash** of the sample
  key (``"{path_id}/{trace_index}"`` for campaign units, the
  ``X-Request-Id`` for serve requests), never the campaign RNG, so
  serial and parallel runs sample identically and datasets stay
  byte-identical.  An unsampled span blocks its whole subtree.
* ``REPRO_TRACE_MAX_SPANS`` (default 100000) — per-process cap on
  buffered span events; beyond it spans are dropped and counted
  (``spans.dropped``), so a long-lived serve process cannot grow its
  event buffer without bound.  The live ring (:func:`install_span_ring`,
  the ``GET /trace`` endpoint) keeps seeing fresh spans past the cap.
"""

from __future__ import annotations

import itertools
import os
import uuid
from collections import deque
from contextvars import ContextVar
from hashlib import blake2b
from time import perf_counter, time
from typing import Any

from repro.obs.telemetry import Telemetry, get_telemetry, obs_enabled

__all__ = [
    "ENV_TRACE_SAMPLE",
    "ENV_TRACE_MAX_SPANS",
    "DEFAULT_MAX_SPANS",
    "Span",
    "NULL_SPAN",
    "start_span",
    "current_context",
    "span_context_active",
    "trace_sample_rate",
    "sample_decision",
    "reparent_spans",
    "record_epoch_spans",
    "record_trace_phase_spans",
    "record_request_spans",
    "install_span_ring",
    "span_ring_enabled",
    "span_ring_snapshot",
]

#: Fraction of keyed traces recorded (0.0 .. 1.0; default record all).
ENV_TRACE_SAMPLE = "REPRO_TRACE_SAMPLE"

#: Per-process cap on buffered span events (``spans.dropped`` beyond it).
ENV_TRACE_MAX_SPANS = "REPRO_TRACE_MAX_SPANS"
DEFAULT_MAX_SPANS = 100_000

#: The active (trace_id, span_id) pair, or None outside any span.
_CONTEXT: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_span_context", default=None
)

#: Sentinel context installed by an unsampled span: the subtree exists
#: causally but records nothing, and children must not attach to the
#: sampled span *above* it.
NOT_SAMPLED: tuple[str, str] = ("", "")

#: Lazily (re)built per process: ``(pid, prefix, counter)``.  Worker
#: pools fork/spawn mid-run, so the prefix must be derived after the
#: fork or two workers would mint colliding span ids.
_ID_STATE: tuple[int, str, Any] | None = None


def _id_state() -> tuple[int, str, Any]:
    """The per-process ``(pid, prefix, counter)`` id-minting state."""
    global _ID_STATE
    pid = os.getpid()
    state = _ID_STATE
    if state is None or state[0] != pid:
        state = _ID_STATE = (pid, uuid.uuid4().hex[:8], itertools.count(1))
    return state


def _new_id() -> str:
    """A process-unique span/trace id (``<8-hex-prefix>-<counter>``)."""
    state = _id_state()
    return f"{state[1]}-{next(state[2]):x}"


# Epoch-granularity synthesis runs these env lookups once per epoch, so
# they use the same raw-dict probe as ``obs_enabled`` plus a
# last-raw-value parse cache instead of the os.environ Mapping layer.
try:
    _ENV_DATA: Any = os.environ._data
    _SAMPLE_KEY: Any = os.environ.encodekey(ENV_TRACE_SAMPLE)
    _CAP_KEY: Any = os.environ.encodekey(ENV_TRACE_MAX_SPANS)
except AttributeError:  # pragma: no cover - non-CPython fallback
    _ENV_DATA = None
    _SAMPLE_KEY = None
    _CAP_KEY = None

_MISSING = object()
_RATE_CACHE: tuple[Any, float] = (_MISSING, 1.0)
_CAP_CACHE: tuple[Any, int] = (_MISSING, DEFAULT_MAX_SPANS)


def trace_sample_rate() -> float:
    """The ``REPRO_TRACE_SAMPLE`` rate, clamped to [0, 1] (default 1)."""
    global _RATE_CACHE
    if _ENV_DATA is not None:
        raw = _ENV_DATA.get(_SAMPLE_KEY)
    else:  # pragma: no cover - non-CPython fallback
        raw = os.environ.get(ENV_TRACE_SAMPLE)
    cached = _RATE_CACHE
    if raw == cached[0]:
        return cached[1]
    if not raw:
        rate = 1.0
    else:
        try:
            rate = min(1.0, max(0.0, float(raw)))
        except ValueError:
            rate = 1.0
    _RATE_CACHE = (raw, rate)
    return rate


def sample_decision(key: str, rate: float) -> bool:
    """Deterministic keep/drop decision for a sample key at ``rate``.

    Hash-based (BLAKE2b of the key), not RNG-based: the same key gets
    the same verdict in every process, so a serial campaign and its
    parallel twin trace exactly the same units — and the campaign's
    RNG streams are never touched, keeping datasets byte-identical.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64 < rate


def current_context() -> tuple[str, str] | None:
    """The active ``(trace_id, span_id)``, or None / NOT_SAMPLED."""
    return _CONTEXT.get()


def span_context_active() -> bool:
    """Whether a *sampled* span is currently open in this context."""
    ctx = _CONTEXT.get()
    return ctx is not None and ctx is not NOT_SAMPLED


def max_trace_spans() -> int:
    """The per-process span-event cap (``REPRO_TRACE_MAX_SPANS``)."""
    global _CAP_CACHE
    if _ENV_DATA is not None:
        raw = _ENV_DATA.get(_CAP_KEY)
    else:  # pragma: no cover - non-CPython fallback
        raw = os.environ.get(ENV_TRACE_MAX_SPANS)
    cached = _CAP_CACHE
    if raw == cached[0]:
        return cached[1]
    if not raw:
        cap = DEFAULT_MAX_SPANS
    else:
        try:
            cap = max(0, int(raw))
        except ValueError:
            cap = DEFAULT_MAX_SPANS
    _CAP_CACHE = (raw, cap)
    return cap


class Span:
    """One live span; use as a context manager (``Telemetry.span``).

    Entering installs the span as the ambient context (thread- and
    task-local); exiting restores the previous context and records the
    completed span as a ``kind: "span"`` telemetry event.  A span that
    exits through an exception is recorded with an ``error`` tag — the
    failure is part of the timeline, and whether the event survives is
    the caller's retry protocol's decision (the executor discards a
    failed attempt's drained telemetry, spans included).
    """

    __slots__ = (
        "telemetry",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "tags",
        "_start_ts",
        "_start_perf",
        "_token",
    )

    def __init__(
        self,
        telemetry: Telemetry,
        name: str,
        trace_id: str,
        parent_id: str | None,
        tags: dict[str, Any],
    ) -> None:
        self.telemetry = telemetry
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.tags = tags
        self._start_ts = 0.0
        self._start_perf = 0.0
        self._token = None

    def annotate(self, **tags: Any) -> None:
        """Attach tags to the eventual span event."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        self._token = _CONTEXT.set((self.trace_id, self.span_id))
        self._start_ts = time()
        self._start_perf = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_s = perf_counter() - self._start_perf
        _CONTEXT.reset(self._token)
        event: dict[str, Any] = {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": round(self._start_ts, 6),
            "dur_s": round(dur_s, 6),
        }
        if self.tags:
            event.update(self.tags)
        if exc_type is not None:
            event.setdefault("error", exc_type.__name__)
        record_span_events(self.telemetry, [event])
        return False


class _NullSpan:
    """Shared no-op span: ``REPRO_OBS=0`` or nested under NOT_SAMPLED."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None

    def annotate(self, **tags: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _UnsampledSpan:
    """An unsampled span: records nothing, blocks its whole subtree.

    Installs the :data:`NOT_SAMPLED` sentinel so descendants (epoch
    synthesis, nested ``span()`` calls) see a context that is present
    but not sampled — they must not attach themselves to the sampled
    span above this one.
    """

    __slots__ = ("_token",)
    trace_id = None
    span_id = None
    parent_id = None

    def annotate(self, **tags: Any) -> None:
        pass

    def __enter__(self) -> "_UnsampledSpan":
        self._token = _CONTEXT.set(NOT_SAMPLED)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CONTEXT.reset(self._token)
        return False


def start_span(
    telemetry: Telemetry,
    name: str,
    sample_key: str | None = None,
    **tags: Any,
):
    """Open a span (the engine behind :meth:`Telemetry.span`).

    Args:
        telemetry: the collector to record into.
        name: span name (``"campaign"``, ``"trace"``, phase names...).
        sample_key: stable identity for the sampling decision at
            ``REPRO_TRACE_SAMPLE`` — e.g. ``"{path_id}/{trace_index}"``.
            Keyless spans inherit their parent's fate; a keyless *root*
            is always recorded unless the rate is exactly 0.
        tags: attached to the span event (path, trace, label, ...).
    """
    if not obs_enabled():
        return NULL_SPAN
    ctx = _CONTEXT.get()
    if ctx is NOT_SAMPLED:
        # Inside an unsampled subtree nothing records; no new context
        # is needed, the sentinel already blocks descendants.
        return NULL_SPAN
    rate = trace_sample_rate()
    if sample_key is not None:
        if not sample_decision(sample_key, rate):
            return _UnsampledSpan()
    elif ctx is None and rate <= 0.0:
        return _UnsampledSpan()  # rate 0 is the tracing kill switch
    if ctx is None:
        return Span(telemetry, name, _new_id(), None, tags)
    trace_id, parent_id = ctx
    return Span(telemetry, name, trace_id, parent_id, tags)


# -- recording -----------------------------------------------------------

#: Optional process-wide ring of recent span events (the live ``GET
#: /trace`` endpoint); ``None`` until :func:`install_span_ring`.
_RING: deque | None = None


def install_span_ring(maxlen: int = 4096) -> None:
    """Keep the last ``maxlen`` span events in memory for ``/trace``."""
    global _RING
    _RING = deque(maxlen=maxlen)


def span_ring_enabled() -> bool:
    return _RING is not None


def span_ring_snapshot(limit: int | None = None) -> list[dict[str, Any]]:
    """The ring's current contents, oldest first (bounded by limit)."""
    ring = _RING
    if ring is None:
        return []
    events = list(ring)
    if limit is not None and limit >= 0:
        events = events[-limit:]
    return events


def record_span_events(
    telemetry: Telemetry, events: list[dict[str, Any]]
) -> None:
    """Buffer completed span events, enforcing the span cap.

    The live ring (when installed) always sees the events — a capped
    serve process still serves fresh spans at ``/trace`` — while the
    drained/persisted buffer stops at ``REPRO_TRACE_MAX_SPANS`` with a
    ``spans.dropped`` count of the overflow.
    """
    ring = _RING
    if ring is not None:
        ring.extend(events)
    count = telemetry.span_events
    cap = max_trace_spans()
    n = len(events)
    if count + n > cap:
        allowed = max(0, cap - count)
        telemetry.metrics.counter("spans.dropped").inc(n - allowed)
        if not allowed:
            return
        events = events[:allowed]
        n = allowed
    telemetry.span_events = count + n
    telemetry.events.extend(events)


def reparent_spans(
    events: list[dict[str, Any]], trace_id: str, parent_id: str
) -> None:
    """Attach a worker snapshot's span events under a dispatching span.

    Worker processes have no inherited span context, so their unit
    spans are roots of private traces.  Rewriting — in place, before
    the snapshot is merged — moves every span onto the campaign's
    trace and hangs the roots under the campaign span, making the
    merged tree identical to a serial run's.  Non-span events pass
    through untouched.
    """
    for event in events:
        if event.get("kind") != "span":
            continue
        event["trace_id"] = trace_id
        if event.get("parent_id") is None:
            event["parent_id"] = parent_id


def record_epoch_spans(
    telemetry: Telemetry,
    name: str,
    path_id: str,
    trace_index: int,
    epoch_index: int,
    phases: dict[str, float],
) -> None:
    """Synthesize one epoch span + its phase children from clock laps.

    Called by the scalar engines next to ``record_epoch``.  No extra
    clock reads: one ``time.time()`` anchors the end of the epoch, and
    the lap durations are laid end to end backwards from it (repeated
    laps into one phase appear as that phase's single accumulated
    span).  Recorded only under an open sampled span — the unit
    ``"trace"`` span the executor maintains — so direct simulator use
    (unit tests, benches without tracing) pays one context check.
    """
    ctx = _CONTEXT.get()
    if ctx is None or ctx is NOT_SAMPLED or not phases:
        return
    trace_id, parent_id = ctx
    end = time()
    total = sum(phases.values())
    start = end - total
    # Mint all the ids from one state fetch, and skip the cosmetic
    # round(): this runs once per epoch on the scalar engines, inside
    # the traced-throughput budget (see benchmarks/perf_bench.py).
    _, prefix, counter = _id_state()
    # One counter draw per epoch; the children derive dotted suffix ids
    # from the parent's (still process-unique, one string format each).
    span_id = f"{prefix}-{next(counter):x}"
    events: list[dict[str, Any]] = [
        {
            "kind": "span",
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "ts": start,
            "dur_s": total,
            "path": path_id,
            "trace": trace_index,
            "epoch": epoch_index,
        }
    ]
    at = start
    child = 0
    for phase, seconds in phases.items():
        child += 1
        events.append(
            {
                "kind": "span",
                "trace_id": trace_id,
                "span_id": f"{span_id}.{child}",
                "parent_id": span_id,
                "name": phase,
                "ts": at,
                "dur_s": seconds,
            }
        )
        at += seconds
    record_span_events(telemetry, events)


def record_trace_phase_spans(
    telemetry: Telemetry,
    phases: dict[str, float],
    n_epochs: int,
) -> None:
    """Synthesize per-trace phase spans for the vectorized engine.

    The vector engine times its array kernels once per *trace*; a
    per-epoch span there would cost more than the epoch itself (~14 us),
    blowing the traced-throughput budget.  Instead each whole-trace
    phase becomes one child span of the open unit span, tagged with the
    epoch count it covers — the timeline stays truthful about where the
    trace's time went at the granularity the engine actually measured.
    """
    ctx = _CONTEXT.get()
    if ctx is None or ctx is NOT_SAMPLED or not phases:
        return
    trace_id, parent_id = ctx
    end = time()
    at = end - sum(phases.values())
    _, prefix, counter = _id_state()
    events: list[dict[str, Any]] = []
    for phase, seconds in phases.items():
        events.append(
            {
                "kind": "span",
                "trace_id": trace_id,
                "span_id": f"{prefix}-{next(counter):x}",
                "parent_id": parent_id,
                "name": phase,
                "ts": at,
                "dur_s": seconds,
                "epochs": n_epochs,
            }
        )
        at += seconds
    record_span_events(telemetry, events)


def record_request_spans(
    trace_fields: dict[str, Any],
    request_id: str,
    phases: dict[str, float],
    method: str,
    path: str,
    status: int,
) -> None:
    """Synthesize a serve request's span tree from its phase laps.

    The request's ``X-Request-Id`` *is* the trace id, so a client
    holding the response header can find the exact tree in ``/trace``
    output or the shutdown manifest's events.  The root ``"request"``
    span carries method/path/status plus the handler's annotations
    (route, key, error); the phase laps (parse → store/ingest/predict →
    render) become child spans, laid end to end.
    """
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    total = sum(phases.values())
    end = time()
    start = end - total
    # Same per-event economy as record_epoch_spans: one counter draw,
    # dotted child ids, no cosmetic round() — this sits on the serving
    # hot path inside the 10k req/s floor (benchmarks/serve_bench.py).
    _, prefix, counter = _id_state()
    span_id = f"{prefix}-{next(counter):x}"
    root: dict[str, Any] = {
        "kind": "span",
        "trace_id": request_id,
        "span_id": span_id,
        "parent_id": None,
        "name": "request",
        "ts": start,
        "dur_s": total,
        "method": method,
        "path": path,
        "status": status,
    }
    if trace_fields:
        root.update(trace_fields)
    events = [root]
    at = start
    child = 0
    for phase, seconds in phases.items():
        child += 1
        events.append(
            {
                "kind": "span",
                "trace_id": request_id,
                "span_id": f"{span_id}.{child}",
                "parent_id": span_id,
                "name": phase,
                "ts": at,
                "dur_s": seconds,
            }
        )
        at += seconds
    record_span_events(telemetry, events)
