"""The process-wide telemetry pipe: metrics + structured events.

One :class:`Telemetry` instance per process (module singleton, reachable
via :func:`get_telemetry`) collects everything instrumentation sites
produce:

* **metrics** — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/timers;
* **events** — an in-memory buffer of structured dicts, later written
  as JSONL by the run recorder;
* **context** — run-scoped fields (run id, seed, catalog hash) stamped
  onto every event emitted while set.

Telemetry is **on by default** and disabled by setting the environment
variable ``REPRO_OBS=0``.  The enabled check is a live environment
lookup, so tests can flip it with ``monkeypatch.setenv`` and worker
processes inherit the setting from their parent.  When disabled, every
entry point degrades to a shared no-op object or an early return — no
timestamps are taken and nothing is buffered.

Campaign workers call :meth:`Telemetry.drain` at the end of a job and
ship the snapshot back to the parent, which :meth:`Telemetry.merge`\\ s
it — so a parallel campaign's telemetry equals the serial one's.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_TIMER,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "ENV_OBS",
    "Telemetry",
    "PhaseClock",
    "get_telemetry",
    "obs_enabled",
]

#: Environment variable gating telemetry collection ("0" disables).
ENV_OBS = "REPRO_OBS"


try:
    # Fast path: probe the mapping behind os.environ with a pre-encoded
    # key.  os.environ.get() pays key encoding plus an internal KeyError
    # (~1 us when the variable is unset), and obs_enabled() runs per
    # epoch against fluid epochs of ~100 us — a plain dict .get() keeps
    # the check out of the campaign's wall time.  Writes through
    # os.environ (including monkeypatch.setenv) mutate this same dict,
    # so the check stays live.
    _ENV_DATA: Any = os.environ._data
    _ENV_KEY: Any = os.environ.encodekey(ENV_OBS)
except AttributeError:  # pragma: no cover - non-CPython fallback
    _ENV_DATA = None
    _ENV_KEY = None

_OFF_VALUES = (b"0", "0")  # bytes on posix, str on windows


def obs_enabled() -> bool:
    """Whether telemetry collection is on (``REPRO_OBS != "0"``)."""
    if _ENV_DATA is not None:
        return _ENV_DATA.get(_ENV_KEY) not in _OFF_VALUES
    return os.environ.get(ENV_OBS, "1") != "0"


class PhaseClock:
    """Accumulates wall-clock laps into named phases.

    The epoch simulators use one clock per epoch::

        clock = telemetry.phase_clock()
        ... pre-transfer probing ...
        clock.lap("ping")
        ... the transfer ...
        clock.lap("iperf")
        telemetry.record_epoch(..., phases=clock.phases)

    Repeated laps into the same phase accumulate.  A disabled clock
    (handed out by a disabled :class:`Telemetry`) never reads the
    clock and reports no phases.
    """

    __slots__ = ("enabled", "phases", "_last")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.phases: dict[str, float] = {}
        self._last = perf_counter() if enabled else 0.0

    def lap(self, phase: str, _clock=perf_counter) -> None:
        """Attribute the time since the previous lap to ``phase``."""
        if not self.enabled:
            return
        now = _clock()
        phases = self.phases
        phases[phase] = phases.get(phase, 0.0) + (now - self._last)
        self._last = now

    @property
    def total_s(self) -> float:
        """Total seconds attributed so far."""
        return sum(self.phases.values())


class _EpochHandles:
    """Cached instrument handles for the per-epoch hot path.

    :meth:`Telemetry.record_epoch` runs once per simulated epoch — tens
    of thousands of times per campaign, against an epoch that itself
    only takes ~100 us — so it must not pay the registry's
    tag-sorting get-or-create on every call.  The handles stay valid
    until the registry is replaced (``drain``/``reset``), which clears
    this cache.
    """

    __slots__ = ("wall", "count", "phases")

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.wall = metrics.timer("epoch.wall_s")
        self.count = metrics.counter("epochs.simulated")
        #: phase name -> (Timer, event field name), built on first use
        self.phases: dict[str, tuple[Any, str]] = {}


class Telemetry:
    """Per-process collector of metrics, events, and run context."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.events: list[dict[str, Any]] = []
        self.context: dict[str, Any] = {}
        self._epoch_handles: _EpochHandles | None = None
        #: span events buffered since the last drain/reset, checked
        #: against REPRO_TRACE_MAX_SPANS by repro.obs.spans.
        self.span_events = 0

    @property
    def enabled(self) -> bool:
        return obs_enabled()

    # -- instruments ---------------------------------------------------

    def counter(self, name: str, **tags: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self.metrics.counter(name, **tags)

    def gauge(self, name: str, **tags: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self.metrics.gauge(name, **tags)

    def timer(self, name: str, **tags: str) -> Timer:
        if not self.enabled:
            return NULL_TIMER
        return self.metrics.timer(name, **tags)

    def phase_clock(self) -> PhaseClock:
        return PhaseClock(obs_enabled())

    def span(self, name: str, sample_key: str | None = None, **tags: Any):
        """Open a tracing span (see :mod:`repro.obs.spans`).

        Use as a context manager; on exit the completed span is
        buffered as a ``kind: "span"`` event.  Spans opened while this
        one is active become its children (thread- and task-local via
        :mod:`contextvars`).  ``sample_key`` makes the span subject to
        ``REPRO_TRACE_SAMPLE``; disabled telemetry returns a shared
        no-op span.
        """
        from repro.obs.spans import start_span

        return start_span(self, name, sample_key, **tags)

    # -- events --------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Buffer one structured event (a JSONL line in the manifest).

        The current context fields are stamped first, so an event field
        with the same name wins over the context.
        """
        if not self.enabled:
            return
        event = {"kind": kind, **self.context, **fields}
        self.events.append(event)

    def set_context(self, **fields: Any) -> None:
        """Set run-scoped fields stamped onto every subsequent event."""
        self.context.update(fields)

    def clear_context(self) -> None:
        self.context.clear()

    # -- epoch convenience ---------------------------------------------

    def record_epoch(
        self,
        kind: str,
        path_id: str,
        trace_index: int,
        epoch_index: int,
        phases: dict[str, float],
        **extra: Any,
    ) -> None:
        """Record one simulated epoch: phase timers + a structured event.

        Args:
            kind: event kind ("epoch" for the fluid simulator,
                "packet_epoch" for the packet-level runner).
            path_id/trace_index/epoch_index: identity of the epoch.
            phases: per-phase wall seconds (a
                :attr:`PhaseClock.phases` dict).
            extra: additional event fields (regime, drops, ...).
        """
        if not obs_enabled():
            return
        handles = self._epoch_handles
        if handles is None:
            handles = self._epoch_handles = _EpochHandles(self.metrics)
        by_phase = handles.phases
        event = {"kind": kind, **self.context}
        event["path"] = path_id
        event["trace"] = trace_index
        event["epoch"] = epoch_index
        elapsed = 0.0
        for phase, seconds in phases.items():
            entry = by_phase.get(phase)
            if entry is None:
                entry = by_phase[phase] = (
                    self.metrics.timer("epoch.phase_s", phase=phase),
                    phase + "_s",
                )
            entry[0].samples.append(seconds)
            event[entry[1]] = seconds
            elapsed += seconds
        handles.wall.samples.append(elapsed)
        handles.count.value += 1
        event["elapsed_s"] = elapsed
        if extra:
            event.update(extra)
        self.events.append(event)

    def record_epoch_batch(
        self,
        kind: str,
        path_id: str,
        trace_index: int,
        phases: dict[str, float],
        extras: list[dict[str, Any]],
    ) -> None:
        """Record a whole trace of epochs sharing one phase breakdown.

        The vectorized fluid engine times its array kernels once per
        trace and attributes an equal per-epoch share to every epoch;
        this emits exactly the timers and events ``len(extras)``
        individual :meth:`record_epoch` calls would (epoch indices
        ``0..n-1``, ``extras[e]`` merged into epoch ``e``'s event) while
        paying the handle lookups and phase iteration only once.
        """
        if not obs_enabled():
            return
        n_epochs = len(extras)
        handles = self._epoch_handles
        if handles is None:
            handles = self._epoch_handles = _EpochHandles(self.metrics)
        by_phase = handles.phases
        base = {"kind": kind, **self.context}
        base["path"] = path_id
        base["trace"] = trace_index
        base["epoch"] = 0
        elapsed = 0.0
        phase_fields: list[tuple[str, float]] = []
        for phase, seconds in phases.items():
            entry = by_phase.get(phase)
            if entry is None:
                entry = by_phase[phase] = (
                    self.metrics.timer("epoch.phase_s", phase=phase),
                    phase + "_s",
                )
            entry[0].samples.extend([seconds] * n_epochs)
            base[entry[1]] = seconds
            elapsed += seconds
        handles.wall.samples.extend([elapsed] * n_epochs)
        handles.count.value += n_epochs
        base["elapsed_s"] = elapsed
        events = self.events
        for epoch_index, extra in enumerate(extras):
            event = dict(base)
            event["epoch"] = epoch_index
            if extra:
                event.update(extra)
            events.append(event)

    # -- snapshot / merge ----------------------------------------------

    def drain(self) -> dict[str, Any]:
        """Snapshot everything collected so far and reset to empty.

        The returned dict is picklable and JSON-able; feed it to
        :meth:`merge` in another process (or the same one) to restore.
        """
        snapshot = self.metrics.snapshot()
        snapshot["events"] = self.events
        snapshot["span_events"] = self.span_events
        self.metrics = MetricsRegistry()
        self.events = []
        self._epoch_handles = None
        self.span_events = 0
        return snapshot

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a drained snapshot into this collector."""
        self.metrics.merge(snapshot)
        self.events.extend(snapshot.get("events", ()))
        self.span_events += snapshot.get("span_events", 0)

    def reset(self) -> None:
        """Drop all collected data and context."""
        self.metrics.reset()
        self.events = []
        self.context = {}
        self._epoch_handles = None
        self.span_events = 0


_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide :class:`Telemetry` singleton."""
    return _TELEMETRY
