"""Run manifests: the machine-readable record of one campaign run.

A :class:`RunRecorder` brackets a campaign execution.  On ``start()`` it
clears the process telemetry and stamps the run context; on ``finish()``
it drains the telemetry into an aggregate **manifest** (identity,
wall time, counters, timer percentiles) plus the buffered **events**.
``write(dataset_path)`` saves both as sidecars of the dataset::

    may.csv            the dataset
    may.manifest.json  aggregates (JSON, one object)
    may.events.jsonl   one structured event per line

The same sidecar naming is used next to cached dataset entries, so a
cache directory carries the telemetry of the run that populated it.

``repro-obs`` consumes manifests through :func:`resolve_manifest`,
which accepts the manifest path itself, the dataset path, or a
directory containing exactly one manifest.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from time import perf_counter
from typing import Any

from repro._version import __version__
from repro.core.errors import DataError
from repro.obs.telemetry import Telemetry, get_telemetry

__all__ = [
    "MANIFEST_VERSION",
    "ENV_EVENTS_MAX_BYTES",
    "DEFAULT_EVENTS_MAX_BYTES",
    "CORE_COUNTERS",
    "ANALYSIS_CORE_COUNTERS",
    "SERVE_CORE_COUNTERS",
    "RunRecorder",
    "sidecar_paths",
    "analysis_sidecar_paths",
    "write_manifest",
    "load_manifest",
    "resolve_manifest",
    "read_events",
]

#: Size cap of a written ``*.events.jsonl`` sidecar (bytes); events past
#: it are dropped and counted, same policy as the access log's rotation
#: bound — a span-heavy run cannot write an unbounded sidecar.
ENV_EVENTS_MAX_BYTES = "REPRO_EVENTS_MAX_BYTES"
DEFAULT_EVENTS_MAX_BYTES = 64 * 1024 * 1024


def _events_max_bytes() -> int:
    raw = os.environ.get(ENV_EVENTS_MAX_BYTES)
    if not raw:
        return DEFAULT_EVENTS_MAX_BYTES
    try:
        return max(4096, int(raw))
    except ValueError:
        return DEFAULT_EVENTS_MAX_BYTES

#: Schema version of manifest.json (bump on incompatible layout changes).
#: v2 adds the ``kind`` field ("campaign" | "analysis" | "serve"); v1
#: manifests still load and are treated as campaign manifests.
MANIFEST_VERSION = 2

#: Counters every campaign manifest reports even when zero, so consumers
#: (and ``repro-obs compare``) never have to special-case their absence.
CORE_COUNTERS = (
    "epochs.simulated",
    "simnet.events_processed",
    "simnet.queue_drops",
    "cache.hits",
    "cache.misses",
    "cache.corrupt",
    "tcp.retransmits",
    "tcp.timeouts",
    # Fault-tolerance accounting: how many traces this run attempted to
    # simulate, how many attempts failed / were retried, and how many
    # traces were restored from checkpoints instead of simulated.
    "campaign.traces_attempted",
    "campaign.traces_resumed",
    "campaign.retries",
    "campaign.job_failures",
)

#: The analysis-run equivalent: prediction-pipeline counters every
#: ``kind: "analysis"`` manifest reports even when zero.
ANALYSIS_CORE_COUNTERS = (
    "predictions.made",
    "fb.model_selected",
    "hb.level_shifts",
    "hb.outliers_discarded",
)

#: The serving equivalent: request/ingest counters every ``repro-serve``
#: shutdown manifest reports even when zero.
SERVE_CORE_COUNTERS = (
    "serve.requests",
    "serve.bad_requests",
    "serve.ingested",
    "serve.predictions",
    "serve.evictions",
    "serve.slo_breaches",
    "predict.drift_alerts",
    "hb.level_shifts",
    "hb.outliers_discarded",
    "hb.invalid_samples",
)

#: Core-counter contract per manifest kind.
CORE_COUNTERS_BY_KIND = {
    "campaign": CORE_COUNTERS,
    "analysis": ANALYSIS_CORE_COUNTERS,
    "serve": SERVE_CORE_COUNTERS,
}


def sidecar_paths(dataset_path: str | Path) -> tuple[Path, Path]:
    """The manifest/events sidecar paths for a dataset file.

    ``X.csv`` maps to ``X.manifest.json`` and ``X.events.jsonl``; a
    dataset without a suffix gets the suffixes appended.
    """
    base = Path(dataset_path)
    stem = base.with_suffix("") if base.suffix else base
    return (
        stem.with_name(stem.name + ".manifest.json"),
        stem.with_name(stem.name + ".events.jsonl"),
    )


def analysis_sidecar_paths(dataset_path: str | Path) -> tuple[Path, Path]:
    """The sidecar paths of an *analysis* run over a dataset.

    Analysis sidecars live next to the dataset but carry an
    ``.analysis`` infix (``X.csv`` -> ``X.analysis.manifest.json``), so
    they never clobber the campaign sidecars of the run that produced
    the dataset.  The ``*.manifest.json`` suffix is preserved, so
    ``repro-obs`` resolves them like any other manifest.
    """
    base = Path(dataset_path)
    stem = base.with_suffix("") if base.suffix else base
    return (
        stem.with_name(stem.name + ".analysis.manifest.json"),
        stem.with_name(stem.name + ".analysis.events.jsonl"),
    )


class RunRecorder:
    """Collects one run's telemetry into a manifest.

    Args:
        label: dataset/campaign label (e.g. the catalog name).
        seed: the campaign's root seed.
        catalog_hash: stable fingerprint of the path catalog.
        cache_key: the dataset cache key, when caching is active; for
            analysis runs, the identity hash of the analyzed dataset.
        settings: campaign settings rendered to a plain dict.
        workers: requested worker count.
        kind: what produced this run — ``"campaign"`` (default),
            ``"analysis"`` (``repro-analyze``) or ``"serve"``
            (``repro-serve``).  Selects which core counters the
            manifest always reports.
        run_id: override the generated run id (tests).
        telemetry: override the process singleton (tests).
    """

    def __init__(
        self,
        label: str = "",
        seed: int = 0,
        catalog_hash: str = "",
        cache_key: str = "",
        settings: dict[str, Any] | None = None,
        workers: int = 1,
        kind: str = "campaign",
        run_id: str | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if kind not in CORE_COUNTERS_BY_KIND:
            raise DataError(
                f"unknown run kind {kind!r}; "
                f"choose from {sorted(CORE_COUNTERS_BY_KIND)}"
            )
        self.kind = kind
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.label = label
        self.seed = seed
        self.catalog_hash = catalog_hash
        self.cache_key = cache_key
        self.settings = dict(settings or {})
        self.workers = workers
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.manifest: dict[str, Any] | None = None
        self.events: list[dict[str, Any]] = []
        self._started = 0.0

    def start(self) -> "RunRecorder":
        """Reset the telemetry pipe and start the run clock."""
        self.telemetry.drain()  # discard leftovers from earlier runs
        self.telemetry.set_context(run=self.run_id)
        self._started = perf_counter()
        return self

    def finish(
        self,
        cache_hit: bool = False,
        n_paths: int = 0,
        n_traces: int = 0,
        n_epochs: int = 0,
        extras: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Drain the telemetry and assemble the manifest dict.

        Args:
            cache_hit: whether the dataset was served from the cache.
            n_paths/n_traces/n_epochs: dataset shape, recorded so the
                manifest can be validated against the dataset itself.
            extras: kind-specific top-level fields merged into the
                manifest (e.g. the ``analysis`` block of
                ``repro-analyze`` runs).  Core fields win on collision.
        """
        wall_s = perf_counter() - self._started if self._started else 0.0
        telemetry = self.telemetry
        if telemetry.enabled:
            for name in CORE_COUNTERS_BY_KIND[self.kind]:
                telemetry.metrics.counter(name)
        snapshot = telemetry.drain()
        telemetry.clear_context()

        # Events from worker processes never saw the parent's context, so
        # stamp the run id here where it is missing.
        self.events = [
            event if "run" in event else {**event, "run": self.run_id}
            for event in snapshot.get("events", ())
        ]
        by_kind: dict[str, int] = {}
        for event in self.events:
            kind = str(event.get("kind", "?"))
            by_kind[kind] = by_kind.get(kind, 0) + 1

        from repro.obs.metrics import Timer

        timers = []
        for entry in snapshot.get("timers", ()):
            timer = Timer(entry["name"], entry["tags"])
            timer.samples = entry["samples"]
            timers.append({"name": timer.name, "tags": timer.tags, **timer.stats()})

        self.manifest = {
            **(extras or {}),
            "manifest_version": MANIFEST_VERSION,
            "kind": self.kind,
            "code_version": __version__,
            "run_id": self.run_id,
            "created_unix": time.time(),
            "label": self.label,
            "seed": self.seed,
            "catalog_hash": self.catalog_hash,
            "cache_key": self.cache_key,
            "settings": self.settings,
            "workers": self.workers,
            "counts": {"paths": n_paths, "traces": n_traces, "epochs": n_epochs},
            "cache": {"hit": bool(cache_hit)},
            "wall_time_s": wall_s,
            "counters": snapshot.get("counters", []),
            "gauges": snapshot.get("gauges", []),
            "timers": timers,
            "events": {"count": len(self.events), "by_kind": by_kind},
        }
        return self.manifest

    def write(self, dataset_path: str | Path) -> tuple[Path, Path]:
        """Write ``manifest.json`` + ``events.jsonl`` next to a dataset.

        Must be called after :meth:`finish`.

        Returns:
            ``(manifest_path, events_path)``.
        """
        if self.manifest is None:
            raise DataError("RunRecorder.write() called before finish()")
        manifest_path, events_path = sidecar_paths(dataset_path)
        write_manifest(self.manifest, self.events, manifest_path, events_path)
        return manifest_path, events_path


def write_manifest(
    manifest: dict[str, Any],
    events: list[dict[str, Any]],
    manifest_path: str | Path,
    events_path: str | Path,
) -> None:
    """Serialize a manifest + its events to the given paths.

    Both files are written atomically (temp file + ``os.replace``, the
    same pattern as ``DatasetCache.store``): a crash mid-write can never
    leave a torn ``*.manifest.json`` / ``*.events.jsonl`` behind for
    ``repro-obs summary`` to choke on — either the old sidecar survives
    intact or the new one is complete.

    The events file is size-capped (``REPRO_EVENTS_MAX_BYTES``, default
    64 MiB): the head of the stream is kept, the tail dropped, and the
    manifest records the truncation (``events.written`` /
    ``events.dropped`` plus an ``events.dropped`` counter) so consumers
    see the cut instead of inferring it from a count mismatch.
    """
    manifest_path = Path(manifest_path)
    events_path = Path(events_path)
    manifest = dict(manifest)
    max_bytes = _events_max_bytes()
    lines: list[str] = []
    size = 0
    written = 0
    for event in events:
        line = json.dumps(event, sort_keys=True) + "\n"
        # ensure_ascii output: one byte per character.
        if size + len(line) > max_bytes:
            break
        lines.append(line)
        size += len(line)
        written += 1
    dropped = len(events) - written
    manifest["events"] = {
        **manifest.get("events", {}),
        "path": events_path.name,
        "written": written,
        "dropped": dropped,
    }
    if dropped:
        counters = list(manifest.get("counters", ()))
        counters.append(
            {"name": "events.dropped", "tags": {}, "value": dropped}
        )
        manifest["counters"] = counters
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_text(events_path, "".join(lines))
    _atomic_write_text(
        manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a temp file in the same directory."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem[:16]}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    finally:
        if os.path.exists(tmp_name):  # pragma: no cover - error path
            os.unlink(tmp_name)


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Load and sanity-check a ``manifest.json``.

    Manifests from any released schema version load: v1 files carry no
    ``kind`` field and are normalized to ``kind: "campaign"``.

    Raises:
        DataError: if the file is missing, not JSON, not a manifest, or
            its schema version is pre-v1 / non-integer / from the future.
    """
    path = Path(path)
    if path.name.endswith(".corrupt"):
        raise DataError(
            f"{path} is a quarantined corrupt sidecar; it cannot be "
            "rendered (re-run the campaign to regenerate telemetry)"
        )
    if not path.is_file():
        raise DataError(f"no manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DataError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or "manifest_version" not in manifest:
        raise DataError(f"{path} is not a run manifest (no manifest_version)")
    version = manifest["manifest_version"]
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise DataError(
            f"{path} has invalid manifest_version {version!r} "
            "(expected an integer >= 1)"
        )
    if version > MANIFEST_VERSION:
        raise DataError(
            f"{path} has manifest_version {version}, newer than this "
            f"code understands ({MANIFEST_VERSION})"
        )
    manifest.setdefault("kind", "campaign")
    return manifest


def resolve_manifest(run: str | Path) -> Path:
    """Find the ``manifest.json`` a ``repro-obs RUN`` argument refers to.

    Accepts the manifest path itself, the dataset path (resolved through
    the sidecar naming), or a directory containing exactly one
    ``*.manifest.json``.

    Raises:
        DataError: when nothing (or more than one candidate) is found.
    """
    path = Path(run)
    if path.name.endswith(".corrupt"):
        raise DataError(
            f"{path} is a quarantined corrupt sidecar; it cannot be "
            "rendered (re-run the campaign to regenerate telemetry)"
        )
    if path.is_dir():
        candidates = sorted(path.glob("*.manifest.json"))
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            quarantined = sorted(path.glob("*.manifest.json.corrupt"))
            if quarantined:
                names = ", ".join(c.name for c in quarantined)
                raise DataError(
                    f"no *.manifest.json in directory {path}; only "
                    f"quarantined corrupt sidecars: {names}"
                )
            raise DataError(f"no *.manifest.json in directory {path}")
        names = ", ".join(c.name for c in candidates)
        raise DataError(f"multiple manifests in {path}: {names}")
    if path.name.endswith(".manifest.json") and path.is_file():
        return path
    sidecar, _ = sidecar_paths(path)
    if sidecar.is_file():
        return sidecar
    if sidecar.with_name(sidecar.name + ".corrupt").is_file():
        raise DataError(
            f"manifest for {run!r} was quarantined as corrupt "
            f"({sidecar.name}.corrupt); re-run the campaign to regenerate it"
        )
    raise DataError(f"no manifest found for {run!r} (looked for {sidecar})")


def read_events(manifest_path: str | Path) -> list[dict[str, Any]]:
    """Load the events.jsonl referenced by a manifest.

    Returns an empty list when the manifest records no events file or
    the file is absent.  Malformed lines — typically a torn trailing
    line from a crash mid-append — are skipped and counted
    (``events.skipped_lines`` counter + one ``events.skipped`` telemetry
    event per file), mirroring ``ShardedStateStore.restore``'s
    skip-and-count convention: a damaged sidecar degrades to partial
    data instead of refusing to render at all.
    """
    manifest_path = Path(manifest_path)
    manifest = load_manifest(manifest_path)
    name = manifest.get("events", {}).get("path")
    if not name:
        return []
    events_path = manifest_path.parent / name
    if not events_path.is_file():
        return []
    events = []
    skipped = 0
    first_bad = 0
    for lineno, line in enumerate(
        events_path.read_text(encoding="utf-8", errors="replace").splitlines(),
        start=1,
    ):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            if not first_bad:
                first_bad = lineno
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            skipped += 1
            if not first_bad:
                first_bad = lineno
    if skipped:
        tele = get_telemetry()
        tele.counter("events.skipped_lines").inc(skipped)
        tele.emit(
            "events.skipped",
            path=str(events_path),
            lines=skipped,
            first_line=first_bad,
        )
    return events
