"""``repro-predict``: one-off FB throughput prediction (paper Eq. (3)).

Examples::

    repro-predict --rtt-ms 45 --loss 0.002
    repro-predict --rtt-ms 80 --loss 0 --availbw 6.5 --window-kb 64
    repro-predict --rtt-ms 45 --loss 0.002 --model mathis
"""

from __future__ import annotations

import argparse
import sys

from repro.core.errors import ReproError
from repro.formulas.fb_predictor import MODEL_VARIANTS, FormulaBasedPredictor
from repro.formulas.params import PathEstimates, TcpParameters, fb_input_errors


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-predict",
        description="Predict bulk TCP throughput from a priori path measurements.",
    )
    parser.add_argument(
        "--rtt-ms", type=float, required=True, help="measured RTT, milliseconds"
    )
    parser.add_argument(
        "--loss", type=float, required=True, help="measured loss rate in [0, 1)"
    )
    parser.add_argument(
        "--availbw",
        type=float,
        default=None,
        metavar="MBPS",
        help="measured avail-bw (required when --loss is 0)",
    )
    parser.add_argument(
        "--window-kb",
        type=float,
        default=1000.0,
        help="maximum window / socket buffer, kilobytes (default 1000)",
    )
    parser.add_argument(
        "--mss", type=int, default=1460, help="segment size, bytes (default 1460)"
    )
    parser.add_argument(
        "--model",
        choices=sorted(MODEL_VARIANTS),
        default="pftk",
        help="throughput model for lossy paths (default pftk)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
        problems = fb_input_errors(
            rtt_ms=args.rtt_ms,
            loss=args.loss,
            window_kb=args.window_kb,
            mss=args.mss,
            availbw=args.availbw,
        )
        if problems:
            # One line per problem, through argparse so the usage text and
            # exit status match every other bad-flag failure.
            parser.error("; ".join(problems))
    except SystemExit as exc:
        # parse_args/parser.error exit; keep main() returning an int so it
        # stays callable programmatically (and from tests).
        return int(exc.code or 0)
    try:
        tcp = TcpParameters(
            mss_bytes=args.mss,
            max_window_bytes=int(args.window_kb * 1000),
        )
        predictor = FormulaBasedPredictor(tcp=tcp, model=args.model)
        estimates = PathEstimates(
            rtt_s=args.rtt_ms / 1000.0,
            loss_rate=args.loss,
            availbw_mbps=args.availbw,
        )
        predicted = predictor.predict(estimates)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    branch = "avail-bw (lossless path)" if estimates.lossless else f"{args.model} model"
    print(f"predicted throughput: {predicted:.3f} Mbps  [{branch}]")
    window_limit = tcp.max_window_bytes * 8 / estimates.rtt_s / 1e6
    print(f"window ceiling W/T:   {window_limit:.3f} Mbps")
    return 0


if __name__ == "__main__":
    sys.exit(main())
