"""``repro-obs``: render telemetry reports from run manifests.

``repro-campaign`` writes a ``X.manifest.json`` + ``X.events.jsonl``
sidecar pair next to each dataset (and next to cache entries).  This
command turns those files back into human-readable reports:

* ``summary RUN`` — run identity, wall time, per-phase timer
  percentiles, counters (cache hits/misses, simulation events), event
  tallies;
* ``slowest RUN [-n N]`` — the N slowest simulated epochs with their
  per-phase breakdown;
* ``compare RUN_A RUN_B`` — counters and timer medians side by side
  with relative deltas (e.g. before/after a performance change).

``RUN`` may be the manifest path, the dataset path (the sidecar is
resolved automatically), or a directory containing exactly one
manifest.

Examples::

    repro-obs summary may.csv
    repro-obs slowest may.csv -n 20
    repro-obs compare baseline.csv optimized.csv
"""

from __future__ import annotations

import argparse
import sys

from repro.core.errors import DataError
from repro.obs.recorder import load_manifest, read_events, resolve_manifest
from repro.obs.render import compare_report, slowest_report, summary_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Render telemetry reports from repro run manifests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="render one run's telemetry report"
    )
    summary.add_argument("run", help="manifest path, dataset path, or directory")

    slowest = sub.add_parser(
        "slowest", help="show the slowest simulated epochs of a run"
    )
    slowest.add_argument("run", help="manifest path, dataset path, or directory")
    slowest.add_argument(
        "-n", type=int, default=10, metavar="N", help="epochs to show (default: 10)"
    )

    compare = sub.add_parser(
        "compare", help="diff the telemetry of two runs (B relative to A)"
    )
    compare.add_argument("run_a", help="baseline run")
    compare.add_argument("run_b", help="comparison run")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary":
            manifest = load_manifest(resolve_manifest(args.run))
            print(summary_report(manifest))
        elif args.command == "slowest":
            if args.n < 1:
                raise DataError(f"-n must be >= 1, got {args.n}")
            events = read_events(resolve_manifest(args.run))
            print(slowest_report(events, n=args.n))
        else:  # compare
            manifest_a = load_manifest(resolve_manifest(args.run_a))
            manifest_b = load_manifest(resolve_manifest(args.run_b))
            print(compare_report(manifest_a, manifest_b))
    except DataError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Reports are often piped to `head`/`less`; a closed pipe is fine.
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
