"""``repro-obs``: render, export, and gate telemetry from run manifests.

``repro-campaign`` and ``repro-analyze`` write ``X.manifest.json`` +
``X.events.jsonl`` sidecar pairs next to their outputs.  This command
turns those files back into reports and machine formats:

* ``summary RUN`` — run identity, wall time, per-phase timer
  percentiles, counters (cache hits/misses, predictions made), event
  tallies;
* ``slowest RUN [-n N]`` — the N slowest simulated epochs with their
  per-phase breakdown;
* ``compare RUN_A RUN_B`` — counters, timer medians, and (for
  ``kind: "serve"`` runs) prediction-quality aggregates side by side
  with relative deltas (e.g. before/after a performance change);
* ``quality SOURCE`` — the prediction-quality report of a
  ``kind: "serve"`` run, or of a *live* server when ``SOURCE`` is a
  base URL (``http://host:port``); ``--watch`` polls and re-renders;
* ``trace SOURCE`` — the span timeline of a run (or of a *live*
  server's recent requests when ``SOURCE`` is a base URL): indented
  per-trace text trees plus the aggregated critical-path table, or
  Chrome/Perfetto trace-event JSON with ``--format chrome`` (load the
  file in ``ui.perfetto.dev``);
* ``export RUN --format openmetrics|json`` — OpenMetrics/Prometheus
  text exposition or flat JSON, for scraping and dashboards;
* ``bench record SOURCE --name NAME`` / ``bench check SOURCE`` — the
  performance-regression gate: snapshot a manifest (or a
  ``BENCH_obs.json`` bench report) as a named baseline, then fail
  (exit 1) when a later run's counters diverge or its timers run
  slower than the baseline allows.

``RUN`` may be the manifest path, the dataset path (the sidecar is
resolved automatically), or a directory containing exactly one
manifest.  ``SOURCE`` additionally accepts a bench-report JSON path.

Examples::

    repro-obs summary may.csv
    repro-obs slowest may.csv -n 20
    repro-obs compare baseline.csv optimized.csv
    repro-obs quality serve.manifest.json --paths
    repro-obs quality http://127.0.0.1:8710 --watch
    repro-obs trace may.csv
    repro-obs trace http://127.0.0.1:8710 --format chrome -o spans.json
    repro-obs export may.csv --format openmetrics
    repro-obs bench record BENCH_obs.json --name obs_baseline
    repro-obs bench check BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.core.errors import DataError
from repro.obs.export import to_flat_json, to_openmetrics
from repro.obs.recorder import load_manifest, read_events, resolve_manifest
from repro.obs.regress import (
    DEFAULT_BASELINE_NAME,
    baseline_path,
    check_against_baseline,
    load_baseline,
    load_metrics_source,
    record_baseline,
    render_check_report,
)
from repro.obs.render import (
    compare_report,
    quality_report,
    slowest_report,
    summary_report,
)
from repro.obs.traceview import (
    render_critical_path,
    render_timeline,
    to_chrome_trace,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Render telemetry reports from repro run manifests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="render one run's telemetry report"
    )
    summary.add_argument("run", help="manifest path, dataset path, or directory")

    slowest = sub.add_parser(
        "slowest", help="show the slowest simulated epochs of a run"
    )
    slowest.add_argument("run", help="manifest path, dataset path, or directory")
    slowest.add_argument(
        "-n", type=int, default=10, metavar="N", help="epochs to show (default: 10)"
    )

    compare = sub.add_parser(
        "compare", help="diff the telemetry of two runs (B relative to A)"
    )
    compare.add_argument("run_a", help="baseline run")
    compare.add_argument("run_b", help="comparison run")

    quality = sub.add_parser(
        "quality",
        help="prediction-quality report of a serve run or a live server",
    )
    quality.add_argument(
        "source",
        help="kind=serve RUN (manifest/dataset/directory) or a live "
        "server base URL (http://host:port)",
    )
    quality.add_argument(
        "--paths",
        action="store_true",
        help="include the per-path x predictor error table",
    )
    quality.add_argument(
        "--watch",
        action="store_true",
        help="poll a live server URL and re-render until interrupted",
    )
    quality.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="--watch poll interval in seconds (default: 2.0)",
    )
    quality.add_argument(
        "--watch-retries",
        type=int,
        default=5,
        metavar="N",
        help="consecutive failed polls --watch tolerates before exiting "
        "non-zero; each failure prints a one-line reconnect notice and "
        "polling continues, so a server restart does not kill the watch "
        "(default: 5)",
    )

    trace = sub.add_parser(
        "trace",
        help="span timeline + critical path of a run or a live server",
    )
    trace.add_argument(
        "source",
        help="RUN (manifest/dataset/directory) or a live server base "
        "URL (http://host:port) serving GET /trace",
    )
    trace.add_argument(
        "--format",
        choices=("text", "chrome"),
        default="text",
        dest="fmt",
        help="text timeline + critical-path table (default), or "
        "Chrome/Perfetto trace-event JSON",
    )
    trace.add_argument(
        "--trace",
        default=None,
        metavar="ID",
        dest="trace_id",
        help="restrict to one trace id (e.g. a request's X-Request-Id)",
    )
    trace.add_argument(
        "--max-children",
        type=int,
        default=10,
        metavar="N",
        help="children shown per span in the text timeline before "
        "eliding (0 shows all; default: 10)",
    )
    trace.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write to FILE instead of stdout",
    )

    export = sub.add_parser(
        "export", help="export a run's metrics for external consumers"
    )
    export.add_argument("run", help="manifest path, dataset path, or directory")
    export.add_argument(
        "--format",
        choices=("openmetrics", "json"),
        default="openmetrics",
        dest="fmt",
        help="output format (default: openmetrics)",
    )
    export.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write to FILE instead of stdout",
    )

    bench = sub.add_parser(
        "bench", help="record/check performance baselines (the regression gate)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    record = bench_sub.add_parser(
        "record", help="snapshot a manifest or bench report as a baseline"
    )
    record.add_argument(
        "source", help="RUN (manifest/dataset/directory) or a bench JSON path"
    )
    record.add_argument(
        "--name",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline name (default: {DEFAULT_BASELINE_NAME})",
    )
    record.add_argument(
        "--baselines-dir",
        default=None,
        metavar="DIR",
        help="baseline directory (default: $REPRO_BASELINES_DIR or the "
        "committed benchmarks/baselines/)",
    )

    check = bench_sub.add_parser(
        "check", help="compare a run against a baseline; exit 1 on regression"
    )
    check.add_argument(
        "source", help="RUN (manifest/dataset/directory) or a bench JSON path"
    )
    check.add_argument(
        "--name",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline name (default: {DEFAULT_BASELINE_NAME})",
    )
    check.add_argument(
        "--baselines-dir",
        default=None,
        metavar="DIR",
        help="baseline directory (default: $REPRO_BASELINES_DIR or the "
        "committed benchmarks/baselines/)",
    )
    check.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="override every timer tolerance (e.g. 0.5 = ±50%%; "
        "default: the baseline's stored tolerances, ±25%%)",
    )
    check.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list metrics that passed",
    )
    return parser


def _load_source(source: str) -> dict:
    """Load a ``bench`` SOURCE: a bench-report JSON or a resolvable RUN."""
    path = Path(source)
    if (
        path.is_file()
        and path.suffix == ".json"
        and not path.name.endswith(".manifest.json")
    ):
        document = load_metrics_source(path)
        if "manifest_version" in document:
            return load_manifest(path)
        return document
    return load_manifest(resolve_manifest(source))


class _FetchError(DataError):
    """A (possibly transient) fetch failure against a live server.

    ``--watch`` treats these as reconnectable — a restarting server
    refuses connections for a moment — while every other context
    inherits the fatal :class:`DataError` behaviour.
    """


def _fetch_quality(url: str, include_paths: bool) -> dict:
    """``GET {url}/quality`` from a live server, as a parsed document."""
    base = url.rstrip("/")
    query = "?paths=1" if include_paths else ""
    try:
        with urllib.request.urlopen(f"{base}/quality{query}", timeout=10) as resp:
            doc = json.load(resp)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise _FetchError(f"cannot fetch {base}/quality: {exc}") from None
    if not isinstance(doc, dict):
        raise DataError(f"{base}/quality returned a non-object document")
    return doc


def _fetch_spans(url: str) -> list:
    """``GET {url}/trace`` from a live server: its recent span events."""
    base = url.rstrip("/")
    try:
        with urllib.request.urlopen(f"{base}/trace", timeout=10) as resp:
            doc = json.load(resp)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise _FetchError(f"cannot fetch {base}/trace: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("spans"), list):
        raise DataError(f"{base}/trace returned an unexpected document")
    if doc.get("enabled") is False:
        raise DataError(
            "tracing is disabled on this server (REPRO_OBS=0, or no "
            "span ring installed)"
        )
    return doc["spans"]


def _span_events(source: str) -> list:
    """Span events of a live server URL or a recorded run's sidecar."""
    if source.startswith(("http://", "https://")):
        return _fetch_spans(source)
    return read_events(resolve_manifest(source))


def _run_trace(args: argparse.Namespace) -> int:
    events = _span_events(args.source)
    if args.fmt == "chrome":
        if args.trace_id is not None:
            events = [
                e for e in events
                if e.get("kind") != "span" or e.get("trace_id") == args.trace_id
            ]
        text = json.dumps(to_chrome_trace(events), sort_keys=True) + "\n"
    else:
        text = render_timeline(
            events, trace=args.trace_id, max_children=args.max_children
        )
        if args.trace_id is None:
            text += "\n" + render_critical_path(events)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _quality_document(source: str, include_paths: bool) -> dict:
    """The quality document of a live server URL or a serve manifest."""
    if source.startswith(("http://", "https://")):
        doc = _fetch_quality(source, include_paths)
    else:
        manifest = load_manifest(resolve_manifest(source))
        doc = manifest.get("quality")
        if doc is None:
            raise DataError(
                f"{source} has no quality section; expected a "
                "kind=serve manifest with quality scoring enabled"
            )
        if not include_paths:
            doc = {k: v for k, v in doc.items() if k != "paths"}
    if doc.get("enabled") is False:
        raise DataError("quality scoring is disabled on this server")
    return doc


def _run_quality(args: argparse.Namespace) -> int:
    if args.watch and not args.source.startswith(("http://", "https://")):
        raise DataError("--watch needs a live server URL (http://host:port)")
    if args.watch and args.interval <= 0:
        raise DataError(f"--interval must be > 0, got {args.interval}")
    if args.watch and args.watch_retries < 1:
        raise DataError(
            f"--watch-retries must be >= 1, got {args.watch_retries}"
        )
    failures = 0
    while True:
        try:
            doc = _quality_document(args.source, args.paths)
        except _FetchError as exc:
            if not args.watch:
                raise
            failures += 1
            if failures >= args.watch_retries:
                print(
                    f"error: {exc} ({failures} consecutive failures)",
                    file=sys.stderr,
                )
                return 2
            print(
                f"connection lost ({exc}); retrying in {args.interval:g}s "
                f"[{failures}/{args.watch_retries}]",
                file=sys.stderr,
                flush=True,
            )
        else:
            failures = 0
            if args.watch:
                print(time.strftime("-- %H:%M:%S " + "-" * 56))
            print(quality_report(doc), flush=True)
            if not args.watch:
                return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary":
            manifest = load_manifest(resolve_manifest(args.run))
            print(summary_report(manifest))
        elif args.command == "slowest":
            if args.n < 1:
                raise DataError(f"-n must be >= 1, got {args.n}")
            events = read_events(resolve_manifest(args.run))
            print(slowest_report(events, n=args.n))
        elif args.command == "compare":
            manifest_a = load_manifest(resolve_manifest(args.run_a))
            manifest_b = load_manifest(resolve_manifest(args.run_b))
            print(compare_report(manifest_a, manifest_b))
        elif args.command == "quality":
            return _run_quality(args)
        elif args.command == "trace":
            return _run_trace(args)
        elif args.command == "export":
            manifest = load_manifest(resolve_manifest(args.run))
            render = to_openmetrics if args.fmt == "openmetrics" else to_flat_json
            text = render(manifest)
            if args.output:
                Path(args.output).write_text(text, encoding="utf-8")
                print(f"wrote {args.output}", file=sys.stderr)
            else:
                sys.stdout.write(text)
        elif args.bench_command == "record":
            source = _load_source(args.source)
            path = record_baseline(
                source,
                name=args.name,
                baselines_dir=args.baselines_dir,
                recorded_from=args.source,
            )
            print(f"recorded baseline {args.name!r} -> {path}")
        else:  # bench check
            source = _load_source(args.source)
            baseline = load_baseline(
                baseline_path(args.name, args.baselines_dir)
            )
            findings = check_against_baseline(
                source, baseline, tolerance=args.tolerance
            )
            print(render_check_report(findings, verbose=args.verbose))
            if any(f.regressed for f in findings):
                return 1
    except DataError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Reports are often piped to `head`/`less`; a closed pipe is fine.
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
