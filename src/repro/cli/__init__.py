"""Command-line interface.

Five commands, installed as console scripts:

* ``repro-campaign`` — run a measurement campaign over a catalog and
  save the dataset to CSV.
* ``repro-analyze`` — regenerate the paper's figures (or a subset) from
  a saved dataset.
* ``repro-predict`` — one-off Formula-Based prediction from measured
  path characteristics.
* ``repro-obs`` — inspect run manifests and gate bench regressions.
* ``repro-serve`` — the long-running online prediction service (HB
  streaming state per path + stateless FB predictions over HTTP).

Each is also reachable as ``python -m repro.cli.<name>``.
"""
