"""Command-line interface.

Three commands, installed as console scripts:

* ``repro-campaign`` — run a measurement campaign over a catalog and
  save the dataset to CSV.
* ``repro-analyze`` — regenerate the paper's figures (or a subset) from
  a saved dataset.
* ``repro-predict`` — one-off Formula-Based prediction from measured
  path characteristics.

Each is also reachable as ``python -m repro.cli.<name>``.
"""
