"""``repro-campaign``: run a measurement campaign and save the dataset.

Campaigns are cached on disk by content (catalog, seed, settings, code
version): re-running the same invocation loads the prior dataset
instead of re-simulating.  Set ``REPRO_CACHE_DIR`` (or ``--cache-dir``)
to relocate the cache, or ``--no-cache`` to bypass it.

Every run also records telemetry (phase timings, cache hit/miss,
simulation counters) and writes it as sidecars of the output —
``X.manifest.json`` + ``X.events.jsonl`` — which ``repro-obs`` renders;
set ``REPRO_OBS=0`` to turn telemetry off entirely.

Campaigns are fault tolerant: every finished (path, trace) pair is
checkpointed (under ``$REPRO_CHECKPOINT_DIR`` or ``--checkpoint-dir``),
failed or hung jobs are retried with capped exponential backoff, and a
run that still dies can be continued with ``--resume`` — only the
missing traces are simulated, and the reassembled dataset is
bit-identical to an uninterrupted run.  See ``docs/robustness.md``.

Examples::

    repro-campaign --catalog may2004 --traces 2 --epochs 60 -o may.csv
    repro-campaign --catalog march2006 --seed 7 -o march.csv
    repro-campaign --catalog may2004 --paths 10 --quiet -o small.csv
    repro-campaign --workers 8 -o full.csv         # parallel simulation
    repro-campaign --workers 0 --no-cache -o f.csv # all CPUs, force re-run
    repro-campaign --workers 8 --resume -o f.csv   # continue a dead run
    repro-obs summary may.csv                      # inspect the telemetry
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.core.cachekey import stable_fingerprint
from repro.core.errors import ExecutionError
from repro.obs import RunRecorder, get_telemetry
from repro.obs.render import progress_line
from repro.fastpath.vector import ENV_FLUID_VECTOR
from repro.paths.config import expanded_catalog, march_2006_catalog, may_2004_catalog
from repro.testbed.cache import DatasetCache, campaign_cache_key, run_cached
from repro.testbed.campaign import Campaign, CampaignSettings
from repro.testbed.checkpoint import CheckpointStore
from repro.testbed.executor import CampaignProgress, RetryPolicy
from repro.testbed.io import save_dataset

CATALOGS = {
    "may2004": may_2004_catalog,
    "march2006": march_2006_catalog,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run a TCP-throughput measurement campaign and save it as CSV.",
    )
    parser.add_argument(
        "--catalog",
        choices=sorted(CATALOGS),
        default="may2004",
        help="path catalog to measure (default: may2004)",
    )
    parser.add_argument(
        "--paths",
        type=int,
        default=None,
        metavar="N",
        help="measure N paths: below the catalog size a stratified "
        "sample, above it the catalog is expanded with independent "
        "clones (e.g. --paths 1000)",
    )
    parser.add_argument("--traces", type=int, default=7, help="traces per path")
    parser.add_argument(
        "--epochs", type=int, default=150, help="epochs per trace"
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="transfer duration (default: 50 s; march2006 default: 120 s)",
    )
    parser.add_argument(
        "--no-small-window",
        action="store_true",
        help="skip the W=20KB companion transfers",
    )
    parser.add_argument(
        "-w",
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for trace simulation; 0 = all CPUs "
        "(default: 1; results are bit-identical for any worker count)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="(path, trace) units dispatched per parallel job; larger "
        "chunks amortize dispatch overhead for short traces (default: "
        "auto — one job per path on the vectorized fluid engine, one "
        "per trace on the scalar engine; results are bit-identical for "
        "any chunk size)",
    )
    parser.add_argument(
        "--fluid-engine",
        choices=("vector", "scalar"),
        default=None,
        help="fluid-path simulation engine: 'vector' batches each "
        "trace's epochs through numpy, 'scalar' runs the reference "
        "per-epoch loop; the two are bit-identical (default: the "
        "REPRO_FLUID_VECTOR environment variable, else vector)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the campaign under cProfile and write the stats "
        "next to the dataset as OUTPUT.pstats (inspect with "
        "'python -m pstats')",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate, and do not store the result in the cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="dataset cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/datasets)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip traces already checkpointed by a previous (crashed) run "
        "of this exact campaign; the result is bit-identical to an "
        "uninterrupted run",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per failed/hung/crashed job before aborting (default: 2)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="initial retry backoff, doubled per retry and capped at 8 s "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="treat a parallel job running longer than this as hung: kill "
        "its worker and retry it (default: no timeout)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="per-trace checkpoint directory (default: $REPRO_CHECKPOINT_DIR "
        "or ~/.cache/repro/checkpoints)",
    )
    parser.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="do not checkpoint finished traces (a crash loses all progress)",
    )
    parser.add_argument(
        "-o", "--output", required=True, metavar="FILE", help="output CSV path"
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress all progress, summary, and telemetry output",
    )
    return parser


def _print_progress(snapshot: CampaignProgress) -> None:
    """Render one live progress line (carriage-return overwritten)."""
    sys.stderr.write("\r" + progress_line(snapshot))
    if snapshot.done:
        sys.stderr.write("\n")
    sys.stderr.flush()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.fluid_engine is not None:
        import os

        os.environ[ENV_FLUID_VECTOR] = "1" if args.fluid_engine == "vector" else "0"
    catalog = CATALOGS[args.catalog]()
    if args.paths is not None:
        catalog = expanded_catalog(catalog, args.paths)

    is_2006 = args.catalog == "march2006"
    duration = args.duration if args.duration is not None else (120.0 if is_2006 else 50.0)
    settings = CampaignSettings(
        n_traces=args.traces,
        epochs_per_trace=args.epochs,
        transfer_duration_s=duration,
        run_small_window=not args.no_small_window and not is_2006,
        checkpoint_fractions=(0.25, 0.5, 1.0) if is_2006 else (),
    )

    campaign = Campaign(catalog, seed=args.seed, label=args.catalog)
    cache = None if args.no_cache else DatasetCache(args.cache_dir)
    run_key = campaign_cache_key(campaign, settings)
    cache_key = "" if cache is None else run_key
    checkpoint = None if args.no_checkpoint else CheckpointStore(args.checkpoint_dir)
    retry = RetryPolicy(
        max_retries=args.max_retries,
        backoff_s=args.retry_backoff,
        job_timeout_s=args.job_timeout,
    )
    recorder = RunRecorder(
        label=args.catalog,
        seed=args.seed,
        catalog_hash=stable_fingerprint(catalog),
        cache_key=cache_key,
        settings=dataclasses.asdict(settings),
        workers=args.workers,
    ).start()

    progress = None if args.quiet else _print_progress
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if cache is None:
            dataset = campaign.run(
                settings,
                n_workers=args.workers,
                progress=progress,
                retry=retry,
                checkpoint=checkpoint,
                run_key=run_key,
                resume=args.resume,
                chunk_size=args.chunk_size,
            )
            hit = False
        else:
            dataset, hit = run_cached(
                campaign,
                settings,
                n_workers=args.workers,
                cache=cache,
                progress=progress,
                retry=retry,
                checkpoint=checkpoint,
                resume=args.resume,
                chunk_size=args.chunk_size,
            )
    except ExecutionError as exc:
        # The campaign is dead, but its telemetry (retries, failures,
        # the campaign.aborted event) is still worth a manifest — and
        # the checkpoints written so far make `--resume` possible.
        recorder.finish(n_paths=len(catalog))
        if get_telemetry().enabled:
            recorder.write(args.output)
        sys.stderr.write(f"\ncampaign aborted: {exc}\n")
        if checkpoint is not None:
            sys.stderr.write(
                "completed traces are checkpointed; re-run with --resume "
                "to continue from them\n"
            )
        return 1
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(f"{args.output}.pstats")
    manifest = recorder.finish(
        cache_hit=hit,
        n_paths=len(catalog),
        n_traces=len(dataset.traces),
        n_epochs=len(dataset.epochs()),
    )
    elapsed = manifest["wall_time_s"]
    save_dataset(dataset, args.output)

    telemetry_note = ""
    if get_telemetry().enabled:
        manifest_path, _events_path = recorder.write(args.output)
        if cache is not None and not hit:
            # Leave a copy next to the cache entry too, so the telemetry
            # of the run that populated an entry travels with it.
            recorder.write(cache.path_for(cache_key))
        telemetry_note = f"telemetry -> {manifest_path}"

    if not args.quiet:
        print(dataset.summary())
        if hit:
            print(f"cache hit, loaded in {elapsed:.1f}s -> {args.output}")
        else:
            print(
                f"simulated in {elapsed:.1f}s "
                f"(workers={args.workers}) -> {args.output}"
            )
        if telemetry_note:
            print(telemetry_note)
        if profiler is not None:
            print(f"profile -> {args.output}.pstats")
    return 0


if __name__ == "__main__":
    sys.exit(main())
