"""``repro-serve``: the long-running online prediction service.

Examples::

    repro-serve                                   # 127.0.0.1:8710
    repro-serve --port 0                          # ephemeral port, printed
    repro-serve --predictors last,ewma --shards 4
    repro-serve --snapshot state.json --manifest serve.manifest.json

The service answers (see docs/serving.md for the full API):

* ``POST /paths/{key}/samples``  ``{"samples": [42.1, ...]}``
* ``GET  /paths/{key}/predict?predictor=ma10``
* ``POST /predict/fb``  ``{"rtt_ms": 45, "loss": 0.002}``
* ``GET  /healthz``, ``GET /metrics``

On SIGINT/SIGTERM it shuts down gracefully: the state store is saved to
``--snapshot`` (restored on the next start), and a ``kind: "serve"``
run manifest with the request/ingest telemetry is written to
``--manifest``.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

from repro.core.errors import ReproError
from repro.hb.streaming import BASE_PREDICTORS, DEFAULT_SERVE_PREDICTORS
from repro.obs import RunRecorder
from repro.obs.quality import QualityConfig, QualityTracker
from repro.obs.recorder import write_manifest
from repro.obs.spans import install_span_ring
from repro.serve.accesslog import DEFAULT_MAX_BYTES, AccessLog
from repro.serve.app import ServeApp
from repro.serve.http import serve_app
from repro.serve.state import ShardedStateStore, default_specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve online HB/FB TCP throughput predictions over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8710,
        help="bind port; 0 picks an ephemeral port (printed on startup)",
    )
    parser.add_argument(
        "--predictors",
        default=",".join(DEFAULT_SERVE_PREDICTORS),
        metavar="NAMES",
        help="comma-separated HB predictors maintained per path "
        f"(available: {','.join(sorted(BASE_PREDICTORS))})",
    )
    parser.add_argument(
        "--shards", type=int, default=8, help="state-store shards (default 8)"
    )
    parser.add_argument(
        "--max-paths",
        type=int,
        default=1024,
        help="total path capacity before LRU eviction (default 1024)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="FILE",
        help="state snapshot: restored on startup when present, "
        "written atomically on shutdown",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="write a kind=serve run manifest here on shutdown",
    )
    parser.add_argument(
        "--label", default="repro-serve", help="run label for manifests/metrics"
    )
    parser.add_argument(
        "--slo-error",
        type=float,
        default=1.0,
        metavar="E",
        help="quality SLO: |relative error| above E counts a "
        "serve.slo_breaches tick (default 1.0; <= 0 disables)",
    )
    parser.add_argument(
        "--quality-window",
        type=int,
        default=QualityConfig.window,
        metavar="N",
        help="rolling error-window length per path x predictor "
        f"(default {QualityConfig.window})",
    )
    parser.add_argument(
        "--no-quality",
        action="store_true",
        help="disable online prediction-quality scoring entirely",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        metavar="FILE",
        help="per-request JSONL access log with phase timings "
        "(FILE, or '-' for stdout); off by default",
    )
    parser.add_argument(
        "--access-log-max-bytes",
        type=int,
        default=DEFAULT_MAX_BYTES,
        metavar="N",
        help="rotate the access log past N bytes "
        f"(default {DEFAULT_MAX_BYTES})",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="fraction of requests whose span tree is recorded "
        "(default: REPRO_TRACE_SAMPLE, or 1.0); requires --access-log",
    )
    return parser


def build_store(args: argparse.Namespace) -> ShardedStateStore:
    names = [name.strip() for name in args.predictors.split(",") if name.strip()]
    unknown = sorted(set(names) - set(BASE_PREDICTORS))
    if unknown:
        raise ReproError(
            f"unknown predictors {unknown}; "
            f"choose from {sorted(BASE_PREDICTORS)}"
        )
    if not names:
        raise ReproError("--predictors must name at least one predictor")
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if args.max_paths < args.shards:
        raise ReproError(
            f"--max-paths must be >= --shards ({args.max_paths} < {args.shards})"
        )
    if getattr(args, "no_quality", False):
        quality = None
    else:
        slo = args.slo_error if args.slo_error > 0 else None
        try:
            quality = QualityTracker(
                QualityConfig(
                    window=args.quality_window,
                    slo_abs_error=slo,
                    max_paths=args.max_paths,
                )
            )
        except ReproError as exc:
            raise ReproError(f"bad quality configuration: {exc}") from None
    return ShardedStateStore(
        specs=default_specs(names),
        n_shards=args.shards,
        max_paths_per_shard=max(1, args.max_paths // args.shards),
        quality=quality,
    )


async def run_service(args: argparse.Namespace) -> int:
    store = build_store(args)
    if args.snapshot and Path(args.snapshot).is_file():
        restored = store.load(args.snapshot)
        print(f"restored {restored} path(s) from {args.snapshot}", flush=True)

    recorder = RunRecorder(label=args.label, kind="serve").start()
    app = ServeApp(store, label=args.label)
    # The ring backs GET /trace with the most recent spans regardless
    # of uptime; the manifest's events stop at REPRO_TRACE_MAX_SPANS.
    install_span_ring()
    access_log = None
    if args.access_log:
        access_log = AccessLog(
            args.access_log,
            max_bytes=args.access_log_max_bytes,
            trace_sample=args.trace_sample,
        )
    server = await serve_app(
        app.handle, host=args.host, port=args.port, access_log=access_log
    )
    port = server.sockets[0].getsockname()[1]
    print(f"repro-serve listening on http://{args.host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass

    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        if access_log is not None:
            access_log.close()
        if args.snapshot:
            store.save(args.snapshot)
            print(f"saved {len(store)} path(s) to {args.snapshot}", flush=True)
        store.update_gauges()
        if store.quality is not None:
            store.quality.update_gauges()
        extras = {}
        if store.quality is not None:
            extras["quality"] = store.quality.summary(include_paths=True)
        manifest = recorder.finish(n_paths=len(store), extras=extras)
        if args.manifest:
            events_path = Path(args.manifest).with_suffix(".events.jsonl")
            write_manifest(manifest, recorder.events, args.manifest, events_path)
            print(f"wrote {args.manifest}", flush=True)
    print("repro-serve shut down cleanly", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(run_service(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        return 0


if __name__ == "__main__":
    sys.exit(main())
