"""``repro-analyze``: regenerate the paper's figures from a saved dataset.

Every invocation is an observable run: telemetry from the prediction
pipeline (per-predictor timers/counters, LSO detections, per-figure
wall times) is recorded and written as ``X.analysis.manifest.json`` +
``X.analysis.events.jsonl`` sidecars next to the dataset — rendered by
``repro-obs summary`` and gated by ``repro-obs bench check``.  Set
``REPRO_OBS=0`` to disable telemetry (no sidecars are written).

The HB figures run in two phases: a **warm phase** pre-computes every
predictor walk the requested figures will need — optionally in parallel
(``--workers N``) and against a persistent content-addressed cache
(``~/.cache/repro/evals``, see :mod:`repro.analysis.evalcache`) — then
the figure renderers run with the cache activated and only take hits.
Rendered output is byte-identical whatever the worker count, engine, or
cache state (``make analyze-parity`` checks this).

Examples::

    repro-analyze may.csv                      # every applicable figure
    repro-analyze may.csv --figures 2 19 20    # a subset
    repro-analyze may.csv --workers 4          # parallel warm phase
    repro-analyze may.csv --hb-engine scalar   # pin the scalar oracle
    repro-analyze march.csv --figures 11
    repro-obs summary may.analysis.manifest.json
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
from collections.abc import Callable
from pathlib import Path

from repro.analysis import fb_eval, hb_eval
from repro.analysis.evalcache import EvaluationCache
from repro.analysis.parallel import warm_eval_cache
from repro.hb.vector_eval import ENV_HB_VECTOR
from repro.analysis.report import (
    render_bar_table,
    render_cdf_table,
    render_quantile_table,
    render_scatter_summary,
)
from repro.core.errors import ReproError
from repro.obs import RunRecorder, get_telemetry
from repro.obs.recorder import analysis_sidecar_paths, write_manifest
from repro.paths.records import Dataset
from repro.testbed.io import load_dataset


def _fig2(ds: Dataset) -> str:
    cdfs = fb_eval.error_cdfs(ds)
    return render_cdf_table(
        {"all": cdfs.all, "lossy": cdfs.lossy, "lossless": cdfs.lossless},
        thresholds=(-1.0, 0.0, 1.0, 2.0, 5.0, 9.0),
        title="Fig. 2: FB error CDFs",
    ) + "\n" + cdfs.summary()


def _fig3(ds: Dataset) -> str:
    inc = fb_eval.increase_cdfs(ds)
    return (
        render_cdf_table(
            {"RTT incr (s)": inc.rtt_absolute_s, "loss incr": inc.loss_absolute},
            thresholds=(0.0, 0.005, 0.02, 0.1),
            title="Fig. 3: absolute increases during flow",
        )
        + f"\nmean RTT ratio {inc.mean_rtt_ratio:.2f}, "
        + f"mean loss ratio {inc.mean_loss_ratio:.2f}"
    )


def _fig6(ds: Dataset) -> str:
    comp = fb_eval.during_flow_prediction(ds)
    return render_cdf_table(
        {"prior": comp.with_prior, "during": comp.with_during},
        thresholds=(-3.0, -1.0, 0.0, 1.0, 3.0),
        title="Fig. 6: prior vs during-flow inputs",
    )


def _fig7(ds: Dataset) -> str:
    rows = [
        (s.path_id, {"p10": s.p10, "median": s.median, "p90": s.p90})
        for s in fb_eval.per_path_percentiles(ds)
    ]
    return render_bar_table(rows, title="Fig. 7: per-path FB error", value_format="{:+.2f}")


def _fig8(ds: Dataset) -> str:
    sc = fb_eval.throughput_vs_error(ds)
    return "Fig. 8: R vs E\n" + render_scatter_summary(sc.x, sc.errors, "R", "E")


def _fig11(ds: Dataset) -> str:
    effect = fb_eval.duration_effect(ds)
    return render_cdf_table(
        effect.cdfs, thresholds=(-1.0, 0.0, 1.0, 3.0), title="Fig. 11: duration cuts"
    )


def _fig12(ds: Dataset) -> str:
    rows = [
        (c.path_id, {"W=1MB": c.rmsre_large_window, "W=20KB": c.rmsre_small_window})
        for c in fb_eval.window_limited(ds)
        if c.window_limited
    ]
    return render_bar_table(rows, title="Fig. 12: FB RMSRE by window")


def _fig16(ds: Dataset) -> str:
    cdfs = hb_eval.predictor_cdfs(ds, hb_eval.ma_family())
    return render_quantile_table(cdfs, title="Fig. 16: MA family RMSRE")


def _fig17(ds: Dataset) -> str:
    cdfs = hb_eval.predictor_cdfs(ds, hb_eval.hw_family())
    return render_quantile_table(cdfs, title="Fig. 17: HW family RMSRE")


def _fig19(ds: Dataset) -> str:
    comp = hb_eval.fb_vs_hb(ds)
    return (
        render_quantile_table(
            {"FB": comp.fb, "HB": comp.hb}, title="Fig. 19: FB vs HB RMSRE"
        )
        + "\n"
        + comp.summary()
    )


def _fig20(ds: Dataset) -> str:
    rel = hb_eval.cov_correlation(ds)
    return (
        "Fig. 20: CoV vs RMSRE\n"
        + render_scatter_summary(rel.covs, rel.rmsres, "CoV", "RMSRE")
        + f"\ncorrelation: {rel.correlation():.2f}"
    )


def _fig21(ds: Dataset) -> str:
    rows = [
        (
            f"{c.path_id} [{c.label}]",
            {n: sum(v) / len(v) for n, v in c.rmsres_by_predictor.items()},
        )
        for c in hb_eval.path_classes(ds)
    ]
    return render_bar_table(rows, title="Fig. 21: path classes")


def _fig22(ds: Dataset) -> str:
    rows = [
        (c.path_id, {"W=1MB": c.rmsre_large_window, "W=20KB": c.rmsre_small_window})
        for c in hb_eval.window_limited_hb(ds)
    ]
    return render_bar_table(rows, title="Fig. 22: HB RMSRE by window")


def _fig23(ds: Dataset) -> str:
    cdfs = hb_eval.interval_effect(ds)
    return render_quantile_table(cdfs, title="Fig. 23: transfer intervals")


FIGURES: dict[int, Callable[[Dataset], str]] = {
    2: _fig2,
    3: _fig3,
    6: _fig6,
    7: _fig7,
    8: _fig8,
    11: _fig11,
    12: _fig12,
    16: _fig16,
    17: _fig17,
    19: _fig19,
    20: _fig20,
    21: _fig21,
    22: _fig22,
    23: _fig23,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Regenerate the paper's figures from a saved campaign CSV.",
    )
    parser.add_argument("dataset", help="CSV written by repro-campaign")
    parser.add_argument(
        "--figures",
        type=int,
        nargs="+",
        metavar="N",
        help=f"figure numbers to produce (available: {sorted(FIGURES)})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the HB warm phase (0 = all CPUs); "
        "rendered output is identical at any worker count",
    )
    parser.add_argument(
        "--hb-engine",
        choices=("vector", "scalar"),
        default=None,
        help="pin the HB evaluation engine for this run (default: the "
        f"{ENV_HB_VECTOR} environment variable, vector when unset)",
    )
    parser.add_argument(
        "--no-eval-cache",
        action="store_true",
        help="do not read or write the persistent evaluation cache "
        "(walks are still shared in-memory across this run's figures)",
    )
    parser.add_argument(
        "--eval-cache-dir",
        metavar="DIR",
        default=None,
        help="evaluation cache directory (default: $REPRO_EVAL_CACHE_DIR "
        "or ~/.cache/repro/evals)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the analysis under cProfile and write the stats "
        "next to the dataset as DATASET.analysis.pstats (inspect with "
        "'python -m pstats')",
    )
    return parser


def _dataset_identity(path: Path) -> str:
    """sha256 of the dataset file bytes — the analysis-run cache_key."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _flush_phase_timers(clock, telemetry) -> None:
    """Turn the run's phase laps into manifest timers.

    ``load`` becomes ``analysis.load_s``; every ``fig<N>`` lap becomes a
    sample of ``analysis.figure_s{figure=N}``.
    """
    for phase, seconds in clock.phases.items():
        if phase.startswith("fig"):
            timer = telemetry.metrics.timer("analysis.figure_s", figure=phase[3:])
        else:
            timer = telemetry.metrics.timer(f"analysis.{phase}_s")
        timer.observe(seconds)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    dataset_path = Path(args.dataset)
    wanted = args.figures or sorted(FIGURES)
    if args.hb_engine is not None:
        # Workers inherit the environment, so one flag pins both the
        # in-process figure renders and the warm-phase fan-out.
        os.environ[ENV_HB_VECTOR] = "1" if args.hb_engine == "vector" else "0"

    telemetry = get_telemetry()
    observing = telemetry.enabled
    recorder = RunRecorder(
        label=dataset_path.name,
        kind="analysis",
        cache_key=(
            _dataset_identity(dataset_path)
            if observing and dataset_path.is_file()
            else ""
        ),
        settings={
            "dataset": str(args.dataset),
            "figures": list(wanted),
            "workers": args.workers,
            "hb_engine": args.hb_engine,
            "eval_cache": not args.no_eval_cache,
        },
    ).start()
    clock = telemetry.phase_clock()

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    dataset = load_dataset(args.dataset)
    clock.lap("load")

    cache = EvaluationCache(args.eval_cache_dir, memory_only=args.no_eval_cache)
    warm = warm_eval_cache(
        dataset, str(dataset_path), wanted, cache, n_workers=args.workers
    )
    clock.lap("warm")
    telemetry.emit(
        "analysis.warm",
        planned=warm.planned,
        cached=warm.cached,
        computed=warm.computed,
        workers=warm.workers,
    )
    if warm.planned:
        print(
            f"warm phase: {warm.computed} evaluations computed, "
            f"{warm.cached} cached, workers={warm.workers}",
            file=sys.stderr,
        )

    status = 0
    rendered: list[int] = []
    skipped: list[int] = []
    try:
        with cache.activated():
            print(dataset.summary())
            for number in wanted:
                renderer = FIGURES.get(number)
                if renderer is None:
                    print(
                        f"\n[fig {number}] no renderer (available: {sorted(FIGURES)})"
                    )
                    status = 2
                    clock.lap(f"fig{number}")
                    telemetry.emit("figure", figure=number, status="unknown")
                    continue
                print()
                try:
                    print(renderer(dataset))
                except ReproError as exc:
                    print(f"[fig {number}] not derivable from this dataset: {exc}")
                    clock.lap(f"fig{number}")
                    skipped.append(number)
                    telemetry.emit(
                        "figure",
                        figure=number,
                        status="skipped",
                        wall_s=clock.phases.get(f"fig{number}", 0.0),
                        reason=str(exc),
                    )
                else:
                    clock.lap(f"fig{number}")
                    rendered.append(number)
                    telemetry.emit(
                        "figure",
                        figure=number,
                        status="ok",
                        wall_s=clock.phases.get(f"fig{number}", 0.0),
                    )
    except BrokenPipeError:
        # Downstream pipe closed (e.g. `repro-analyze ds.csv | head`).
        status = 0
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(f"{args.dataset}.analysis.pstats")
    if observing:
        _flush_phase_timers(clock, telemetry)
    recorder.finish(
        n_paths=len(dataset.path_ids),
        n_traces=len(dataset.traces),
        n_epochs=len(dataset.epochs()),
        extras={
            "analysis": {
                "dataset": str(args.dataset),
                "figures": rendered,
                "skipped": skipped,
                "warm_planned": warm.planned,
                "warm_cached": warm.cached,
                "warm_computed": warm.computed,
                "workers": warm.workers,
            }
        },
    )
    if observing:
        manifest_path, events_path = analysis_sidecar_paths(dataset_path)
        write_manifest(recorder.manifest, recorder.events, manifest_path, events_path)
        print(f"telemetry -> {manifest_path}", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
