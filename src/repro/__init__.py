"""Reproduction of *On the predictability of large transfer TCP throughput*.

He, Dovrolis, Ammar — ACM SIGCOMM 2005; extended version in Computer
Networks 51 (2007) 3959-3977.

The package is organised around the paper's two predictor families and the
measurement substrate they were evaluated on:

``repro.formulas``
    Formula-Based (FB) prediction: the Mathis square-root model, the PFTK
    model, the revised PFTK model, the Cardwell slow-start model, and the
    combined FB predictor of the paper's Eq. (3).

``repro.hb``
    History-Based (HB) prediction: Moving Average, EWMA, non-seasonal
    Holt-Winters, and the paper's Level-Shift/Outlier (LSO) heuristics.

``repro.simnet`` / ``repro.tcp`` / ``repro.apps``
    A discrete-event packet-level network simulator with a TCP Reno
    implementation and the measurement tools the paper used (an IPerf-like
    bulk transfer app, a ping-like periodic prober, a pathload-like
    available-bandwidth estimator, and cross-traffic generators).

``repro.fastpath``
    A mechanistic fluid model of a wide-area path used to run the paper's
    full-scale measurement campaign (36 750 transfers) in seconds.

``repro.testbed``
    A RON-like testbed emulation: path catalogs, the epoch/trace/campaign
    measurement structure of the paper's Section 4.1.

``repro.analysis``
    The computations behind every figure of the paper's evaluation.

Quickstart::

    from repro.testbed import Campaign, may_2004_catalog
    from repro.testbed.campaign import CampaignSettings
    from repro.analysis import fb_eval

    campaign = Campaign(may_2004_catalog(), seed=1)
    dataset = campaign.run(CampaignSettings(n_traces=2, epochs_per_trace=50))
    print(fb_eval.error_cdfs(dataset).summary())
"""

from repro._version import __version__

__all__ = ["__version__"]
