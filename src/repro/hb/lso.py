"""Level-Shift and Outlier detection heuristics (paper Section 5.2).

Given the history ``{X_1, ..., X_n}`` of past measurements since the last
detected level shift (outliers already excluded), the paper declares
``X_k`` an *increasing* (resp. decreasing) **level shift** when:

1. all of ``{X_1, ..., X_{k-1}}`` are lower (higher) than all of
   ``{X_k, ..., X_n}``,
2. the median of the prefix differs from the median of the suffix by more
   than a relative difference ``chi`` (the paper's ``γ``/``χ``,
   default 0.3), and
3. ``k + 2 <= n`` — at least three samples after the shift, so a lone
   outlier is not mistaken for a shift.

A measurement ``X_k`` with ``k < n`` is an **outlier** when it differs
from the median of ``{X_1, ..., X_n}`` by more than a relative difference
``psi`` (default 0.4).  The most recent sample is never judged an outlier
(it may be the start of a level shift instead).

Relative difference between ``a`` and ``b`` is measured as
``|a - b| / min(a, b)`` — symmetric, consistent with the paper's error
metric (Eq. 4).  Throughputs are positive so the denominator is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Sequence

from repro.core.errors import DataError
from repro.obs import get_telemetry

#: The paper's empirically chosen defaults (Section 5.3).
DEFAULT_LEVEL_SHIFT_THRESHOLD = 0.3
DEFAULT_OUTLIER_THRESHOLD = 0.4


@dataclass(frozen=True)
class LsoConfig:
    """Thresholds of the LSO heuristics.

    Attributes:
        level_shift_threshold: the paper's ``χ`` — minimum relative
            difference between prefix and suffix medians for a shift.
        outlier_threshold: the paper's ``ψ`` — minimum relative
            difference from the history median for an outlier.
    """

    level_shift_threshold: float = DEFAULT_LEVEL_SHIFT_THRESHOLD
    outlier_threshold: float = DEFAULT_OUTLIER_THRESHOLD

    def __post_init__(self) -> None:
        if self.level_shift_threshold <= 0:
            raise ValueError(
                f"level_shift_threshold must be positive, "
                f"got {self.level_shift_threshold}"
            )
        if self.outlier_threshold <= 0:
            raise ValueError(
                f"outlier_threshold must be positive, got {self.outlier_threshold}"
            )


def relative_difference(a: float, b: float) -> float:
    """Symmetric relative difference ``|a - b| / min(a, b)``.

    Defined for positive values (TCP throughputs).  This is a pure math
    helper, so it raises a plain :class:`ValueError`; the detection
    entry points (:func:`detect_outliers`, :func:`detect_level_shift`)
    validate their histories up front and raise the package-typed
    :class:`~repro.core.errors.DataError` instead, so a zero-throughput
    outage epoch can never escape them as a bare ``ValueError``.
    """
    if a <= 0 or b <= 0:
        raise ValueError(f"relative difference needs positive values, got {a}, {b}")
    return abs(a - b) / min(a, b)


def _require_positive(history: Sequence[float]) -> None:
    """Reject histories carrying non-positive (outage) samples."""
    for k, value in enumerate(history):
        if value <= 0:
            raise DataError(
                f"throughput history must be positive; sample {k} is {value!r} "
                "(a zero/outage epoch — discard or flag it before detection)"
            )


def detect_outliers(
    history: Sequence[float], config: LsoConfig | None = None
) -> list[int]:
    """Indices of outliers in ``history`` per the paper's rule.

    Only interior samples (``k < n``, zero-based ``k < len - 1``) can be
    outliers.  Returns indices into ``history``, ascending.

    Implementation note: an outlier must be an *isolated* deviation.  A
    deviating sample whose successor also deviates from the median in the
    same direction is left in place — it may be the beginning of a level
    shift, which the level-shift rule (not the outlier rule) must judge
    once three post-shift samples exist.  Without this guard, a level
    shift larger than the outlier threshold ``ψ`` would have its samples
    discarded one by one as each became interior, and the shift could
    never be detected.

    Raises:
        DataError: when the history contains a non-positive sample — a
            zero-throughput (outage) epoch must be rejected or flagged by
            the caller before it reaches the relative-difference metric.
    """
    config = config or LsoConfig()
    n = len(history)
    if n < 2:
        return []
    _require_positive(history)
    med = median(history)

    def deviates(value: float) -> bool:
        return relative_difference(value, med) > config.outlier_threshold

    outliers = []
    for k in range(n - 1):
        if not deviates(history[k]):
            continue
        successor = history[k + 1]
        same_direction_run = deviates(successor) and (
            (history[k] > med) == (successor > med)
        )
        if not same_direction_run:
            outliers.append(k)
    if outliers:
        # Incremental callers discard detected outliers from their
        # history immediately, so each outlier is counted exactly once
        # per detection pass; the lookup is only paid on a detection.
        get_telemetry().counter("hb.outliers_discarded").inc(len(outliers))
    return outliers


def detect_level_shift(
    history: Sequence[float], config: LsoConfig | None = None
) -> int | None:
    """Index ``k`` of a detected level shift in ``history``, or ``None``.

    ``history`` must already have outliers removed (the caller's job —
    :class:`repro.hb.wrappers.LsoPredictor` maintains that invariant).
    When several indices satisfy the conditions, the one with the
    widest separation gap between prefix and suffix values is returned:
    that split lands on the true boundary rather than one sample early
    or late.

    Raises:
        DataError: when the history contains a non-positive sample.
    """
    config = config or LsoConfig()
    n = len(history)
    # Condition 3 requires k + 2 <= n (one-based k): at least three
    # post-shift samples.  We additionally require two pre-shift samples
    # — with a single one, any unusually low/high first measurement after
    # a restart re-triggers the detector on plain noise, shredding the
    # history into spurious "regimes".  Minimum history: n >= 5.
    if n < 5:
        return None
    _require_positive(history)

    # Running prefix/suffix extremes make the full-separation test O(1)
    # per candidate split; medians (the expensive part) are then only
    # taken for the handful of splits that actually separate, so a scan
    # over an n-sample history costs O(n) rather than O(n^2).
    prefix_min = [0.0] * n
    prefix_max = [0.0] * n
    lo = hi = history[0]
    for i in range(n):
        x = history[i]
        if x < lo:
            lo = x
        if x > hi:
            hi = x
        prefix_min[i] = lo
        prefix_max[i] = hi
    suffix_min = [0.0] * n
    suffix_max = [0.0] * n
    lo = hi = history[n - 1]
    for i in range(n - 1, -1, -1):
        x = history[i]
        if x < lo:
            lo = x
        if x > hi:
            hi = x
        suffix_min[i] = lo
        suffix_max[i] = hi

    # Zero-based k ranges over 2 .. n-3 (one-based 3 .. n-2).
    best_k: int | None = None
    best_gap = 0.0
    for k in range(2, n - 2):
        if prefix_max[k - 1] < suffix_min[k]:
            gap = suffix_min[k] - prefix_max[k - 1]  # increasing shift
        elif prefix_min[k - 1] > suffix_max[k]:
            gap = prefix_min[k - 1] - suffix_max[k]  # decreasing shift
        else:
            continue
        med_prefix = median(history[:k])
        med_suffix = median(history[k:])
        if relative_difference(med_prefix, med_suffix) <= config.level_shift_threshold:
            continue
        # Ties go to the later split: the suffix is then the purest
        # post-shift history to restart from.
        if best_k is None or gap > best_gap or (gap == best_gap and k > best_k):
            best_gap = gap
            best_k = k
    if best_k is not None:
        get_telemetry().counter("hb.level_shifts").inc()
    return best_k
