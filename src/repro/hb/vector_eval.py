"""Array twins of the scalar walk-forward HB evaluation.

:func:`repro.hb.evaluate.evaluate_predictor` walks a predictor over a
trace one epoch at a time — clear, correct, and slow.  This module holds
the fast path: closed-form array recurrences for each registered
predictor family whose floating-point expression trees match the scalar
``forecast()``/``update()`` chain *element for element*, so the
forecasts (and therefore errors, RMSRE and every figure downstream) are
bit-identical to the scalar walk.  Exact type matches only: a subclass
may override anything, so it is routed to the scalar oracle.

The same contract as the fluid vector engine (``repro.fastpath.vector``)
applies:

* ``REPRO_HB_VECTOR=0`` pins the scalar loop — the oracle the parity
  suite (``tests/hb/test_vector_eval.py``) and ``make analyze-parity``
  compare against.
* Any new predictor family must either land with a vector twin and
  parity coverage, or simply not register here — unknown types fall
  back to the scalar walk and stay correct.

Bit-identity notes, family by family:

* ``MovingAverage`` — ``sum(deque)`` adds left-associatively starting
  from ``0``; a running prefix sum (warm-up) and per-offset column
  accumulation (steady state) add the same samples in the same order.
* ``Ewma``/``HoltWinters`` — inherently sequential recurrences, run as
  tight Python loops over the raw floats with the scalar update
  expressions verbatim, then stored into the output array in one slice
  assignment.
* ``AutoRegressive`` — the scalar ``forecast()`` builds fresh arrays
  from its history list; a contiguous slice view of the trace holds the
  same values in the same layout, so ``mean``, the normal-equation
  solve, and the lag dot product reproduce the same bits.
* ``LsoPredictor`` — an inline replay of the wrapper's per-epoch
  detect/discard/restart cycle, mirroring the incremental bookkeeping
  of :class:`repro.hb.streaming.StreamingLso`: a sorted mirror of the
  clean history makes medians O(1), detector calls are gated on
  prechecks that any detection provably implies (so the detectors —
  and their telemetry counters — fire exactly as often as in the
  scalar walk), and the base predictor is maintained incrementally
  instead of being rebuilt from scratch every epoch.
"""

from __future__ import annotations

import os
from bisect import bisect_left, insort
from statistics import median

import numpy as np

from repro.core.errors import DataError
from repro.hb.autoregressive import AutoRegressive
from repro.hb.base import HistoryPredictor, PredictorFactory
from repro.hb.ewma import Ewma
from repro.hb.holt_winters import _MIN_FORECAST, HoltWinters
from repro.hb.lso import LsoConfig, relative_difference
from repro.hb.moving_average import MovingAverage
from repro.hb.wrappers import LsoPredictor
from repro.obs import get_telemetry

#: Set to ``0`` to disable the vectorized walk and run the scalar oracle.
ENV_HB_VECTOR = "REPRO_HB_VECTOR"


def hb_vector_enabled() -> bool:
    """True unless ``REPRO_HB_VECTOR=0`` pins the scalar oracle.

    Read per call, so tests and the parity harness can flip the
    environment variable without re-importing anything.
    """
    return os.environ.get(ENV_HB_VECTOR, "1") != "0"


def vector_walk(
    values: np.ndarray, predictor: HistoryPredictor
) -> np.ndarray | None:
    """Per-epoch forecasts of the walk-forward evaluation, or ``None``.

    Args:
        values: the trace samples (already validated positive).
        predictor: a fresh predictor instance — inspected for its family
            and parameters, never mutated.

    Returns:
        The forecast array the scalar loop would produce (NaN where the
        predictor was not ready), bit-identical; or ``None`` when the
        predictor's exact type has no registered vector twin and the
        caller must run the scalar walk.
    """
    kind = type(predictor)
    if kind is MovingAverage:
        return _walk_moving_average(values, predictor.order)
    if kind is Ewma:
        return _walk_ewma(values, predictor.alpha)
    if kind is HoltWinters:
        return _walk_holt_winters(values, predictor.alpha, predictor.beta)
    if kind is AutoRegressive:
        return _walk_autoregressive(values, predictor)
    if kind is LsoPredictor:
        return _walk_lso(values, predictor)
    return None


def vector_errors(predictions: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-epoch relative errors (Eq. 4) for the forecast epochs.

    Element-wise ``(pred - actual) / min(pred, actual)`` — the same C
    double operations :func:`repro.core.metrics.relative_error` performs
    one epoch at a time.
    """
    errors = np.full(len(values), np.nan)
    mask = ~np.isnan(predictions)
    if not mask.any():
        return errors
    preds = predictions[mask]
    actuals = values[mask]
    nonpositive = preds <= 0
    if nonpositive.any():
        # Unreachable for the registered families (their forecasts are
        # positive by construction), but mirror relative_error's typed
        # failure rather than emitting garbage if that ever changes.
        k = int(np.flatnonzero(mask)[int(np.argmax(nonpositive))])
        raise DataError(
            f"relative error undefined for non-positive throughputs "
            f"(predicted={float(predictions[k])!r}, actual={float(values[k])!r})"
        )
    errors[mask] = (preds - actuals) / np.minimum(preds, actuals)
    return errors


def _walk_moving_average(values: np.ndarray, order: int) -> np.ndarray:
    n = len(values)
    predictions = np.full(n, np.nan)
    if n < 2:
        return predictions
    # Warm-up epochs (partial windows): a running prefix sum adds the
    # samples in the same left-to-right order as ``sum(deque)``.
    vals = values.tolist()
    prefix = 0.0
    for i in range(1, min(n, order)):
        prefix += vals[i - 1]
        predictions[i] = prefix / i
    if n > order:
        # Steady state: window_sums[t] = ((0 + v[t]) + v[t+1]) + ... —
        # one shifted-column addition per window offset keeps the
        # left-associative order of the scalar sum.
        window_sums = np.zeros(n - order)
        for j in range(order):
            window_sums += values[j : n - order + j]
        predictions[order:] = window_sums / order
    return predictions


def _walk_ewma(values: np.ndarray, alpha: float) -> np.ndarray:
    n = len(values)
    predictions = np.full(n, np.nan)
    if n < 2:
        return predictions
    vals = values.tolist()
    one_minus = 1.0 - alpha
    estimate = vals[0]
    out: list[float] = []
    append = out.append
    for value in vals[1:]:
        append(estimate)
        estimate = alpha * value + one_minus * estimate
    predictions[1:] = out
    return predictions


def _walk_holt_winters(values: np.ndarray, alpha: float, beta: float) -> np.ndarray:
    n = len(values)
    predictions = np.full(n, np.nan)
    if n < 3:
        return predictions
    vals = values.tolist()
    one_minus_a = 1.0 - alpha
    one_minus_b = 1.0 - beta
    level = vals[1]
    trend = vals[1] - vals[0]
    out: list[float] = []
    append = out.append
    for value in vals[2:]:
        raw = level + trend
        forecast = raw if raw > 0 else max(level, _MIN_FORECAST)
        append(forecast)
        new_level = alpha * value + one_minus_a * forecast
        trend = beta * (new_level - level) + one_minus_b * trend
        level = new_level
    predictions[2:] = out
    return predictions


def _walk_autoregressive(
    values: np.ndarray, predictor: AutoRegressive
) -> np.ndarray:
    n = len(values)
    predictions = np.full(n, np.nan)
    p = predictor.order
    max_history = predictor.max_history
    min_fit = 2 * p + 2
    eye = predictor.ridge * np.eye(p + 1)
    for i in range(1, n):
        start = i - max_history
        window = values[start if start > 0 else 0 : i]
        m = len(window)
        if m < min_fit:
            predictions[i] = window.mean()
            continue
        design = np.ones((m - p, p + 1))
        for j in range(p):
            design[:, j + 1] = window[p - 1 - j : m - 1 - j]
        gram = design.T @ design + eye
        coeffs = np.linalg.solve(gram, design.T @ window[p:])
        prediction = float(coeffs[0] + coeffs[1:] @ window[-1 : -p - 1 : -1])
        predictions[i] = prediction if prediction > 0 else window[-p:].mean()
    return predictions


def _detect_outliers_fast(
    arr: np.ndarray, med: float, config: LsoConfig
) -> list[int]:
    """Vectorized twin of :func:`repro.hb.lso.detect_outliers`.

    Same rule, elementwise: an interior sample deviating from the
    history median by more than ``psi`` is flagged unless its successor
    deviates in the same direction (a potential level shift).  The
    relative-difference comparisons are the identical C double
    operations, so the flag set matches the scalar detector exactly.
    The caller guarantees positive samples and supplies the median of
    ``arr`` (computed from its sorted mirror — the same value
    ``statistics.median`` would produce).
    """
    deviating = np.abs(arr - med) / np.minimum(arr, med) > config.outlier_threshold
    if not deviating[:-1].any():
        return []
    above = arr > med
    same_direction_run = deviating[1:] & (above[:-1] == above[1:])
    outliers = np.flatnonzero(deviating[:-1] & ~same_direction_run).tolist()
    if outliers:
        # Mirror the scalar detector's accounting (one bump per pass).
        get_telemetry().counter("hb.outliers_discarded").inc(len(outliers))
    return outliers


def _detect_level_shift_fast(
    arr: np.ndarray, history: list[float], config: LsoConfig
) -> int | None:
    """Vectorized twin of :func:`repro.hb.lso.detect_level_shift`.

    Running prefix/suffix extremes become ``minimum``/``maximum``
    accumulations; candidate splits with full separation (usually zero
    or one per call) still take their prefix/suffix medians through
    ``statistics.median`` so the threshold comparison sees the exact
    scalar values.  Tie-breaking replicates the scalar scan: widest
    gap wins, equal gaps go to the later split.
    """
    n = len(history)
    if n < 5:
        return None
    prefix_max = np.maximum.accumulate(arr)
    prefix_min = np.minimum.accumulate(arr)
    suffix_max = np.maximum.accumulate(arr[::-1])[::-1]
    suffix_min = np.minimum.accumulate(arr[::-1])[::-1]
    # Zero-based k ranges over 2 .. n-3 (one-based 3 .. n-2).
    increasing = prefix_max[1 : n - 3] < suffix_min[2 : n - 2]
    decreasing = prefix_min[1 : n - 3] > suffix_max[2 : n - 2]
    candidates = np.flatnonzero(increasing | decreasing)
    if candidates.size == 0:
        return None
    best_k: int | None = None
    best_gap = 0.0
    for c in candidates.tolist():
        k = c + 2
        if increasing[c]:
            gap = float(suffix_min[k] - prefix_max[k - 1])
        else:
            gap = float(prefix_min[k - 1] - suffix_max[k])
        med_prefix = median(history[:k])
        med_suffix = median(history[k:])
        if relative_difference(med_prefix, med_suffix) <= config.level_shift_threshold:
            continue
        if best_k is None or gap > best_gap or (gap == best_gap and k > best_k):
            best_gap = gap
            best_k = k
    if best_k is not None:
        get_telemetry().counter("hb.level_shifts").inc()
    return best_k


def lso_segmentation_fast(
    values: np.ndarray, config: LsoConfig
) -> tuple[list[int], list[int]]:
    """Incremental O(n) twin of the full-trace LSO segmentation pass.

    Returns the ``(outlier_indices, shift_indices)`` (original epoch
    indices, detection order) that the reference loop in
    :func:`repro.hb.evaluate.lso_segmentation` accumulates.  Same
    precheck gating as :func:`_walk_lso`, plus a parallel index list so
    detections map back to original epochs after removals/truncations.
    """
    psi = config.outlier_threshold
    indices: list[int] = []
    history: list[float] = []
    ordered: list[float] = []
    outlier_indices: list[int] = []
    shift_indices: list[int] = []
    buf = np.empty(len(values))  # numpy mirror of the clean history

    for idx, value in enumerate(values.tolist()):
        if value <= 0:
            raise DataError(f"throughput must be positive, got {value} at epoch {idx}")
        indices.append(idx)
        history.append(value)
        insort(ordered, value)
        m = len(history)
        buf[m - 1] = value
        if m >= 2:
            mid = m >> 1
            med = ordered[mid] if m & 1 else (ordered[mid - 1] + ordered[mid]) / 2
            lo = ordered[0]
            hi = ordered[-1]
            if (med - lo) / lo > psi or (hi - med) / med > psi:
                flagged = _detect_outliers_fast(buf[:m], med, config)
                if flagged:
                    outlier_indices.extend(indices[k] for k in flagged)
                    for k in reversed(flagged):
                        del indices[k]
                        sample = history.pop(k)
                        del ordered[bisect_left(ordered, sample)]
                    m = len(history)
                    buf[:m] = history
        if m >= 5:
            a = history[-1]
            b = history[-2]
            c = history[-3]
            lo3 = b if b < a else a
            if c < lo3:
                lo3 = c
            hi3 = b if b > a else a
            if c > hi3:
                hi3 = c
            h0 = history[0]
            h1 = history[1]
            if (h1 if h1 > h0 else h0) < lo3 or (h1 if h1 < h0 else h0) > hi3:
                shift = _detect_level_shift_fast(buf[:m], history, config)
                if shift is not None:
                    shift_indices.append(indices[shift])
                    del history[:shift]
                    del indices[:shift]
                    ordered = sorted(history)
                    m = len(history)
                    buf[:m] = history
    return outlier_indices, shift_indices


class _MaTwin:
    """Incremental stand-in for replaying a MovingAverage base."""

    __slots__ = ("order", "fed")

    def __init__(self, order: int) -> None:
        self.order = order
        self.fed: list[float] = []

    def rebuild(self, feed: list[float]) -> None:
        self.fed = list(feed)

    def extend(self, samples: list[float]) -> None:
        self.fed.extend(samples)

    def forecast(self) -> float:
        window = self.fed[-self.order :]
        return sum(window) / len(window)


class _EwmaTwin:
    """Incremental stand-in for replaying an Ewma base."""

    __slots__ = ("alpha", "one_minus", "estimate")

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.one_minus = 1.0 - alpha
        self.estimate: float | None = None

    def rebuild(self, feed: list[float]) -> None:
        self.estimate = None
        self.extend(feed)

    def extend(self, samples: list[float]) -> None:
        estimate = self.estimate
        alpha = self.alpha
        one_minus = self.one_minus
        for value in samples:
            estimate = value if estimate is None else alpha * value + one_minus * estimate
        self.estimate = estimate

    def forecast(self) -> float:
        assert self.estimate is not None
        return self.estimate


class _HwTwin:
    """Incremental stand-in for replaying a HoltWinters base."""

    __slots__ = ("alpha", "beta", "one_minus_a", "one_minus_b", "first", "level", "trend", "count")

    def __init__(self, alpha: float, beta: float) -> None:
        self.alpha = alpha
        self.beta = beta
        self.one_minus_a = 1.0 - alpha
        self.one_minus_b = 1.0 - beta
        self.first = 0.0
        self.level = 0.0
        self.trend = 0.0
        self.count = 0

    def rebuild(self, feed: list[float]) -> None:
        self.count = 0
        self.extend(feed)

    def extend(self, samples: list[float]) -> None:
        count = self.count
        level = self.level
        trend = self.trend
        alpha = self.alpha
        beta = self.beta
        one_minus_a = self.one_minus_a
        one_minus_b = self.one_minus_b
        for value in samples:
            if count == 0:
                self.first = value
            elif count == 1:
                level = value
                trend = value - self.first
            else:
                raw = level + trend
                forecast = raw if raw > 0 else max(level, _MIN_FORECAST)
                new_level = alpha * value + one_minus_a * forecast
                trend = beta * (new_level - level) + one_minus_b * trend
                level = new_level
            count += 1
        self.count = count
        self.level = level
        self.trend = trend

    def forecast(self) -> float:
        raw = self.level + self.trend
        return raw if raw > 0 else max(self.level, _MIN_FORECAST)


class _GenericTwin:
    """Fallback twin driving a real base predictor incrementally.

    A fresh replay over a prefix and an incremental extension by the
    same samples issue the identical ``update`` call sequence on a
    freshly built instance, so any deterministic predictor lands in the
    same state either way.
    """

    __slots__ = ("factory", "base")

    def __init__(self, factory: PredictorFactory, probe: HistoryPredictor) -> None:
        self.factory = factory
        self.base = probe

    def rebuild(self, feed: list[float]) -> None:
        self.base = self.factory()
        self.extend(feed)

    def extend(self, samples: list[float]) -> None:
        update = self.base.update
        for value in samples:
            update(value)

    def forecast(self) -> float:
        return self.base.forecast()


def _base_twin(factory: PredictorFactory) -> tuple[object, int]:
    probe = factory()
    kind = type(probe)
    if kind is MovingAverage:
        return _MaTwin(probe.order), probe.min_history
    if kind is Ewma:
        return _EwmaTwin(probe.alpha), probe.min_history
    if kind is HoltWinters:
        return _HwTwin(probe.alpha, probe.beta), probe.min_history
    return _GenericTwin(factory, probe), probe.min_history


def _walk_lso(values: np.ndarray, predictor: LsoPredictor) -> np.ndarray:
    """Inline replay of the LsoPredictor walk with incremental state.

    Per epoch the scalar wrapper re-runs both detectors over the full
    clean history and rebuilds its base predictor from scratch.  This
    walk keeps the clean history alongside a sorted mirror (medians and
    range clamps become O(1)) and only invokes a detector when a cheap
    precheck — implied by any actual detection — fires:

    * outliers: the relative deviation from the median is maximized at
      the history extremes, so if neither extreme deviates beyond the
      outlier threshold no sample does;
    * level shift: full prefix/suffix separation at any admissible split
      requires ``max`` of the first two samples below ``min`` of the
      last three (or the decreasing mirror image).

    The detectors own the ``hb.outliers_discarded``/``hb.level_shifts``
    counters and only bump them on a detection, so gating the calls
    leaves telemetry identical to the scalar walk.  The base predictor
    is fed incrementally and rebuilt only when the fed prefix actually
    changed (an outlier removed inside it, or a level-shift restart) —
    the same bookkeeping :class:`repro.hb.streaming.StreamingLso` uses.
    """
    config = predictor._config
    harden = predictor.harden
    psi = config.outlier_threshold
    clamp = predictor.RANGE_CLAMP_FACTOR
    twin, min_history = _base_twin(predictor._factory)

    n = len(values)
    predictions = np.full(n, np.nan)
    history: list[float] = []
    ordered: list[float] = []
    fed = 0  # length of the clean-history prefix absorbed by the twin
    buf = np.empty(n)  # numpy mirror of the clean history

    for idx, value in enumerate(values.tolist()):
        if fed >= min_history:
            raw = twin.forecast()
            if harden:
                # min(max(raw, lo/2), hi*2), branch-for-branch.
                low = ordered[0] / clamp
                if raw < low:
                    raw = low
                else:
                    high = ordered[-1] * clamp
                    if raw > high:
                        raw = high
            predictions[idx] = raw

        history.append(value)
        insort(ordered, value)
        m = len(history)
        buf[m - 1] = value
        rebuild = False
        med: float | None = None
        if m >= 2:
            mid = m >> 1
            med = ordered[mid] if m & 1 else (ordered[mid - 1] + ordered[mid]) / 2
            lo = ordered[0]
            hi = ordered[-1]
            if (med - lo) / lo > psi or (hi - med) / med > psi:
                flagged = _detect_outliers_fast(buf[:m], med, config)
                if flagged:
                    if flagged[0] < fed:
                        rebuild = True
                    for k in reversed(flagged):
                        sample = history.pop(k)
                        del ordered[bisect_left(ordered, sample)]
                    m = len(history)
                    buf[:m] = history
                    med = None
        if m >= 5:
            a = history[-1]
            b = history[-2]
            c = history[-3]
            lo3 = b if b < a else a
            if c < lo3:
                lo3 = c
            hi3 = b if b > a else a
            if c > hi3:
                hi3 = c
            h0 = history[0]
            h1 = history[1]
            if (h1 if h1 > h0 else h0) < lo3 or (h1 if h1 < h0 else h0) > hi3:
                shift = _detect_level_shift_fast(buf[:m], history, config)
                if shift is not None:
                    del history[:shift]
                    ordered = sorted(history)
                    m = len(history)
                    buf[:m] = history
                    med = None
                    rebuild = True

        # The wrapper's _replay(): quarantine a trailing sample deviating
        # from the clean-history median, then bring the base twin to the
        # fed prefix.
        target = m
        if harden and m >= 3:
            if med is None:
                mid = m >> 1
                med = ordered[mid] if m & 1 else (ordered[mid - 1] + ordered[mid]) / 2
            last = history[-1]
            deviation = (last - med) / med if last >= med else (med - last) / last
            if deviation > psi:
                target = m - 1
        if rebuild or target < fed:
            twin.rebuild(history[:target])
        elif target > fed:
            twin.extend(history[fed:target])
        fed = target
    return predictions
