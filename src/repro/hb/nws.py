"""An NWS-style adaptive ensemble forecaster.

The Network Weather Service (Wolski et al.; the paper's reference [16])
popularized a simple meta-strategy for exactly this problem: run a
collection of cheap forecasters side by side, track each one's recent
error on the series itself, and at every step emit the forecast of
whichever member currently has the lowest trailing error.

:class:`AdaptiveEnsemble` implements that strategy over any set of
:class:`~repro.hb.base.HistoryPredictor` members.  It is itself a
``HistoryPredictor``, so it can be LSO-wrapped and evaluated by all the
HB analysis code.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping

from repro.core.errors import ConfigurationError, PredictionError
from repro.hb.base import HistoryPredictor, PredictorFactory
from repro.hb.ewma import Ewma
from repro.hb.holt_winters import HoltWinters
from repro.hb.moving_average import MovingAverage


def default_members() -> dict[str, PredictorFactory]:
    """The classic NWS-like member set: last value, means, smoothers."""
    return {
        "last": lambda: MovingAverage(1),
        "5-MA": lambda: MovingAverage(5),
        "10-MA": lambda: MovingAverage(10),
        "0.5-EWMA": lambda: Ewma(0.5),
        "HW": lambda: HoltWinters(0.8, 0.2),
    }


class AdaptiveEnsemble(HistoryPredictor):
    """Pick-the-best-forecaster ensemble (NWS-style).

    Args:
        members: named predictor factories; defaults to
            :func:`default_members`.
        error_window: how many recent absolute relative errors each
            member is judged on.
    """

    def __init__(
        self,
        members: Mapping[str, PredictorFactory] | None = None,
        error_window: int = 10,
    ) -> None:
        factories = dict(members) if members is not None else default_members()
        if not factories:
            raise ConfigurationError("ensemble needs at least one member")
        if error_window < 1:
            raise ConfigurationError(f"error_window must be >= 1, got {error_window}")
        self.name = "NWS-ensemble"
        self.error_window = error_window
        self._members = {name: factory() for name, factory in factories.items()}
        self._errors: dict[str, deque[float]] = {
            name: deque(maxlen=error_window) for name in self._members
        }
        self._factories = factories
        self._count = 0

    @property
    def min_history(self) -> int:
        """Ready as soon as the least demanding member is."""
        return min(m.min_history for m in self._members.values())

    @property
    def n_observed(self) -> int:
        return self._count

    @property
    def ready(self) -> bool:
        return any(m.ready for m in self._members.values())

    def update(self, value: float) -> None:
        value = float(value)
        if value <= 0:
            raise ValueError(f"throughput observations must be positive, got {value}")
        # Score each ready member on this observation before feeding it.
        for name, member in self._members.items():
            if member.ready:
                forecast = member.forecast()
                denominator = min(forecast, value)
                if denominator > 0:
                    self._errors[name].append(abs(forecast - value) / denominator)
            member.update(value)
        self._count += 1

    def forecast(self) -> float:
        if not self.ready:
            raise PredictionError("no ensemble member has enough history")
        return self._members[self.best_member()].forecast()

    def best_member(self) -> str:
        """Name of the member with the lowest trailing mean error.

        Members without recorded errors rank last among ready members;
        unready members are skipped entirely.
        """
        best_name, best_score = None, None
        for name, member in self._members.items():
            if not member.ready:
                continue
            errors = self._errors[name]
            score = sum(errors) / len(errors) if errors else float("inf")
            if best_score is None or score < best_score:
                best_name, best_score = name, score
        if best_name is None:
            raise PredictionError("no ensemble member has enough history")
        return best_name

    def member_scores(self) -> dict[str, float]:
        """Trailing mean |E| per member (inf when unscored) — diagnostics."""
        return {
            name: (sum(errs) / len(errs) if errs else float("inf"))
            for name, errs in self._errors.items()
        }

    def reset(self) -> None:
        self._members = {name: factory() for name, factory in self._factories.items()}
        self._errors = {
            name: deque(maxlen=self.error_window) for name in self._members
        }
        self._count = 0

    def state_dict(self) -> dict:
        return {
            "members": {
                name: member.state_dict() for name, member in self._members.items()
            },
            "errors": {name: list(errs) for name, errs in self._errors.items()},
            "count": self._count,
        }

    def load_state(self, state: dict) -> None:
        for name, member in self._members.items():
            member.load_state(state["members"][name])
        for name in self._errors:
            self._errors[name] = deque(
                (float(e) for e in state["errors"][name]), maxlen=self.error_window
            )
        self._count = int(state["count"])
