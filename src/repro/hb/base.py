"""The common interface of History-Based predictors.

A predictor is an incremental one-step forecaster: feed it observations
with :meth:`~HistoryPredictor.update` and ask for the forecast of the
*next* observation with :meth:`~HistoryPredictor.forecast`.  Each
predictor declares how many observations it needs before it can produce
its first forecast (``min_history``).
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable

from repro.core.errors import PredictionError


class HistoryPredictor(abc.ABC):
    """Abstract base of one-step time-series forecasters."""

    #: Human-readable predictor name used in reports (e.g. "10-MA").
    name: str = "predictor"

    @property
    @abc.abstractmethod
    def min_history(self) -> int:
        """Observations needed before :meth:`forecast` is defined."""

    @property
    @abc.abstractmethod
    def n_observed(self) -> int:
        """Number of observations seen since the last reset."""

    @abc.abstractmethod
    def update(self, value: float) -> None:
        """Record one observation."""

    @abc.abstractmethod
    def forecast(self) -> float:
        """Forecast the next observation.

        Raises:
            PredictionError: if fewer than ``min_history`` observations
                have been recorded.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Discard all history, returning to the initial state."""

    @property
    def ready(self) -> bool:
        """True once enough history exists to forecast."""
        return self.n_observed >= self.min_history

    def update_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations, oldest first."""
        for value in values:
            self.update(value)

    def _require_ready(self) -> None:
        if not self.ready:
            raise PredictionError(
                f"{self.name} needs {self.min_history} observations, "
                f"has {self.n_observed}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, observed={self.n_observed})"


#: A zero-argument callable producing a fresh predictor instance.  The LSO
#: wrapper and the evaluation harness take factories so each trace (and
#: each restart after a level shift) starts from clean state.
PredictorFactory = Callable[[], HistoryPredictor]
