"""The common interface of History-Based predictors.

A predictor is an incremental one-step forecaster: feed it observations
with :meth:`~HistoryPredictor.update` and ask for the forecast of the
*next* observation with :meth:`~HistoryPredictor.forecast`.  Each
predictor declares how many observations it needs before it can produce
its first forecast (``min_history``).
"""

from __future__ import annotations

import abc
import copy
from collections.abc import Callable, Iterable
from typing import Any

from repro.core.errors import DataError, PredictionError


class HistoryPredictor(abc.ABC):
    """Abstract base of one-step time-series forecasters."""

    #: Human-readable predictor name used in reports (e.g. "10-MA").
    name: str = "predictor"

    @property
    @abc.abstractmethod
    def min_history(self) -> int:
        """Observations needed before :meth:`forecast` is defined."""

    @property
    @abc.abstractmethod
    def n_observed(self) -> int:
        """Number of observations seen since the last reset."""

    @abc.abstractmethod
    def update(self, value: float) -> None:
        """Record one observation."""

    @abc.abstractmethod
    def forecast(self) -> float:
        """Forecast the next observation.

        Raises:
            PredictionError: if fewer than ``min_history`` observations
                have been recorded.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Discard all history, returning to the initial state."""

    @property
    def ready(self) -> bool:
        """True once enough history exists to forecast."""
        return self.n_observed >= self.min_history

    def update_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations, oldest first — transactionally.

        The batch is applied copy-validate-commit: updates run against a
        staged copy of the predictor, and the live state is only swapped
        in once every sample has been absorbed.  A failure part-way
        through — a sample the predictor rejects, or an iterable that
        raises mid-iteration — therefore leaves the predictor exactly as
        it was, so a corrupt ingest batch can be repaired and retried.

        Raises:
            DataError: when a sample is rejected, naming the failing
                batch index; the original exception rides along as
                ``__cause__``.
        """
        # Materialize first: a generator that raises mid-iteration must
        # not leave a half-applied batch behind.
        staged_values = list(values)
        if not staged_values:
            return
        staged = copy.deepcopy(self)
        for index, value in enumerate(staged_values):
            try:
                staged.update(value)
            except Exception as exc:
                raise DataError(
                    f"{self.name}: batch update failed at index {index} "
                    f"of {len(staged_values)} (value {value!r}): {exc}"
                ) from exc
        self._adopt(staged)

    def _adopt(self, other: "HistoryPredictor") -> None:
        """Take over ``other``'s state (the commit step of update_many)."""
        self.__dict__.clear()
        self.__dict__.update(other.__dict__)

    def state_dict(self) -> dict[str, Any]:
        """The predictor's exact state as a JSON-serializable dict.

        Together with the constructor arguments (which the caller owns),
        the returned dict fully determines future forecasts:
        ``load_state(state_dict())`` on a freshly constructed twin
        reproduces the predictor bit-for-bit.  Used by the online
        serving layer for snapshot/restore durability.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state_dict()"
        )

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`.

        Must be called on a predictor constructed with the same
        parameters as the one that produced the snapshot.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support load_state()"
        )

    def _require_ready(self) -> None:
        if not self.ready:
            raise PredictionError(
                f"{self.name} needs {self.min_history} observations, "
                f"has {self.n_observed}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, observed={self.n_observed})"


#: A zero-argument callable producing a fresh predictor instance.  The LSO
#: wrapper and the evaluation harness take factories so each trace (and
#: each restart after a level shift) starts from clean state.
PredictorFactory = Callable[[], HistoryPredictor]
