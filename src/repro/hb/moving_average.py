"""The ``n``-order Moving Average predictor (paper Section 5.1.1).

``X_hat[i+1] = mean(X[i-n+1 .. i])``

A small ``n`` cannot smooth measurement noise; a large ``n`` adapts
slowly to non-stationarities — the trade-off the paper's Fig. 16
explores (and that the LSO heuristics largely dissolve).
"""

from __future__ import annotations

from collections import deque

from repro.hb.base import HistoryPredictor


class MovingAverage(HistoryPredictor):
    """One-step ``n``-MA forecaster.

    Args:
        order: window length ``n``; the forecast is the mean of the last
            ``n`` observations.  ``order=1`` is the "last value"
            predictor the paper calls 1-MA.
    """

    def __init__(self, order: int = 10) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self.name = f"{order}-MA"
        self._window: deque[float] = deque(maxlen=order)
        self._count = 0

    @property
    def min_history(self) -> int:
        """MA can forecast from its first observation (partial window)."""
        return 1

    @property
    def n_observed(self) -> int:
        return self._count

    def update(self, value: float) -> None:
        self._window.append(float(value))
        self._count += 1

    def forecast(self) -> float:
        self._require_ready()
        return sum(self._window) / len(self._window)

    def reset(self) -> None:
        self._window.clear()
        self._count = 0

    def state_dict(self) -> dict:
        return {"window": list(self._window), "count": self._count}

    def load_state(self, state: dict) -> None:
        self._window = deque((float(v) for v in state["window"]), maxlen=self.order)
        self._count = int(state["count"])
