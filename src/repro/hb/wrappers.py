"""The LSO wrapper: any base predictor + the paper's two heuristics.

On every new observation the wrapper re-runs outlier detection on its
clean history (samples since the last level shift), discards detected
outliers, then runs level-shift detection; upon a shift it drops all
history before the shift point and restarts the base predictor from the
post-shift samples.  The base predictor state is rebuilt by replaying the
clean history, which keeps restarts and outlier removals exactly
consistent (histories are short — the paper's traces have 150 epochs —
so the replay cost is negligible).
"""

from __future__ import annotations

from statistics import median

from repro.core.errors import DataError, PredictionError
from repro.hb.base import HistoryPredictor, PredictorFactory
from repro.hb.lso import (
    LsoConfig,
    detect_level_shift,
    detect_outliers,
    relative_difference,
)


class LsoPredictor(HistoryPredictor):
    """A base HB predictor guarded by Level-Shift and Outlier detection.

    Args:
        factory: produces fresh instances of the base predictor (one per
            restart).
        config: LSO thresholds; defaults to the paper's ``χ=0.3, ψ=0.4``.
        harden: apply the two implementation hardenings on top of the
            paper's heuristics — quarantining a suspect trailing sample
            from the base predictor, and clamping forecasts to the
            observed history range.  ``False`` gives the paper-literal
            wrapper (used by the ablation benchmarks).

    Attributes:
        n_level_shifts: level shifts detected so far (diagnostics).
        n_outliers: outliers discarded so far (diagnostics).
    """

    def __init__(
        self,
        factory: PredictorFactory,
        config: LsoConfig | None = None,
        harden: bool = True,
    ) -> None:
        self._factory = factory
        self._config = config or LsoConfig()
        self.harden = harden
        self._base = factory()
        self.name = f"{self._base.name}-LSO"
        self._history: list[float] = []
        self._count = 0
        self.n_level_shifts = 0
        self.n_outliers = 0

    @property
    def min_history(self) -> int:
        return self._base.min_history

    @property
    def n_observed(self) -> int:
        return self._count

    @property
    def clean_history(self) -> tuple[float, ...]:
        """The retained history: post-shift samples, outliers removed."""
        return tuple(self._history)

    def update(self, value: float) -> None:
        value = float(value)
        if value <= 0:
            raise DataError(
                f"throughput observations must be positive, got {value} "
                "(a zero/outage epoch — discard or flag it before ingest)"
            )
        self._count += 1
        self._history.append(value)

        outliers = detect_outliers(self._history, self._config)
        if outliers:
            self.n_outliers += len(outliers)
            self._history = [
                x for k, x in enumerate(self._history) if k not in set(outliers)
            ]

        shift = detect_level_shift(self._history, self._config)
        if shift is not None:
            self.n_level_shifts += 1
            self._history = self._history[shift:]

        self._replay()

    #: Forecasts are clamped into [min/2, max*2] of the clean history: a
    #: forecast outside the range ever observed on the path is predictor
    #: overshoot (e.g. a Holt-Winters trend extrapolating through zero
    #: after a sharp dip), not information.
    RANGE_CLAMP_FACTOR = 2.0

    def forecast(self) -> float:
        if not self._base.ready:
            raise PredictionError(
                f"{self.name} needs {self.min_history} clean observations, "
                f"has {len(self._history)}"
            )
        raw = self._base.forecast()
        if not self.harden:
            return raw
        low = min(self._history) / self.RANGE_CLAMP_FACTOR
        high = max(self._history) * self.RANGE_CLAMP_FACTOR
        return min(max(raw, low), high)

    @property
    def ready(self) -> bool:
        return self._base.ready

    def reset(self) -> None:
        self._base = self._factory()
        self._history = []
        self._count = 0
        self.n_level_shifts = 0
        self.n_outliers = 0

    def _replay(self) -> None:
        """Rebuild the base predictor from the current clean history.

        The newest sample cannot be judged by the outlier rule yet (it
        may be the start of a level shift).  If it deviates from the
        history median beyond the outlier threshold it is *quarantined*:
        kept in the history for future shift/outlier decisions, but not
        fed to the base predictor until the next sample disambiguates
        it.  This keeps one isolated outlier from polluting exactly one
        forecast.
        """
        feed = self._history
        if self.harden and len(feed) >= 3:
            last = feed[-1]
            med = median(feed)
            if relative_difference(last, med) > self._config.outlier_threshold:
                feed = feed[:-1]
        self._base = self._factory()
        # Plain loop, not update_many: the base is freshly built and the
        # feed already validated, so the batch API's copy-validate-commit
        # staging would only add a deepcopy to this per-update hot path.
        for sample in feed:
            self._base.update(sample)

    def state_dict(self) -> dict:
        return {
            "history": list(self._history),
            "count": self._count,
            "n_level_shifts": self.n_level_shifts,
            "n_outliers": self.n_outliers,
        }

    def load_state(self, state: dict) -> None:
        self._history = [float(v) for v in state["history"]]
        self._count = int(state["count"])
        self.n_level_shifts = int(state["n_level_shifts"])
        self.n_outliers = int(state["n_outliers"])
        # The base predictor is a pure function of the clean history, so
        # replaying it restores the wrapper bit-for-bit.
        self._replay()
