"""An autoregressive (AR) predictor — the paper's "more complex linear
predictors" extension.

The paper declines to evaluate ARMA/ARIMA because fitting their
coefficients needs more history than its applications have (Section 5),
but names them as future work.  This predictor is the practical middle
ground: an AR(p) model whose coefficients are re-fit by least squares
over the available history on every update, falling back to the sample
mean while the history is shorter than ``2p + 2`` samples.

It slots into the same :class:`~repro.hb.base.HistoryPredictor`
interface, so it can be LSO-wrapped and run through every HB analysis.
"""

from __future__ import annotations

import numpy as np

from repro.hb.base import HistoryPredictor


class AutoRegressive(HistoryPredictor):
    """One-step AR(p) forecaster with on-line least-squares fitting.

    Args:
        order: the AR order ``p``.
        max_history: number of trailing samples used for fitting
            (bounds the per-update cost).
        ridge: Tikhonov regularization strength for the normal
            equations — keeps the fit stable on short or near-constant
            histories.
    """

    def __init__(self, order: int = 3, max_history: int = 64, ridge: float = 1e-3) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if max_history < 2 * order + 2:
            raise ValueError(
                f"max_history must be at least 2*order + 2, got {max_history}"
            )
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.order = order
        self.max_history = max_history
        self.ridge = ridge
        self.name = f"AR({order})"
        self._history: list[float] = []
        self._count = 0

    @property
    def min_history(self) -> int:
        return 1

    @property
    def n_observed(self) -> int:
        return self._count

    def update(self, value: float) -> None:
        self._history.append(float(value))
        if len(self._history) > self.max_history:
            self._history.pop(0)
        self._count += 1

    def forecast(self) -> float:
        self._require_ready()
        history = np.asarray(self._history)
        if len(history) < 2 * self.order + 2:
            return float(history.mean())

        # Fit x[t] = c + sum_i a_i x[t-i] by ridge-regularized least
        # squares over the retained window.
        p = self.order
        rows = len(history) - p
        design = np.ones((rows, p + 1))
        for i in range(p):
            design[:, i + 1] = history[p - 1 - i : len(history) - 1 - i]
        targets = history[p:]
        gram = design.T @ design + self.ridge * np.eye(p + 1)
        coeffs = np.linalg.solve(gram, design.T @ targets)

        lags = history[-1 : -p - 1 : -1]
        prediction = float(coeffs[0] + coeffs[1:] @ lags)
        # An AR fit can extrapolate through zero on a falling edge; fall
        # back to the recent mean rather than forecast a non-positive
        # throughput.
        if prediction <= 0:
            return float(history[-p:].mean())
        return prediction

    def reset(self) -> None:
        self._history = []
        self._count = 0

    def state_dict(self) -> dict:
        return {"history": list(self._history), "count": self._count}

    def load_state(self, state: dict) -> None:
        self._history = [float(v) for v in state["history"]]
        self._count = int(state["count"])
