"""The EWMA predictor (paper Section 5.1.2).

``X_hat[i+1] = alpha * X[i] + (1 - alpha) * X_hat[i]``

initialised with ``X_hat[1] = X[0]``.  A higher ``alpha`` tracks the last
sample closely (no smoothing); a lower ``alpha`` smooths but adapts
slowly.
"""

from __future__ import annotations

from repro.hb.base import HistoryPredictor


class Ewma(HistoryPredictor):
    """One-step exponentially-weighted moving-average forecaster.

    Args:
        alpha: weight of the most recent observation, in (0, 1).
    """

    def __init__(self, alpha: float = 0.8) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.name = f"{alpha:g}-EWMA"
        self._estimate: float | None = None
        self._count = 0

    @property
    def min_history(self) -> int:
        return 1

    @property
    def n_observed(self) -> int:
        return self._count

    def update(self, value: float) -> None:
        value = float(value)
        if self._estimate is None:
            self._estimate = value
        else:
            self._estimate = self.alpha * value + (1.0 - self.alpha) * self._estimate
        self._count += 1

    def forecast(self) -> float:
        self._require_ready()
        assert self._estimate is not None
        return self._estimate

    def reset(self) -> None:
        self._estimate = None
        self._count = 0

    def state_dict(self) -> dict:
        return {"estimate": self._estimate, "count": self._count}

    def load_state(self, state: dict) -> None:
        estimate = state["estimate"]
        self._estimate = None if estimate is None else float(estimate)
        self._count = int(state["count"])
