"""A hybrid FB + HB predictor — the paper's primary future-work item.

    "In future work, it would be interesting to examine hybrid
    predictors, which rely on TCP models as well as on recent history."
    (Section 7)

:class:`HybridPredictor` implements the natural design:

* with **no usable history** it returns the Formula-Based prediction —
  the only information available before the first transfers;
* once history exists, it learns the FB predictor's *multiplicative
  bias* on this path (the paper shows FB errors are persistent and
  path-specific — overestimation on congested paths, occasionally
  underestimation) as an EWMA of ``R / R_hat_FB`` and corrects the
  fresh FB prediction with it;
* the final forecast blends the bias-corrected FB prediction with the
  pure HB forecast, weighted by each component's *trailing accuracy* on
  this path (inverse mean absolute relative error) — whichever source
  has been predicting better lately dominates.

The FB input keeps the predictor responsive to measured path changes
(a fresh avail-bw drop moves the forecast immediately), while the HB
component supplies the level accuracy FB lacks.
"""

from __future__ import annotations

from repro.formulas.fb_predictor import FormulaBasedPredictor
from repro.formulas.params import PathEstimates
from repro.hb.base import HistoryPredictor, PredictorFactory
from repro.hb.wrappers import LsoPredictor


class HybridPredictor:
    """Blend of Eq. (3) FB prediction and an HB forecast.

    Unlike pure HB predictors, updates carry the epoch's a priori
    measurements alongside the realized throughput, so the predictor can
    track the FB bias.

    Args:
        fb: the Formula-Based predictor to correct.
        hb_factory: base HB predictor factory (wrapped in LSO).
        bias_alpha: EWMA weight for the FB-bias estimate.
        error_alpha: EWMA weight for the per-component trailing errors.
    """

    def __init__(
        self,
        fb: FormulaBasedPredictor,
        hb_factory: PredictorFactory,
        bias_alpha: float = 0.25,
        error_alpha: float = 0.3,
    ) -> None:
        if not 0.0 < bias_alpha <= 1.0:
            raise ValueError(f"bias_alpha must be in (0, 1], got {bias_alpha}")
        if not 0.0 < error_alpha <= 1.0:
            raise ValueError(f"error_alpha must be in (0, 1], got {error_alpha}")
        self.fb = fb
        self.bias_alpha = bias_alpha
        self.error_alpha = error_alpha
        self._hb: HistoryPredictor = LsoPredictor(hb_factory)
        self._fb_bias: float | None = None
        self._fb_error: float | None = None
        self._hb_error: float | None = None
        self._n_updates = 0

    @property
    def n_observed(self) -> int:
        """Epochs recorded so far."""
        return self._n_updates

    def update(self, estimates: PathEstimates, actual_mbps: float) -> None:
        """Record one completed transfer and its a priori measurements."""
        if actual_mbps <= 0:
            raise ValueError(f"actual_mbps must be positive, got {actual_mbps}")
        # Score both components on this epoch before absorbing it.
        corrected_fb = self._corrected_fb(estimates)
        self._fb_error = self._ewma_error(self._fb_error, corrected_fb, actual_mbps)
        if self._hb.ready:
            self._hb_error = self._ewma_error(
                self._hb_error, self._hb.forecast(), actual_mbps
            )

        fb_prediction = self.fb.predict(estimates)
        ratio = actual_mbps / fb_prediction
        if self._fb_bias is None:
            self._fb_bias = ratio
        else:
            self._fb_bias = (
                self.bias_alpha * ratio + (1.0 - self.bias_alpha) * self._fb_bias
            )
        self._hb.update(actual_mbps)
        self._n_updates += 1

    def _ewma_error(
        self, current: float | None, predicted: float, actual: float
    ) -> float:
        error = abs(predicted - actual) / min(predicted, actual)
        if current is None:
            return error
        return self.error_alpha * error + (1.0 - self.error_alpha) * current

    def _corrected_fb(self, estimates: PathEstimates) -> float:
        prediction = self.fb.predict(estimates)
        if self._fb_bias is not None:
            prediction *= self._fb_bias
        return prediction

    #: Error floor in the inverse-error weighting, so a lucky streak
    #: cannot hand one component all the weight.
    ERROR_FLOOR = 0.02

    def forecast(self, estimates: PathEstimates) -> float:
        """Predict the next transfer's throughput from fresh estimates.

        Works with zero history (falls back to pure FB).
        """
        fb_prediction = self._corrected_fb(estimates)
        if not self._hb.ready or self._hb_error is None:
            return fb_prediction
        hb_forecast = self._hb.forecast()
        # Precision weighting: inverse squared trailing error, the
        # optimal combination for independent unbiased estimators.
        fb_score = 1.0 / max(self._fb_error or 1.0, self.ERROR_FLOOR) ** 2
        hb_score = 1.0 / max(self._hb_error, self.ERROR_FLOOR) ** 2
        weight = hb_score / (hb_score + fb_score)
        return weight * hb_forecast + (1.0 - weight) * fb_prediction

    def forecast_or_fb(self, estimates: PathEstimates) -> float:
        """Alias making call sites explicit about the fallback."""
        return self.forecast(estimates)

    def reset(self) -> None:
        """Drop all learned state (path change)."""
        self._hb.reset()
        self._fb_bias = None
        self._fb_error = None
        self._hb_error = None
        self._n_updates = 0

    def __repr__(self) -> str:
        return (
            f"HybridPredictor(n={self._n_updates}, "
            f"bias={self._fb_bias if self._fb_bias is None else round(self._fb_bias, 3)})"
        )
