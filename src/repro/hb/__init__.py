"""History-Based (HB) TCP throughput prediction (paper Sections 5-6).

The predictors are incremental one-step forecasters over a history of
previous transfer throughputs on the same path:

* :class:`~repro.hb.moving_average.MovingAverage` — ``n``-MA.
* :class:`~repro.hb.ewma.Ewma` — exponentially weighted moving average.
* :class:`~repro.hb.holt_winters.HoltWinters` — non-seasonal
  Holt-Winters with level and trend components.
* :class:`~repro.hb.wrappers.LsoPredictor` — any of the above wrapped
  with the paper's Level-Shift and Outlier heuristics (Section 5.2):
  detected outliers are discarded from the history, and a detected level
  shift restarts the predictor from the shift point.

:func:`~repro.hb.evaluate.evaluate_predictor` walks a throughput
:class:`~repro.core.timeseries.TimeSeries` and produces the one-step
errors and RMSRE used by every HB figure of the paper.
"""

from repro.hb.autoregressive import AutoRegressive
from repro.hb.base import HistoryPredictor, PredictorFactory
from repro.hb.evaluate import (
    HbEvaluation,
    active_eval_cache,
    evaluate_predictor,
    set_active_eval_cache,
)
from repro.hb.ewma import Ewma
from repro.hb.hybrid import HybridPredictor
from repro.hb.holt_winters import HoltWinters
from repro.hb.lso import (
    DEFAULT_LEVEL_SHIFT_THRESHOLD,
    DEFAULT_OUTLIER_THRESHOLD,
    LsoConfig,
    detect_level_shift,
    detect_outliers,
)
from repro.hb.moving_average import MovingAverage
from repro.hb.nws import AdaptiveEnsemble
from repro.hb.streaming import (
    BASE_PREDICTORS,
    DEFAULT_SERVE_PREDICTORS,
    PredictorSpec,
    StreamingLso,
    StreamingPredictorState,
    offline_twin,
)
from repro.hb.vector_eval import ENV_HB_VECTOR, hb_vector_enabled, vector_walk
from repro.hb.wrappers import LsoPredictor

__all__ = [
    "ENV_HB_VECTOR",
    "AdaptiveEnsemble",
    "AutoRegressive",
    "BASE_PREDICTORS",
    "DEFAULT_LEVEL_SHIFT_THRESHOLD",
    "DEFAULT_OUTLIER_THRESHOLD",
    "DEFAULT_SERVE_PREDICTORS",
    "Ewma",
    "HybridPredictor",
    "HbEvaluation",
    "HistoryPredictor",
    "HoltWinters",
    "LsoConfig",
    "LsoPredictor",
    "MovingAverage",
    "PredictorFactory",
    "PredictorSpec",
    "StreamingLso",
    "StreamingPredictorState",
    "active_eval_cache",
    "detect_level_shift",
    "detect_outliers",
    "evaluate_predictor",
    "hb_vector_enabled",
    "offline_twin",
    "set_active_eval_cache",
    "vector_walk",
]
