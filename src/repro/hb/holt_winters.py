"""The non-seasonal Holt-Winters predictor (paper Section 5.1.3).

Maintains a smoothing component ``s`` (an EWMA of the sample values) and
a trend component ``t`` (an EWMA of consecutive-sample differences)::

    forecast[i] = s[i] + t[i]
    s[i+1] = alpha * X[i] + (1 - alpha) * forecast[i]
    t[i+1] = beta * (s[i+1] - s[i]) + (1 - beta) * t[i]

with initial values ``s = X[0]`` and ``t = X[1] - X[0]``, exactly as the
paper specifies.  Two observations are therefore required before the
first forecast.

Throughput is positive, but ``s + t`` can go negative after a sharp
drop (a strongly negative trend component).  The forecast is therefore
clamped: when ``s + t <= 0`` the level alone is used, and the level is
kept positive.  The clamped forecast is also what the next level update
smooths against, keeping the recursion consistent.
"""

from __future__ import annotations

from repro.hb.base import HistoryPredictor

#: Floor for clamped forecasts, far below any plausible throughput.
_MIN_FORECAST = 1e-9


class HoltWinters(HistoryPredictor):
    """One-step non-seasonal Holt-Winters forecaster.

    Args:
        alpha: level smoothing weight in (0, 1).  The paper finds
            ``alpha = 0.8`` close to optimal on its dataset.
        beta: trend smoothing weight in (0, 1); the paper uses 0.2 and
            reports low sensitivity.
    """

    def __init__(self, alpha: float = 0.8, beta: float = 0.2) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.alpha = alpha
        self.beta = beta
        self.name = f"{alpha:g}-HW"
        self._level: float | None = None
        self._trend: float | None = None
        self._first_value: float | None = None
        self._count = 0

    @property
    def min_history(self) -> int:
        """Two samples are needed to initialise the trend component."""
        return 2

    @property
    def n_observed(self) -> int:
        return self._count

    def update(self, value: float) -> None:
        value = float(value)
        if self._count == 0:
            self._first_value = value
        elif self._count == 1:
            assert self._first_value is not None
            self._level = value
            self._trend = value - self._first_value
        else:
            assert self._level is not None and self._trend is not None
            forecast = self._clamped_forecast()
            new_level = self.alpha * value + (1.0 - self.alpha) * forecast
            self._trend = (
                self.beta * (new_level - self._level) + (1.0 - self.beta) * self._trend
            )
            self._level = new_level
        self._count += 1

    def forecast(self) -> float:
        self._require_ready()
        return self._clamped_forecast()

    def _clamped_forecast(self) -> float:
        """``s + t``, falling back to the (positive) level when negative."""
        assert self._level is not None and self._trend is not None
        raw = self._level + self._trend
        if raw > 0:
            return raw
        return max(self._level, _MIN_FORECAST)

    def reset(self) -> None:
        self._level = None
        self._trend = None
        self._first_value = None
        self._count = 0

    def state_dict(self) -> dict:
        return {
            "level": self._level,
            "trend": self._trend,
            "first_value": self._first_value,
            "count": self._count,
        }

    def load_state(self, state: dict) -> None:
        def _opt(value: object) -> float | None:
            return None if value is None else float(value)  # type: ignore[arg-type]

        self._level = _opt(state["level"])
        self._trend = _opt(state["trend"])
        self._first_value = _opt(state["first_value"])
        self._count = int(state["count"])
