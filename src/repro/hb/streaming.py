"""Streaming predictor state: O(1)-amortised ingest for online serving.

The offline :class:`~repro.hb.wrappers.LsoPredictor` re-runs outlier
detection, level-shift detection, and a full base-predictor replay over
the entire since-last-shift history on **every** observation — fine for
a 150-epoch batch analysis, ruinous for a long-running service answering
thousands of ingest+predict requests per second.  This module provides
the streaming equivalent:

* :class:`StreamingLso` — the same LSO wrapper semantics with an
  incremental engine.  Each ingest does O(log n) bookkeeping (a sorted
  mirror of the clean history for exact medians) plus two O(1)
  prechecks that decide whether the expensive detectors can possibly
  fire; the full detectors and base-predictor rebuilds only run on the
  rare updates where an outlier or level shift is actually in play.
  Predictions are **bit-identical** to :class:`LsoPredictor` — the
  parity suite in ``tests/hb/test_streaming.py`` proves it against the
  walk-forward :func:`~repro.hb.evaluate.evaluate_predictor` on
  campaign traces.
* :class:`PredictorSpec` — a JSON-able description of one predictor
  configuration (base predictor by registry name, LSO on/off,
  thresholds), the unit of configuration for ``repro-serve``.
* :class:`StreamingPredictorState` — one path × one spec worth of live
  state: ``ingest(sample) -> prediction``, non-positive (outage)
  samples flagged instead of raised, and exact JSON snapshot/restore
  for restart durability.

Why the prechecks preserve bit-parity
-------------------------------------

*Outliers*: a sample is an outlier candidate only if its relative
difference from the history median exceeds ``ψ``.  The extreme values
of the history deviate at least as much as any other sample, so when
neither ``min`` nor ``max`` of the clean history deviates, the full
``detect_outliers`` pass would return nothing — it is skipped.

*Level shifts*: a shift at split ``k`` requires every prefix sample
below (above) every suffix sample.  The prefix always contains the
first two clean samples (``k >= 2``) and the suffix always contains the
last three (``k <= n-3``), so ``max(first two) < min(last three)`` (or
the decreasing mirror) is a necessary condition checked in O(1); the
full ``detect_level_shift`` scan only runs when it holds.

*Base predictor*: the offline wrapper rebuilds its base predictor from
scratch each update.  Because every predictor is a deterministic state
machine over its update sequence, feeding the base **incrementally**
with exactly the samples a rebuild would feed produces bit-identical
state; a real rebuild is only needed when the clean history mutates
non-append-wise (an already-fed sample removed as an outlier, or a
level shift truncating the history).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError, DataError, PredictionError
from repro.hb.autoregressive import AutoRegressive
from repro.hb.base import HistoryPredictor, PredictorFactory
from repro.hb.ewma import Ewma
from repro.hb.holt_winters import HoltWinters
from repro.hb.lso import (
    DEFAULT_LEVEL_SHIFT_THRESHOLD,
    DEFAULT_OUTLIER_THRESHOLD,
    LsoConfig,
    detect_level_shift,
    detect_outliers,
    relative_difference,
)
from repro.hb.moving_average import MovingAverage
from repro.hb.wrappers import LsoPredictor
from repro.obs import get_telemetry

__all__ = [
    "BASE_PREDICTORS",
    "DEFAULT_SERVE_PREDICTORS",
    "PredictorSpec",
    "StreamingLso",
    "StreamingPredictorState",
    "offline_twin",
]

#: Registry of base predictors constructible by name — the vocabulary of
#: :class:`PredictorSpec` and of the ``repro-serve`` ``--predictors``
#: flag.  All are O(1)-per-update state machines except ``ar3``, whose
#: *forecast* refits a small ridge regression over a bounded window.
BASE_PREDICTORS: dict[str, PredictorFactory] = {
    "last": lambda: MovingAverage(1),
    "ma5": lambda: MovingAverage(5),
    "ma10": lambda: MovingAverage(10),
    "ewma": lambda: Ewma(0.8),
    "hw": lambda: HoltWinters(0.8, 0.2),
    "ar3": lambda: AutoRegressive(3),
}

#: The predictor set ``repro-serve`` maintains per path by default.
DEFAULT_SERVE_PREDICTORS = ("last", "ma10", "ewma", "hw")


@dataclass(frozen=True)
class PredictorSpec:
    """One predictor configuration, JSON-able for snapshots.

    Attributes:
        predictor: base predictor registry name (see
            :data:`BASE_PREDICTORS`).
        lso: wrap the base predictor with the paper's Level-Shift and
            Outlier heuristics (the default, as in the paper's HB
            evaluation).
        harden: apply the implementation hardenings (trailing-sample
            quarantine, forecast range clamp); ignored when ``lso`` is
            off.
        level_shift_threshold: the LSO ``χ``.
        outlier_threshold: the LSO ``ψ``.
    """

    predictor: str = "ma10"
    lso: bool = True
    harden: bool = True
    level_shift_threshold: float = DEFAULT_LEVEL_SHIFT_THRESHOLD
    outlier_threshold: float = DEFAULT_OUTLIER_THRESHOLD

    def __post_init__(self) -> None:
        if self.predictor not in BASE_PREDICTORS:
            raise ConfigurationError(
                f"unknown predictor {self.predictor!r}; "
                f"choose from {sorted(BASE_PREDICTORS)}"
            )
        # Delegate threshold validation (must be positive).
        self.lso_config()

    def lso_config(self) -> LsoConfig:
        return LsoConfig(
            level_shift_threshold=self.level_shift_threshold,
            outlier_threshold=self.outlier_threshold,
        )

    def build(self) -> HistoryPredictor:
        """A fresh streaming predictor for this spec."""
        factory = BASE_PREDICTORS[self.predictor]
        if not self.lso:
            return factory()
        return StreamingLso(factory, self.lso_config(), harden=self.harden)

    def to_dict(self) -> dict[str, Any]:
        return {
            "predictor": self.predictor,
            "lso": self.lso,
            "harden": self.harden,
            "level_shift_threshold": self.level_shift_threshold,
            "outlier_threshold": self.outlier_threshold,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "PredictorSpec":
        try:
            return cls(
                predictor=str(doc["predictor"]),
                lso=bool(doc.get("lso", True)),
                harden=bool(doc.get("harden", True)),
                level_shift_threshold=float(
                    doc.get("level_shift_threshold", DEFAULT_LEVEL_SHIFT_THRESHOLD)
                ),
                outlier_threshold=float(
                    doc.get("outlier_threshold", DEFAULT_OUTLIER_THRESHOLD)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed predictor spec {doc!r}: {exc}") from exc


class StreamingLso(HistoryPredictor):
    """Incremental twin of :class:`~repro.hb.wrappers.LsoPredictor`.

    Same constructor, same observable behaviour (forecasts, diagnostics,
    raised errors), different cost model: amortised O(1) per update
    instead of a full detection + replay pass over the clean history.

    State is exactly a function of ``(clean history, count, shift and
    outlier tallies)`` — the same invariant the offline wrapper has — so
    snapshots are interchangeable between the two implementations.
    """

    RANGE_CLAMP_FACTOR = LsoPredictor.RANGE_CLAMP_FACTOR

    def __init__(
        self,
        factory: PredictorFactory,
        config: LsoConfig | None = None,
        harden: bool = True,
    ) -> None:
        self._factory = factory
        self._config = config or LsoConfig()
        self.harden = harden
        self._base = factory()
        self.name = f"{self._base.name}-LSO"
        self._history: list[float] = []
        self._sorted: list[float] = []  # sorted mirror of _history
        self._fed = 0  # length of the _history prefix fed to _base
        self._count = 0
        self.n_level_shifts = 0
        self.n_outliers = 0

    # -- HistoryPredictor surface ---------------------------------------

    @property
    def min_history(self) -> int:
        return self._base.min_history

    @property
    def n_observed(self) -> int:
        return self._count

    @property
    def ready(self) -> bool:
        return self._base.ready

    @property
    def clean_history(self) -> tuple[float, ...]:
        """The retained history: post-shift samples, outliers removed."""
        return tuple(self._history)

    def _median(self) -> float:
        """Exact median of the clean history (matches statistics.median)."""
        ordered = self._sorted
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    def update(self, value: float) -> None:
        value = float(value)
        if value <= 0:
            raise DataError(
                f"throughput observations must be positive, got {value} "
                "(a zero/outage epoch — discard or flag it before ingest)"
            )
        self._count += 1
        history = self._history
        history.append(value)
        insort(self._sorted, value)
        rebuild = False

        # Outlier precheck: if neither extreme of the clean history
        # deviates from the median beyond psi, no sample does.
        if len(history) >= 2:
            med = self._median()
            psi = self._config.outlier_threshold
            if (
                relative_difference(self._sorted[0], med) > psi
                or relative_difference(self._sorted[-1], med) > psi
            ):
                outliers = detect_outliers(history, self._config)
                if outliers:
                    self.n_outliers += len(outliers)
                    if outliers[0] < self._fed:
                        # An already-fed sample is being discarded: the
                        # base predictor must be rebuilt from scratch.
                        rebuild = True
                    removed = [history[k] for k in outliers]
                    flagged = set(outliers)
                    history = self._history = [
                        x for k, x in enumerate(history) if k not in flagged
                    ]
                    ordered = self._sorted
                    for sample in removed:
                        del ordered[bisect_left(ordered, sample)]

        # Level-shift precheck: a split k in [2, n-3] keeps the first
        # two samples in the prefix and the last three in the suffix,
        # so full separation requires one of these O(1) conditions.
        n = len(history)
        if n >= 5:
            lo3 = min(history[-3], history[-2], history[-1])
            hi3 = max(history[-3], history[-2], history[-1])
            first_lo = min(history[0], history[1])
            first_hi = max(history[0], history[1])
            if first_hi < lo3 or first_lo > hi3:
                shift = detect_level_shift(history, self._config)
                if shift is not None:
                    self.n_level_shifts += 1
                    history = self._history = history[shift:]
                    self._sorted = sorted(history)
                    rebuild = True

        self._feed_base(rebuild)

    def _feed_target(self) -> int:
        """How many history samples the base predictor should hold.

        Mirrors the offline wrapper's quarantine rule: a trailing sample
        deviating from the history median beyond psi is withheld from
        the base predictor until the next sample disambiguates it.
        """
        target = len(self._history)
        if self.harden and target >= 3:
            med = self._median()
            last = self._history[-1]
            if relative_difference(last, med) > self._config.outlier_threshold:
                target -= 1
        return target

    def _feed_base(self, rebuild: bool) -> None:
        target = self._feed_target()
        if rebuild or target < self._fed:
            base = self._base = self._factory()
            for sample in self._history[:target]:
                base.update(sample)
        else:
            base = self._base
            for sample in self._history[self._fed : target]:
                base.update(sample)
        self._fed = target

    def forecast(self) -> float:
        if not self._base.ready:
            raise PredictionError(
                f"{self.name} needs {self.min_history} clean observations, "
                f"has {len(self._history)}"
            )
        raw = self._base.forecast()
        if not self.harden:
            return raw
        low = self._sorted[0] / self.RANGE_CLAMP_FACTOR
        high = self._sorted[-1] * self.RANGE_CLAMP_FACTOR
        return min(max(raw, low), high)

    def reset(self) -> None:
        self._base = self._factory()
        self._history = []
        self._sorted = []
        self._fed = 0
        self._count = 0
        self.n_level_shifts = 0
        self.n_outliers = 0

    # -- snapshot / restore ----------------------------------------------

    def state_dict(self) -> dict:
        return {
            "history": list(self._history),
            "count": self._count,
            "n_level_shifts": self.n_level_shifts,
            "n_outliers": self.n_outliers,
        }

    def load_state(self, state: dict) -> None:
        self._history = [float(v) for v in state["history"]]
        self._sorted = sorted(self._history)
        self._count = int(state["count"])
        self.n_level_shifts = int(state["n_level_shifts"])
        self.n_outliers = int(state["n_outliers"])
        self._fed = 0
        self._feed_base(rebuild=True)


class StreamingPredictorState:
    """One path × one :class:`PredictorSpec` of live service state.

    The service-facing contract differs from the library predictors in
    one deliberate way: a non-positive or non-finite throughput sample
    (an outage epoch, a client bug) is **flagged and skipped** — counted
    in ``n_invalid`` and the ``hb.invalid_samples`` telemetry counter —
    rather than raised, because one bad sample must not take down an
    ingest stream or poison the path's history.

    Attributes:
        spec: the predictor configuration.
        n_invalid: invalid samples flagged (and skipped) so far.
    """

    __slots__ = ("spec", "n_invalid", "_predictor")

    def __init__(
        self, spec: PredictorSpec, _predictor: HistoryPredictor | None = None
    ) -> None:
        self.spec = spec
        self.n_invalid = 0
        self._predictor = _predictor if _predictor is not None else spec.build()

    @property
    def n_observed(self) -> int:
        """Valid samples absorbed since the state was created."""
        return self._predictor.n_observed

    @property
    def ready(self) -> bool:
        return self._predictor.ready

    @property
    def n_level_shifts(self) -> int:
        """Cumulative LSO level-shift detections (0 for bare predictors).

        Cheap enough for per-sample reads: the quality tracker checks it
        after every ingest to reset error windows at shift boundaries.
        """
        predictor = self._predictor
        if isinstance(predictor, (StreamingLso, LsoPredictor)):
            return predictor.n_level_shifts
        return 0

    def ingest(self, value: float) -> float | None:
        """Absorb one sample; return the forecast for the next epoch.

        Returns ``None`` while the predictor lacks the history to
        forecast.  Invalid (non-positive / non-finite) samples are
        flagged, skipped, and leave the prediction unchanged.
        """
        value = float(value)
        if not math.isfinite(value) or value <= 0:
            self.n_invalid += 1
            get_telemetry().counter("hb.invalid_samples").inc()
            return self.prediction()
        self._predictor.update(value)
        return self.prediction()

    def prediction(self) -> float | None:
        """The current one-step forecast, or ``None`` if not ready."""
        if not self._predictor.ready:
            return None
        return self._predictor.forecast()

    def diagnostics(self) -> dict[str, Any]:
        """Counters useful in service responses and state listings."""
        info: dict[str, Any] = {
            "n_observed": self.n_observed,
            "n_invalid": self.n_invalid,
            "ready": self.ready,
        }
        predictor = self._predictor
        if isinstance(predictor, (StreamingLso, LsoPredictor)):
            info["n_level_shifts"] = predictor.n_level_shifts
            info["n_outliers"] = predictor.n_outliers
            info["clean_history_len"] = len(predictor.clean_history)
        return info

    # -- snapshot / restore ----------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The full state as a JSON-serializable dict."""
        return {
            "spec": self.spec.to_dict(),
            "n_invalid": self.n_invalid,
            "state": self._predictor.state_dict(),
        }

    @classmethod
    def restore(cls, doc: dict[str, Any]) -> "StreamingPredictorState":
        """Rebuild a state captured by :meth:`snapshot`, bit-for-bit."""
        try:
            spec = PredictorSpec.from_dict(doc["spec"])
            state = doc["state"]
            n_invalid = int(doc.get("n_invalid", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed predictor snapshot: {exc}") from exc
        restored = cls(spec)
        restored._predictor.load_state(state)
        restored.n_invalid = n_invalid
        return restored


def offline_twin(spec: PredictorSpec) -> PredictorFactory:
    """The walk-forward factory equivalent to a spec's streaming build.

    Parity tests (and anyone cross-checking the service against the
    paper's evaluation) use this to construct the *offline* predictor —
    :class:`LsoPredictor` instead of :class:`StreamingLso` — with the
    same base predictor and thresholds.
    """
    factory = BASE_PREDICTORS[spec.predictor]
    if not spec.lso:
        return factory
    return lambda: LsoPredictor(factory, spec.lso_config(), harden=spec.harden)
