"""One-step evaluation of HB predictors over throughput traces.

:func:`evaluate_predictor` performs the walk-forward evaluation behind
every HB figure of the paper: at each epoch the predictor (built fresh
for the trace) forecasts the next throughput from the history so far,
the relative error (Eq. 4) is recorded, and the trace's accuracy is
summarised with RMSRE (Eq. 5).

Two engines produce those numbers:

* the **scalar oracle** — a per-epoch Python loop calling the
  predictor's ``forecast()``/``update()`` directly; and
* the **vector walk** (:mod:`repro.hb.vector_eval`) — array recurrences
  for the registered predictor families, bit-identical to the oracle
  and dispatched by default.  ``REPRO_HB_VECTOR=0`` pins the oracle.

:func:`lso_segmentation` re-runs the paper's LSO heuristics over a whole
trace and reports the final outlier indices and stationary segments —
what Section 6.1.3 needs to compute a trace's CoV (weighted across
stationary periods, outliers excluded) and to exclude outliers from the
RMSRE of Fig. 20.  It follows the same split: an incremental O(n) pass
with precheck-gated detector calls by default, the original
re-scan-everything loop as the oracle.

An evaluation cache (:mod:`repro.analysis.evalcache`) can be installed
with :func:`set_active_eval_cache`; :func:`evaluate_predictor` then
consults it before walking and records fresh results after.  The hook
lives here (rather than in the analysis layer) so cache activation does
not create an hb -> analysis import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Protocol

import numpy as np

from repro.core.errors import DataError
from repro.core.metrics import relative_error, rmsre, segmented_cov
from repro.core.timeseries import TimeSeries
from repro.hb.base import PredictorFactory
from repro.hb.lso import LsoConfig, detect_level_shift, detect_outliers
from repro.hb.vector_eval import (
    hb_vector_enabled,
    lso_segmentation_fast,
    vector_errors,
    vector_walk,
)
from repro.obs import get_telemetry


@dataclass(frozen=True)
class HbEvaluation:
    """Result of walking one predictor over one trace.

    Attributes:
        predictor_name: label of the evaluated predictor.
        series_name: label of the trace.
        predictions: per-epoch forecasts; NaN before the predictor had
            enough history.
        errors: per-epoch relative errors (Eq. 4); NaN where no forecast
            was made.
        outlier_indices: epochs flagged as outliers by the final LSO
            segmentation of the trace (empty when LSO is not used).
    """

    predictor_name: str
    series_name: str
    predictions: np.ndarray
    errors: np.ndarray
    outlier_indices: frozenset[int] = field(default_factory=frozenset)

    @property
    def valid_errors(self) -> np.ndarray:
        """All recorded errors (forecast epochs only)."""
        return self.errors[~np.isnan(self.errors)]

    def rmsre(self, exclude_outliers: bool = False) -> float:
        """Trace RMSRE (Eq. 5) over the forecast epochs.

        Args:
            exclude_outliers: drop epochs flagged as outliers, as the
                paper does when comparing RMSRE against CoV (Fig. 20).
        """
        mask = ~np.isnan(self.errors)
        if exclude_outliers and self.outlier_indices:
            keep = np.ones_like(mask)
            keep[list(self.outlier_indices)] = False
            mask &= keep
        errors = self.errors[mask]
        if errors.size == 0:
            raise DataError("no forecast epochs to compute RMSRE over")
        return rmsre(errors)

    def mean_absolute_error(self) -> float:
        """Mean |E| over the forecast epochs."""
        errors = self.valid_errors
        if errors.size == 0:
            raise DataError("no forecast epochs")
        return float(np.mean(np.abs(errors)))


class EvaluationCacheHook(Protocol):
    """What :func:`evaluate_predictor` asks of an installed cache."""

    def lookup(
        self,
        series: TimeSeries,
        predictor: object,
        lso_config: LsoConfig | None,
    ) -> "HbEvaluation | None":
        """A previously recorded evaluation, or None on a miss."""
        ...

    def record(
        self,
        series: TimeSeries,
        predictor: object,
        lso_config: LsoConfig | None,
        evaluation: "HbEvaluation",
    ) -> None:
        """Persist a freshly computed evaluation."""
        ...


_ACTIVE_EVAL_CACHE: EvaluationCacheHook | None = None


def set_active_eval_cache(
    cache: EvaluationCacheHook | None,
) -> EvaluationCacheHook | None:
    """Install (or clear, with ``None``) the process-wide evaluation cache.

    Returns the previously installed cache so callers can restore it.
    """
    global _ACTIVE_EVAL_CACHE
    previous = _ACTIVE_EVAL_CACHE
    _ACTIVE_EVAL_CACHE = cache
    return previous


def active_eval_cache() -> EvaluationCacheHook | None:
    """The currently installed evaluation cache, if any."""
    return _ACTIVE_EVAL_CACHE


def evaluate_predictor(
    series: TimeSeries,
    factory: PredictorFactory,
    lso_config: LsoConfig | None = None,
) -> HbEvaluation:
    """Walk-forward one-step evaluation of a predictor over a trace.

    Args:
        series: the throughput trace (values must be positive).
        factory: builds the predictor instance evaluated on this trace.
        lso_config: when given, the trace's final LSO segmentation is
            computed so outlier epochs can be excluded from RMSRE (used
            for Fig. 20).  This does not wrap the predictor in LSO — pass
            an :class:`~repro.hb.wrappers.LsoPredictor` factory for that.

    Returns:
        The per-epoch forecasts and errors.

    Raises:
        DataError: when the trace carries a non-positive sample — named
            by epoch, up front, before any predictor sees it.
    """
    values = series.values
    nonpositive = np.flatnonzero(values <= 0)
    if nonpositive.size:
        epoch = int(nonpositive[0])
        raise DataError(
            f"throughput must be positive, got {float(values[epoch])} "
            f"at epoch {epoch} of series {series.name!r}"
        )

    predictor = factory()
    name = getattr(predictor, "name", type(predictor).__name__)

    cache = _ACTIVE_EVAL_CACHE
    if cache is not None:
        cached = cache.lookup(series, predictor, lso_config)
        if cached is not None:
            return cached

    started = perf_counter()
    predictions = vector_walk(values, predictor) if hb_vector_enabled() else None
    if predictions is not None:
        errors = vector_errors(predictions, values)
    else:
        predictions, errors = _scalar_walk(values, predictor)
    elapsed = perf_counter() - started

    tele = get_telemetry()
    if tele.enabled:
        made = int(np.count_nonzero(~np.isnan(predictions)))
        if made:
            # One sample per walk (covering every forecast of the trace)
            # and one counter bump for all of them: the instrumented path
            # no longer pays per-epoch clock reads and handle lookups.
            tele.metrics.timer("predict.wall_s", predictor=name).observe(elapsed)
            tele.metrics.counter("predictions.made", predictor=name).inc(made)

    outliers: frozenset[int] = frozenset()
    if lso_config is not None:
        outliers = frozenset(lso_segmentation(values, lso_config).outlier_indices)

    evaluation = HbEvaluation(
        predictor_name=name,
        series_name=series.name,
        predictions=predictions,
        errors=errors,
        outlier_indices=outliers,
    )
    if cache is not None:
        cache.record(series, predictor, lso_config, evaluation)
    return evaluation


def _scalar_walk(
    values: np.ndarray, predictor: object
) -> tuple[np.ndarray, np.ndarray]:
    """The reference per-epoch loop — the oracle the vector walk must match."""
    n = len(values)
    predictions = np.full(n, np.nan)
    errors = np.full(n, np.nan)
    for i in range(n):
        value = float(values[i])
        if predictor.ready:
            forecast = predictor.forecast()
            predictions[i] = forecast
            errors[i] = relative_error(forecast, value)
        predictor.update(value)
    return predictions, errors


@dataclass(frozen=True)
class LsoSegmentation:
    """Final LSO structure of a trace.

    Attributes:
        outlier_indices: original epoch indices flagged as outliers.
        shift_indices: original epoch indices at which a level shift was
            detected (index of the first post-shift sample).
        segments: the stationary segments — values of consecutive
            non-outlier epochs between shift boundaries.
    """

    outlier_indices: tuple[int, ...]
    shift_indices: tuple[int, ...]
    segments: tuple[tuple[float, ...], ...]

    def weighted_cov(self) -> float:
        """Trace CoV per Section 6.1.3: segment CoVs weighted by length."""
        return segmented_cov([list(seg) for seg in self.segments])


def lso_segmentation(
    values: np.ndarray | list[float], config: LsoConfig | None = None
) -> LsoSegmentation:
    """Run the incremental LSO pass over a full trace.

    Replays the same online algorithm the :class:`LsoPredictor` uses,
    but keeps track of original indices so the caller learns *which*
    epochs were outliers and where the stationary segments lie.

    By default runs the O(n) incremental pass (sorted-mirror medians,
    precheck-gated detector calls); ``REPRO_HB_VECTOR=0`` selects the
    original quadratic re-scan loop, the oracle both must match.
    """
    config = config or LsoConfig()
    vals = np.asarray(values, dtype=float)
    if hb_vector_enabled():
        outlier_indices, shift_indices = lso_segmentation_fast(vals, config)
    else:
        outlier_indices, shift_indices = _segmentation_scalar(vals, config)
    return _assemble_segmentation(vals, outlier_indices, shift_indices)


def _segmentation_scalar(
    vals: np.ndarray, config: LsoConfig
) -> tuple[list[int], list[int]]:
    """The reference pass: both detectors over the full history, each epoch."""
    history: list[tuple[int, float]] = []  # (original index, value)
    outlier_indices: list[int] = []
    shift_indices: list[int] = []

    for idx, raw in enumerate(vals):
        value = float(raw)
        if value <= 0:
            raise DataError(f"throughput must be positive, got {value} at epoch {idx}")
        history.append((idx, value))

        flagged = detect_outliers([v for _, v in history], config)
        if flagged:
            flagged_set = set(flagged)
            outlier_indices.extend(history[k][0] for k in flagged)
            history = [item for k, item in enumerate(history) if k not in flagged_set]

        shift = detect_level_shift([v for _, v in history], config)
        if shift is not None:
            shift_indices.append(history[shift][0])
            history = history[shift:]

    return outlier_indices, shift_indices


def _assemble_segmentation(
    vals: np.ndarray, outlier_indices: list[int], shift_indices: list[int]
) -> LsoSegmentation:
    """Build segments: non-outlier indices partitioned at shift boundaries."""
    outlier_set = set(outlier_indices)
    n = len(vals)
    boundaries = sorted(set(shift_indices))
    segments: list[tuple[float, ...]] = []
    start = 0
    for boundary in [*boundaries, n]:
        segment = tuple(
            float(vals[i]) for i in range(start, boundary) if i not in outlier_set
        )
        if segment:
            segments.append(segment)
        start = boundary

    return LsoSegmentation(
        outlier_indices=tuple(sorted(outlier_set)),
        shift_indices=tuple(boundaries),
        segments=tuple(segments),
    )
