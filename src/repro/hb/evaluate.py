"""One-step evaluation of HB predictors over throughput traces.

:func:`evaluate_predictor` performs the walk-forward evaluation behind
every HB figure of the paper: at each epoch the predictor (built fresh
for the trace) forecasts the next throughput from the history so far,
the relative error (Eq. 4) is recorded, and the trace's accuracy is
summarised with RMSRE (Eq. 5).

:func:`lso_segmentation` re-runs the paper's LSO heuristics over a whole
trace and reports the final outlier indices and stationary segments —
what Section 6.1.3 needs to compute a trace's CoV (weighted across
stationary periods, outliers excluded) and to exclude outliers from the
RMSRE of Fig. 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.errors import DataError
from repro.core.metrics import relative_error, rmsre, segmented_cov
from repro.core.timeseries import TimeSeries
from repro.hb.base import PredictorFactory
from repro.hb.lso import LsoConfig, detect_level_shift, detect_outliers
from repro.obs import get_telemetry


@dataclass(frozen=True)
class HbEvaluation:
    """Result of walking one predictor over one trace.

    Attributes:
        predictor_name: label of the evaluated predictor.
        series_name: label of the trace.
        predictions: per-epoch forecasts; NaN before the predictor had
            enough history.
        errors: per-epoch relative errors (Eq. 4); NaN where no forecast
            was made.
        outlier_indices: epochs flagged as outliers by the final LSO
            segmentation of the trace (empty when LSO is not used).
    """

    predictor_name: str
    series_name: str
    predictions: np.ndarray
    errors: np.ndarray
    outlier_indices: frozenset[int] = field(default_factory=frozenset)

    @property
    def valid_errors(self) -> np.ndarray:
        """All recorded errors (forecast epochs only)."""
        return self.errors[~np.isnan(self.errors)]

    def rmsre(self, exclude_outliers: bool = False) -> float:
        """Trace RMSRE (Eq. 5) over the forecast epochs.

        Args:
            exclude_outliers: drop epochs flagged as outliers, as the
                paper does when comparing RMSRE against CoV (Fig. 20).
        """
        mask = ~np.isnan(self.errors)
        if exclude_outliers and self.outlier_indices:
            keep = np.ones_like(mask)
            keep[list(self.outlier_indices)] = False
            mask &= keep
        errors = self.errors[mask]
        if errors.size == 0:
            raise DataError("no forecast epochs to compute RMSRE over")
        return rmsre(errors)

    def mean_absolute_error(self) -> float:
        """Mean |E| over the forecast epochs."""
        errors = self.valid_errors
        if errors.size == 0:
            raise DataError("no forecast epochs")
        return float(np.mean(np.abs(errors)))


def evaluate_predictor(
    series: TimeSeries,
    factory: PredictorFactory,
    lso_config: LsoConfig | None = None,
) -> HbEvaluation:
    """Walk-forward one-step evaluation of a predictor over a trace.

    Args:
        series: the throughput trace (values must be positive).
        factory: builds the predictor instance evaluated on this trace.
        lso_config: when given, the trace's final LSO segmentation is
            computed so outlier epochs can be excluded from RMSRE (used
            for Fig. 20).  This does not wrap the predictor in LSO — pass
            an :class:`~repro.hb.wrappers.LsoPredictor` factory for that.

    Returns:
        The per-epoch forecasts and errors.
    """
    predictor = factory()
    values = series.values
    n = len(series)
    predictions = np.full(n, np.nan)
    errors = np.full(n, np.nan)
    tele = get_telemetry()
    if tele.enabled:
        name = getattr(predictor, "name", type(predictor).__name__)
        wall = tele.metrics.timer("predict.wall_s", predictor=name)
        made = tele.metrics.counter("predictions.made", predictor=name)
        for i in range(n):
            if predictor.ready:
                started = perf_counter()
                forecast = predictor.forecast()
                wall.observe(perf_counter() - started)
                made.inc()
                predictions[i] = forecast
                errors[i] = relative_error(forecast, float(values[i]))
            predictor.update(float(values[i]))
    else:
        for i in range(n):
            if predictor.ready:
                forecast = predictor.forecast()
                predictions[i] = forecast
                errors[i] = relative_error(forecast, float(values[i]))
            predictor.update(float(values[i]))

    outliers: frozenset[int] = frozenset()
    if lso_config is not None:
        outliers = frozenset(lso_segmentation(values, lso_config).outlier_indices)

    return HbEvaluation(
        predictor_name=getattr(predictor, "name", type(predictor).__name__),
        series_name=series.name,
        predictions=predictions,
        errors=errors,
        outlier_indices=outliers,
    )


@dataclass(frozen=True)
class LsoSegmentation:
    """Final LSO structure of a trace.

    Attributes:
        outlier_indices: original epoch indices flagged as outliers.
        shift_indices: original epoch indices at which a level shift was
            detected (index of the first post-shift sample).
        segments: the stationary segments — values of consecutive
            non-outlier epochs between shift boundaries.
    """

    outlier_indices: tuple[int, ...]
    shift_indices: tuple[int, ...]
    segments: tuple[tuple[float, ...], ...]

    def weighted_cov(self) -> float:
        """Trace CoV per Section 6.1.3: segment CoVs weighted by length."""
        return segmented_cov([list(seg) for seg in self.segments])


def lso_segmentation(
    values: np.ndarray | list[float], config: LsoConfig | None = None
) -> LsoSegmentation:
    """Run the incremental LSO pass over a full trace.

    Replays the same online algorithm the :class:`LsoPredictor` uses,
    but keeps track of original indices so the caller learns *which*
    epochs were outliers and where the stationary segments lie.
    """
    config = config or LsoConfig()
    history: list[tuple[int, float]] = []  # (original index, value)
    outlier_indices: list[int] = []
    shift_indices: list[int] = []

    for idx, raw in enumerate(np.asarray(values, dtype=float)):
        value = float(raw)
        if value <= 0:
            raise DataError(f"throughput must be positive, got {value} at epoch {idx}")
        history.append((idx, value))

        flagged = detect_outliers([v for _, v in history], config)
        if flagged:
            flagged_set = set(flagged)
            outlier_indices.extend(history[k][0] for k in flagged)
            history = [item for k, item in enumerate(history) if k not in flagged_set]

        shift = detect_level_shift([v for _, v in history], config)
        if shift is not None:
            shift_indices.append(history[shift][0])
            history = history[shift:]

    # Build segments: non-outlier indices partitioned at shift boundaries.
    outlier_set = set(outlier_indices)
    n = len(np.asarray(values))
    boundaries = sorted(set(shift_indices))
    segments: list[tuple[float, ...]] = []
    start = 0
    vals = np.asarray(values, dtype=float)
    for boundary in [*boundaries, n]:
        segment = tuple(
            float(vals[i]) for i in range(start, boundary) if i not in outlier_set
        )
        if segment:
            segments.append(segment)
        start = boundary

    return LsoSegmentation(
        outlier_indices=tuple(sorted(outlier_set)),
        shift_indices=tuple(boundaries),
        segments=tuple(segments),
    )
