"""The revised PFTK model used in the paper's Section 4.2.9 (Fig. 13).

The paper cites Chen, Bu, Ammar, Towsley, *Comments on modeling TCP Reno
performance: a simple model and its empirical validation* (ToN 2005),
which corrects derivation errors in the original PFTK model.  The precise
corrected closed form is not reprinted in the paper; what the paper
establishes with Fig. 13 is that replacing the original Eq. (2) with the
corrected model changes FB prediction accuracy negligibly, because FB
errors are dominated by the *input* estimates (a priori RTT/loss), not by
model refinements.

Our revision applies the two corrections Chen et al. identify that are
visible at the closed-form level:

1. the duration of the fast-retransmit recovery period is accounted for
   (one extra RTT per triple-duplicate-ACK loss event), and
2. the timeout-probability weighting uses the full ``Q(p, W(p))`` term of
   the complete PFTK derivation instead of the
   ``min(1, sqrt(3bp/8))`` shortcut.

This keeps the revised predictor a strict refinement of Eq. (2) whose
difference is second-order — exactly the property Fig. 13 tests.
"""

from __future__ import annotations

import math

from repro.core.errors import PredictionError
from repro.core.units import BITS_PER_BYTE, MEGA
from repro.formulas.params import TcpParameters
from repro.formulas.pftk import backoff_factor, expected_window, timeout_probability


def pftk_revised_throughput(
    rtt_s: float,
    loss_rate: float,
    rto_s: float,
    tcp: TcpParameters | None = None,
) -> float:
    """Revised-PFTK throughput in Mbps.

    Same signature and units as
    :func:`repro.formulas.pftk.pftk_throughput`.

    Raises:
        PredictionError: if ``loss_rate`` is zero.
    """
    tcp = tcp or TcpParameters()
    if rtt_s <= 0:
        raise ValueError(f"rtt_s must be positive, got {rtt_s}")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
    if rto_s <= 0:
        raise ValueError(f"rto_s must be positive, got {rto_s}")
    if loss_rate == 0.0:
        raise PredictionError("revised PFTK model undefined for a lossless path")

    p = loss_rate
    b = tcp.ack_every
    w_p = expected_window(p, b)
    q = timeout_probability(p, w_p)

    # Correction (1): a fast-recovery round adds one RTT per congestion
    # avoidance cycle.  Correction (2): weight timeouts by Q(p, W(p)).
    fast_retransmit_term = rtt_s * (math.sqrt(2.0 * b * p / 3.0) + p)
    timeout_term = q * p * backoff_factor(p) * rto_s
    congestion_limited = 1.0 / (fast_retransmit_term + timeout_term)
    window_limited = tcp.max_window_segments / rtt_s
    segments_per_second = min(congestion_limited, window_limited)
    return segments_per_second * tcp.mss_bytes * BITS_PER_BYTE / MEGA
