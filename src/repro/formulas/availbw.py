"""Avail-bw based prediction for lossless paths (paper Section 3.1).

When the a priori probing sees no losses (``p_hat = 0``) the PFTK model
degenerates to ``W / T_hat``, which can be unrelated to the realized
throughput if ``W`` exceeds the path's bandwidth-delay product.  The
paper's Eq. (3) therefore predicts ``min(W / T_hat, A_hat)`` on lossless
paths, where ``A_hat`` is the measured available bandwidth.
"""

from __future__ import annotations

from repro.core.errors import PredictionError
from repro.core.units import BITS_PER_BYTE, MEGA
from repro.formulas.params import TcpParameters


def window_limit_mbps(rtt_s: float, tcp: TcpParameters | None = None) -> float:
    """The hard window-imposed throughput ceiling ``W / T`` in Mbps."""
    tcp = tcp or TcpParameters()
    if rtt_s <= 0:
        raise ValueError(f"rtt_s must be positive, got {rtt_s}")
    return tcp.max_window_bytes * BITS_PER_BYTE / rtt_s / MEGA


def availbw_prediction(
    rtt_s: float,
    availbw_mbps: float,
    tcp: TcpParameters | None = None,
) -> float:
    """Lossless-path FB prediction ``min(W / T_hat, A_hat)`` in Mbps.

    Args:
        rtt_s: a priori RTT ``T_hat`` in seconds.
        availbw_mbps: a priori avail-bw ``A_hat`` in Mbps.
        tcp: transfer parameters (provides ``W``).

    Raises:
        PredictionError: if no positive avail-bw estimate is supplied.
    """
    if availbw_mbps is None or availbw_mbps <= 0:
        raise PredictionError(
            "lossless-path prediction requires a positive avail-bw estimate"
        )
    return min(window_limit_mbps(rtt_s, tcp), availbw_mbps)


def is_window_limited(
    rtt_s: float,
    availbw_mbps: float,
    tcp: TcpParameters | None = None,
) -> bool:
    """True when ``W / T_hat < A_hat``, the paper's window-limited test.

    Window-limited flows do not attempt to saturate the path, and both
    Sections 4.2.8 and 6.1.5 show their throughput is far more
    predictable.
    """
    if availbw_mbps <= 0:
        raise ValueError(f"availbw_mbps must be positive, got {availbw_mbps}")
    return window_limit_mbps(rtt_s, tcp) < availbw_mbps
