"""The Mathis "square-root" TCP throughput model (paper Eq. (1)).

``E[R] = M / (T * sqrt(2 b p / 3))``

Accurate for bulk transfers whose losses are recovered by Fast Retransmit
(no timeouts) and that are not window-limited.  The paper uses it both as
the historical baseline for FB prediction (it is what RON's route
selection used) and to analyse how RTT/loss increases translate into
prediction error (Section 4.2.2).
"""

from __future__ import annotations

import math

from repro.core.errors import PredictionError
from repro.core.units import BITS_PER_BYTE, MEGA
from repro.formulas.params import TcpParameters


def mathis_throughput(
    rtt_s: float,
    loss_rate: float,
    tcp: TcpParameters | None = None,
) -> float:
    """Expected bulk TCP throughput in Mbps under the square-root model.

    Args:
        rtt_s: round-trip time ``T`` in seconds.
        loss_rate: packet loss rate ``p`` in (0, 1).
        tcp: transfer parameters; defaults to the paper's defaults.

    Raises:
        PredictionError: if ``loss_rate`` is zero — the square-root model
            diverges there; lossless paths need the avail-bw predictor.
        ValueError: if ``rtt_s`` is not positive or ``loss_rate`` outside
            ``[0, 1)``.
    """
    tcp = tcp or TcpParameters()
    if rtt_s <= 0:
        raise ValueError(f"rtt_s must be positive, got {rtt_s}")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
    if loss_rate == 0.0:
        raise PredictionError("square-root model undefined for a lossless path")
    segments_per_second = 1.0 / (
        rtt_s * math.sqrt(2.0 * tcp.ack_every * loss_rate / 3.0)
    )
    return segments_per_second * tcp.mss_bytes * BITS_PER_BYTE / MEGA
