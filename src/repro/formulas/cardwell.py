"""The Cardwell et al. slow-start model (paper Section 4.2.7).

The paper uses the result of Cardwell, Savage, Anderson (INFOCOM 2000)
to reason about when a transfer is long enough that its initial slow
start contributes negligibly to the average throughput::

    E[d_ss] = (1 - (1-p)^d) (1-p) / p + 1

where ``d`` is the total number of segments in the transfer, ``p`` the
loss rate, and ``E[d_ss]`` the expected number of segments sent during
the initial slow start (i.e. before the first loss).
"""

from __future__ import annotations

import math


def expected_slow_start_segments(total_segments: int, loss_rate: float) -> float:
    """Expected number of segments transferred during initial slow start.

    Args:
        total_segments: ``d``, the flow's total size in segments.
        loss_rate: ``p`` in [0, 1).

    For a lossless flow slow start only ends at the maximum window, so the
    model's answer is the whole transfer (``d``).
    """
    if total_segments < 1:
        raise ValueError(f"total_segments must be >= 1, got {total_segments}")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
    if loss_rate == 0.0:
        return float(total_segments)
    p = loss_rate
    d = total_segments
    expected = (1.0 - (1.0 - p) ** d) * (1.0 - p) / p + 1.0
    return min(expected, float(d))


def slow_start_fraction(total_segments: int, loss_rate: float) -> float:
    """Fraction of the transfer expected to happen during slow start."""
    return expected_slow_start_segments(total_segments, loss_rate) / total_segments


def slow_start_negligible(
    total_segments: int, loss_rate: float, threshold: float = 0.1
) -> bool:
    """True when slow start covers at most ``threshold`` of the transfer.

    The paper uses this criterion to decide whether the steady-state
    models (Mathis/PFTK) apply, or whether a short-transfer latency model
    is needed instead.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    return slow_start_fraction(total_segments, loss_rate) <= threshold


def slow_start_duration_rtts(segments_in_slow_start: float, ack_every: int = 2) -> float:
    """Approximate number of RTTs slow start takes to send ``n`` segments.

    With delayed ACKs the window grows by a factor ``gamma = 1 + 1/b``
    per RTT, so ``n`` segments take roughly ``log_gamma(n (gamma-1) + 1)``
    rounds (Cardwell et al., eq. for ``E[T_ss]`` without loss).
    """
    if segments_in_slow_start < 1:
        raise ValueError(
            f"segments_in_slow_start must be >= 1, got {segments_in_slow_start}"
        )
    if ack_every < 1:
        raise ValueError(f"ack_every must be >= 1, got {ack_every}")
    gamma = 1.0 + 1.0 / ack_every
    return math.log(segments_in_slow_start * (gamma - 1.0) + 1.0, gamma)


def expected_transfer_time_s(
    total_segments: int,
    rtt_s: float,
    loss_rate: float,
    steady_rate_mbps: float,
    mss_bytes: int = 1460,
    ack_every: int = 2,
    initial_window: float = 2.0,
) -> float:
    """Expected completion time of a fixed-size transfer.

    A Cardwell-style composite (the approach Arlitt et al. apply for
    short-transfer prediction, per the paper's Section 2): the first
    ``E[d_ss]`` segments travel in slow-start rounds of one RTT each,
    the remainder at the steady-state rate the long-flow models predict.

    Args:
        total_segments: transfer size ``d`` in segments.
        rtt_s: round-trip time the flow experiences.
        loss_rate: loss rate ``p`` (bounds the slow-start phase).
        steady_rate_mbps: post-slow-start throughput — typically a PFTK
            or avail-bw prediction from
            :class:`~repro.formulas.fb_predictor.FormulaBasedPredictor`.
        mss_bytes: segment size.
        ack_every: delayed-ACK factor ``b``.
        initial_window: slow start's initial window in segments.

    Returns:
        Expected transfer duration in seconds.
    """
    if rtt_s <= 0:
        raise ValueError(f"rtt_s must be positive, got {rtt_s}")
    if steady_rate_mbps <= 0:
        raise ValueError(
            f"steady_rate_mbps must be positive, got {steady_rate_mbps}"
        )
    if initial_window < 1:
        raise ValueError(f"initial_window must be >= 1, got {initial_window}")

    # Slow start cannot outrun the steady-state ceiling: cap it at the
    # window the steady rate corresponds to.
    ceiling_segments = max(
        initial_window, steady_rate_mbps * 1e6 * rtt_s / (mss_bytes * 8)
    )
    gamma = 1.0 + 1.0 / ack_every

    slow_start_segments = min(
        expected_slow_start_segments(total_segments, loss_rate),
        total_segments,
    )
    # Segments sent while the window grows from w1 to the ceiling.
    growth_budget = initial_window * (ceiling_segments * gamma / initial_window - 1.0) / (
        gamma - 1.0
    )
    ss_segments = min(slow_start_segments, max(growth_budget, initial_window))

    # Rounds to send ss_segments with geometric window growth.
    rounds = math.log(ss_segments * (gamma - 1.0) / initial_window + 1.0, gamma)
    slow_start_time = max(1.0, rounds) * rtt_s

    remaining = max(0.0, total_segments - ss_segments)
    steady_time = remaining * mss_bytes * 8 / (steady_rate_mbps * 1e6)
    return slow_start_time + steady_time


def expected_short_transfer_throughput_mbps(
    total_bytes: int,
    rtt_s: float,
    loss_rate: float,
    steady_rate_mbps: float,
    mss_bytes: int = 1460,
    ack_every: int = 2,
) -> float:
    """Throughput of a fixed-size transfer implied by the latency model.

    For small transfers this sits far below the steady-state rate (the
    slow-start penalty the paper's Section 1 notes makes short flows a
    different prediction problem); it converges to ``steady_rate_mbps``
    as the size grows.
    """
    if total_bytes < 1:
        raise ValueError(f"total_bytes must be >= 1, got {total_bytes}")
    segments = max(1, -(-total_bytes // mss_bytes))
    duration = expected_transfer_time_s(
        segments, rtt_s, loss_rate, steady_rate_mbps, mss_bytes, ack_every
    )
    return total_bytes * 8 / duration / 1e6
