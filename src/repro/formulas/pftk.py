"""The PFTK TCP throughput model (Padhye, Firoiu, Towsley, Kurose 2000).

Two variants are provided:

* :func:`pftk_throughput` — the approximate closed form the paper uses as
  its Eq. (2)::

      E[R] = min( M / (T sqrt(2bp/3)
                       + T0 min(1, sqrt(3bp/8)) p (1 + 32 p^2)),
                  W / T )

  We follow the paper's Eq. (2) verbatim.  (The original PFTK paper
  writes the timeout term as ``min(1, 3 sqrt(3bp/8))``; the factor-3
  variant is available through the ``timeout_factor`` argument.)

* :func:`pftk_full_throughput` — the full PFTK model (eqs. (30)-(32) of
  the original paper) with the expected window ``W(p)``, the timeout
  probability ``Q(p, w)``, and the backoff factor ``G(p)``, including the
  window-limited branch.

Both return throughput in Mbps for send rates expressed in segments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import PredictionError
from repro.core.units import BITS_PER_BYTE, MEGA
from repro.formulas.params import TcpParameters


def _validate(rtt_s: float, loss_rate: float, rto_s: float) -> None:
    if rtt_s <= 0:
        raise ValueError(f"rtt_s must be positive, got {rtt_s}")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
    if rto_s <= 0:
        raise ValueError(f"rto_s must be positive, got {rto_s}")


def _segments_to_mbps(segments_per_second: float, mss_bytes: int) -> float:
    return segments_per_second * mss_bytes * BITS_PER_BYTE / MEGA


def pftk_throughput(
    rtt_s: float,
    loss_rate: float,
    rto_s: float,
    tcp: TcpParameters | None = None,
    timeout_factor: float = 1.0,
) -> float:
    """Approximate PFTK throughput in Mbps (paper Eq. (2)).

    Args:
        rtt_s: round-trip time ``T`` in seconds.
        loss_rate: loss (congestion event) rate ``p`` in (0, 1).
        rto_s: retransmission timeout ``T0`` in seconds.
        tcp: transfer parameters (``M``, ``b``, ``W``).
        timeout_factor: multiplier inside the ``min(1, .)`` timeout term;
            1.0 matches the paper's Eq. (2), 3.0 matches the original
            PFTK publication.

    Raises:
        PredictionError: if ``loss_rate`` is zero (the model diverges; use
            the avail-bw predictor for lossless paths).
    """
    tcp = tcp or TcpParameters()
    _validate(rtt_s, loss_rate, rto_s)
    if loss_rate == 0.0:
        raise PredictionError("PFTK model undefined for a lossless path")

    b = tcp.ack_every
    p = loss_rate
    fast_retransmit_term = rtt_s * math.sqrt(2.0 * b * p / 3.0)
    timeout_term = (
        rto_s
        * min(1.0, timeout_factor * math.sqrt(3.0 * b * p / 8.0))
        * p
        * (1.0 + 32.0 * p * p)
    )
    congestion_limited = 1.0 / (fast_retransmit_term + timeout_term)
    window_limited = tcp.max_window_segments / rtt_s
    return _segments_to_mbps(min(congestion_limited, window_limited), tcp.mss_bytes)


def pftk_loss_for_throughput(
    throughput_mbps: float,
    rtt_s: float,
    rto_s: float,
    tcp: TcpParameters | None = None,
    p_bounds: tuple[float, float] = (1e-8, 0.49),
) -> float:
    """Invert the PFTK model: the loss rate yielding a given throughput.

    This is the AIMD loss-throughput duality used by the fluid path model
    (``repro.fastpath``): a saturating TCP flow drives the loss process to
    exactly the level at which its model throughput equals its bandwidth
    share.  Solved by bisection — the PFTK throughput is monotonically
    decreasing in ``p``.

    Args:
        throughput_mbps: the throughput the flow sustains.
        rtt_s: the RTT the flow experiences.
        rto_s: the retransmission timeout.
        tcp: transfer parameters.
        p_bounds: search bracket for the loss rate.

    Returns:
        The loss (congestion event) rate, clipped to ``p_bounds`` when the
        target throughput falls outside the model's range.
    """
    tcp = tcp or TcpParameters()
    if throughput_mbps <= 0:
        raise ValueError(f"throughput_mbps must be positive, got {throughput_mbps}")
    p_lo, p_hi = p_bounds
    # Throughput at the bracket ends (decreasing in p).
    if pftk_throughput(rtt_s, p_lo, rto_s, tcp) <= throughput_mbps:
        return p_lo
    if pftk_throughput(rtt_s, p_hi, rto_s, tcp) >= throughput_mbps:
        return p_hi
    for _ in range(80):
        p_mid = math.sqrt(p_lo * p_hi)  # geometric: p spans many decades
        if pftk_throughput(rtt_s, p_mid, rto_s, tcp) > throughput_mbps:
            p_lo = p_mid
        else:
            p_hi = p_mid
        if p_hi / p_lo < 1.0001:
            break
    return math.sqrt(p_lo * p_hi)


def pftk_throughput_array(
    rtt_s,
    loss_rate,
    rto_s,
    tcp: TcpParameters | None = None,
    timeout_factor: float = 1.0,
) -> np.ndarray:
    """:func:`pftk_throughput` over arrays (broadcasting), in Mbps.

    Bit-identical to the scalar form element by element: the scalar
    form's ``math.sqrt``/``min`` round exactly like ``np.sqrt``/
    ``np.minimum``, and both evaluate the same expression tree.  Loss
    rates must be strictly positive (the vector engine only calls this
    on its ``loss > 0`` subsets).
    """
    tcp = tcp or TcpParameters()
    b = tcp.ack_every
    p = loss_rate
    fast_retransmit_term = rtt_s * np.sqrt(2.0 * b * p / 3.0)
    timeout_term = (
        rto_s
        * np.minimum(1.0, timeout_factor * np.sqrt(3.0 * b * p / 8.0))
        * p
        * (1.0 + 32.0 * p * p)
    )
    congestion_limited = 1.0 / (fast_retransmit_term + timeout_term)
    window_limited = tcp.max_window_segments / rtt_s
    segments = np.minimum(congestion_limited, window_limited)
    return segments * tcp.mss_bytes * BITS_PER_BYTE / MEGA


def pftk_loss_for_throughput_array(
    throughput_mbps: np.ndarray,
    rtt_s: np.ndarray,
    rto_s: np.ndarray,
    tcp: TcpParameters | None = None,
    p_bounds: tuple[float, float] = (1e-8, 0.49),
) -> np.ndarray:
    """:func:`pftk_loss_for_throughput` over whole epoch batches.

    Replicates the scalar geometric bisection exactly, including its
    per-element early exit: an element leaves the active set the
    iteration after its bracket ratio drops below 1.0001, precisely
    when the scalar loop would ``break`` — so every element's bracket
    sees the same update sequence as a scalar call, and the result is
    bit-identical.
    """
    tcp = tcp or TcpParameters()
    target = np.asarray(throughput_mbps, dtype=np.float64)
    rtt = np.broadcast_to(np.asarray(rtt_s, dtype=np.float64), target.shape)
    rto = np.broadcast_to(np.asarray(rto_s, dtype=np.float64), target.shape)
    if target.size and float(target.min()) <= 0:
        raise ValueError("throughput_mbps must be positive")
    p_lo_bound, p_hi_bound = p_bounds
    out = np.empty_like(target)

    # Bracket-end shortcuts, exactly as the scalar form takes them.
    at_lo = pftk_throughput_array(rtt, p_lo_bound, rto, tcp) <= target
    at_hi = pftk_throughput_array(rtt, p_hi_bound, rto, tcp) >= target
    out[at_lo] = p_lo_bound
    out[at_hi & ~at_lo] = p_hi_bound

    pos = np.nonzero(~(at_lo | at_hi))[0]
    if pos.size:
        lo = np.full(pos.size, p_lo_bound)
        hi = np.full(pos.size, p_hi_bound)
        tgt = target[pos]
        r = rtt[pos]
        t0 = rto[pos]
        # Everything hoisted here is invariant across iterations (or a
        # scalar the left-associated expression evaluates first), so
        # computing it once is bit-neutral; the loop body below is
        # pftk_throughput_array's expression, inlined with ``mid`` as
        # the loss rate (the ``timeout_factor * `` multiply is dropped —
        # ``1.0 * x`` is an IEEE identity, and ``np.copyto`` writes the
        # same values ``np.where`` would select).
        fr_scale = 2.0 * tcp.ack_every
        to_scale = 3.0 * tcp.ack_every
        mss = float(tcp.mss_bytes)
        window_limited = tcp.max_window_segments / r
        remaining = True
        for _ in range(80):
            mid = np.sqrt(lo * hi)
            fast_retransmit_term = r * np.sqrt(fr_scale * mid / 3.0)
            timeout_term = (
                t0
                * np.minimum(1.0, np.sqrt(to_scale * mid / 8.0))
                * mid
                * (1.0 + 32.0 * mid * mid)
            )
            segments = np.minimum(
                1.0 / (fast_retransmit_term + timeout_term), window_limited
            )
            above = segments * mss * BITS_PER_BYTE / MEGA > tgt
            np.copyto(lo, mid, where=above)
            np.copyto(hi, mid, where=~above)
            keep = hi / lo >= 1.0001
            if keep.all():
                continue
            done = ~keep
            out[pos[done]] = np.sqrt(lo[done] * hi[done])
            if not keep.any():
                remaining = False
                break
            pos = pos[keep]
            lo = lo[keep]
            hi = hi[keep]
            tgt = tgt[keep]
            r = r[keep]
            t0 = t0[keep]
            window_limited = window_limited[keep]
        if remaining:
            # Elements still bracketed after 80 halvings, exactly as the
            # scalar loop leaves them.
            out[pos] = np.sqrt(lo * hi)
    return out


def expected_window(loss_rate: float, ack_every: int) -> float:
    """Expected congestion window ``W(p)`` in segments (PFTK eq. (13)).

    ``W(p) = (2+b)/(3b) + sqrt(8(1-p)/(3bp) + ((2+b)/(3b))^2)``
    """
    if not 0.0 < loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in (0, 1), got {loss_rate}")
    b = ack_every
    base = (2.0 + b) / (3.0 * b)
    return base + math.sqrt(8.0 * (1.0 - loss_rate) / (3.0 * b * loss_rate) + base * base)


def timeout_probability(loss_rate: float, window: float) -> float:
    """``Q(p, w)``: probability that a loss indication is a timeout.

    PFTK eq. (23): ``Q = min(1, (1 + (1-p)^3 (1 - (1-p)^(w-3)))
    / ((1 - (1-p)^w) / (1 - (1-p)^3)))``.  For windows of three segments
    or fewer every loss leads to a timeout.
    """
    if not 0.0 < loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in (0, 1), got {loss_rate}")
    if window < 1.0:
        raise ValueError(f"window must be >= 1 segment, got {window}")
    if window <= 3.0:
        return 1.0
    q = 1.0 - loss_rate
    numerator = 1.0 + q**3 * (1.0 - q ** (window - 3.0))
    denominator = (1.0 - q**window) / (1.0 - q**3)
    return min(1.0, numerator / denominator)


def backoff_factor(loss_rate: float) -> float:
    """``G(p) = 1 + p + 2p^2 + 4p^3 + 8p^4 + 16p^5 + 32p^6``.

    Accounts for exponential RTO backoff across consecutive timeouts
    (PFTK eq. (26)).
    """
    p = loss_rate
    return 1.0 + p + 2 * p**2 + 4 * p**3 + 8 * p**4 + 16 * p**5 + 32 * p**6


def pftk_full_throughput(
    rtt_s: float,
    loss_rate: float,
    rto_s: float,
    tcp: TcpParameters | None = None,
) -> float:
    """Full PFTK throughput in Mbps (PFTK eqs. (30)-(32)).

    Uses the expected window ``W(p)``, the timeout probability
    ``Q(p, w)``, and the backoff factor ``G(p)``.  When the expected
    window exceeds the maximum window ``W_max`` the window-limited branch
    applies.

    Raises:
        PredictionError: if ``loss_rate`` is zero.
    """
    tcp = tcp or TcpParameters()
    _validate(rtt_s, loss_rate, rto_s)
    if loss_rate == 0.0:
        raise PredictionError("PFTK model undefined for a lossless path")

    p = loss_rate
    b = tcp.ack_every
    w_max = tcp.max_window_segments
    w_p = expected_window(p, b)

    if w_p < w_max:
        q = timeout_probability(p, w_p)
        numerator = (1.0 - p) / p + w_p + q / (1.0 - p)
        denominator = (
            rtt_s * (b / 2.0 * w_p + 1.0)
            + q * backoff_factor(p) * rto_s / (1.0 - p)
        )
    else:
        q = timeout_probability(p, w_max)
        numerator = (1.0 - p) / p + w_max + q / (1.0 - p)
        denominator = (
            rtt_s * (b / 8.0 * w_max + (1.0 - p) / (p * w_max) + 2.0)
            + q * backoff_factor(p) * rto_s / (1.0 - p)
        )
    segments_per_second = numerator / denominator
    # The model cannot exceed the hard window limit W/T.
    segments_per_second = min(segments_per_second, w_max / rtt_s)
    return _segments_to_mbps(segments_per_second, tcp.mss_bytes)
