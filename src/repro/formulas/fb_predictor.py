"""The combined Formula-Based predictor of the paper's Eq. (3).

::

    R_hat = | min(PFTK(T_hat, p_hat, T0_hat; M, b, W), W / T_hat)   p_hat > 0
            | min(W / T_hat, A_hat)                                 p_hat = 0

with the retransmission timeout estimated as
``T0_hat = max(1 s, 2 * SRTT)`` where SRTT is the a priori RTT.

The predictor is a small class so the model variant (paper Eq. (2),
full PFTK, revised PFTK, or Mathis) is a constructor choice and the
prediction call site stays identical across the evaluation figures.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError, PredictionError
from repro.obs import get_telemetry
from repro.formulas.availbw import availbw_prediction
from repro.formulas.mathis import mathis_throughput
from repro.formulas.params import PathEstimates, TcpParameters
from repro.formulas.pftk import pftk_full_throughput, pftk_throughput
from repro.formulas.pftk_revised import pftk_revised_throughput

#: Signature shared by the lossy-path models: (rtt_s, loss_rate, rto_s, tcp) -> Mbps.
LossyModel = Callable[[float, float, float, TcpParameters], float]

#: Minimum RTO mandated by RFC 2988 and used by the paper's T0 estimate.
MIN_RTO_S = 1.0


def estimate_rto(rtt_s: float, min_rto_s: float = MIN_RTO_S) -> float:
    """The paper's RTO estimate: ``T0_hat = max(1 s, 2 * SRTT)``."""
    if rtt_s <= 0:
        raise ValueError(f"rtt_s must be positive, got {rtt_s}")
    return max(min_rto_s, 2.0 * rtt_s)


def _mathis_adapter(
    rtt_s: float, loss_rate: float, rto_s: float, tcp: TcpParameters
) -> float:
    """Adapt the Mathis model (which has no RTO term) to the shared shape."""
    del rto_s  # the square-root model ignores timeouts
    return min(
        mathis_throughput(rtt_s, loss_rate, tcp),
        tcp.max_window_segments / rtt_s * tcp.mss_bytes * 8 / 1e6,
    )


#: Registry of lossy-path model variants selectable by name.
MODEL_VARIANTS: dict[str, LossyModel] = {
    "pftk": pftk_throughput,
    "pftk-full": pftk_full_throughput,
    "pftk-revised": pftk_revised_throughput,
    "mathis": _mathis_adapter,
}


@dataclass(frozen=True)
class FormulaBasedPredictor:
    """FB throughput predictor (paper Eq. (3)).

    Attributes:
        tcp: parameters of the transfer being predicted.
        model: which throughput model to apply on lossy paths; one of
            ``"pftk"`` (paper default), ``"pftk-full"``,
            ``"pftk-revised"``, ``"mathis"``.
    """

    tcp: TcpParameters = field(default_factory=TcpParameters)
    model: str = "pftk"

    def __post_init__(self) -> None:
        if self.model not in MODEL_VARIANTS:
            raise ConfigurationError(
                f"unknown model {self.model!r}; choose from {sorted(MODEL_VARIANTS)}"
            )

    def predict(self, estimates: PathEstimates) -> float:
        """Predicted throughput ``R_hat`` in Mbps from a priori estimates.

        Raises:
            PredictionError: on a lossless path with no avail-bw estimate.
        """
        window_limit = (
            self.tcp.max_window_bytes * 8 / estimates.rtt_s / 1e6
        )
        if estimates.lossless:
            if estimates.availbw_mbps is None:
                raise PredictionError(
                    "path measured lossless but no avail-bw estimate available"
                )
            get_telemetry().counter("fb.model_selected", model="availbw").inc()
            return availbw_prediction(
                estimates.rtt_s, estimates.availbw_mbps, self.tcp
            )
        model_fn = MODEL_VARIANTS[self.model]
        get_telemetry().counter("fb.model_selected", model=self.model).inc()
        rto = estimate_rto(estimates.rtt_s)
        modeled = model_fn(estimates.rtt_s, estimates.loss_rate, rto, self.tcp)
        return min(modeled, window_limit)

    def predict_from(
        self,
        rtt_s: float,
        loss_rate: float,
        availbw_mbps: float | None = None,
    ) -> float:
        """Convenience wrapper building :class:`PathEstimates` inline."""
        return self.predict(
            PathEstimates(rtt_s=rtt_s, loss_rate=loss_rate, availbw_mbps=availbw_mbps)
        )
