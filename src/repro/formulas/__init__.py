"""Formula-Based (FB) TCP throughput models and the paper's FB predictor.

This subpackage implements the mathematical side of the paper's Section 3:

* :mod:`repro.formulas.mathis` — the "square-root" model (paper Eq. (1)).
* :mod:`repro.formulas.pftk` — the PFTK model of Padhye et al. (Eq. (2)),
  plus the full (non-approximate) PFTK model.
* :mod:`repro.formulas.pftk_revised` — the revised PFTK variant used for
  the paper's Fig. 13.
* :mod:`repro.formulas.cardwell` — the Cardwell et al. slow-start model
  used in Section 4.2.7.
* :mod:`repro.formulas.availbw` — the available-bandwidth predictor for
  lossless paths.
* :mod:`repro.formulas.fb_predictor` — the combined predictor of Eq. (3).

All models take path characteristics in SI units (seconds, bytes,
probabilities) and return throughput in **Mbps**.
"""

from repro.formulas.availbw import availbw_prediction
from repro.formulas.cardwell import (
    expected_short_transfer_throughput_mbps,
    expected_slow_start_segments,
    expected_transfer_time_s,
    slow_start_fraction,
)
from repro.formulas.fb_predictor import FormulaBasedPredictor, estimate_rto
from repro.formulas.mathis import mathis_throughput
from repro.formulas.params import PathEstimates, TcpParameters
from repro.formulas.pftk import pftk_full_throughput, pftk_throughput
from repro.formulas.pftk_revised import pftk_revised_throughput

__all__ = [
    "FormulaBasedPredictor",
    "PathEstimates",
    "TcpParameters",
    "availbw_prediction",
    "estimate_rto",
    "expected_short_transfer_throughput_mbps",
    "expected_slow_start_segments",
    "expected_transfer_time_s",
    "mathis_throughput",
    "pftk_full_throughput",
    "pftk_revised_throughput",
    "pftk_throughput",
    "slow_start_fraction",
]
