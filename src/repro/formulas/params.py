"""Parameter bundles shared by the FB models.

Two small frozen dataclasses keep model signatures readable:

* :class:`TcpParameters` — properties of the *transfer* (segment size,
  delayed-ACK factor ``b``, maximum window ``W``), the knobs the paper
  varies (W = 1 MB vs W = 20 KB).
* :class:`PathEstimates` — the *a priori* measurements of the path
  (RTT ``T_hat``, loss rate ``p_hat``, avail-bw ``A_hat``) that the FB
  predictor of Eq. (3) consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.units import kbyte, mbyte

#: Standard Ethernet-derived maximum segment size, bytes.
DEFAULT_MSS_BYTES = 1460

#: Delayed ACKs acknowledge every other segment (paper's ``b``).
DEFAULT_ACK_EVERY = 2


@dataclass(frozen=True)
class TcpParameters:
    """Transfer-side parameters of the TCP throughput models.

    Attributes:
        mss_bytes: maximum segment size ``M`` in bytes.
        ack_every: segments per new ACK, the models' ``b`` (2 with
            delayed ACKs, 1 without).
        max_window_bytes: maximum window ``W`` in bytes — in practice the
            smaller of the sender buffer and the receiver's advertised
            window, which the paper controls through IPerf's socket
            buffer size.
    """

    mss_bytes: int = DEFAULT_MSS_BYTES
    ack_every: int = DEFAULT_ACK_EVERY
    max_window_bytes: int = mbyte(1)

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ConfigurationError(f"mss_bytes must be positive, got {self.mss_bytes}")
        if self.ack_every < 1:
            raise ConfigurationError(f"ack_every must be >= 1, got {self.ack_every}")
        if self.max_window_bytes < self.mss_bytes:
            raise ConfigurationError(
                "max_window_bytes must hold at least one segment "
                f"({self.max_window_bytes} < {self.mss_bytes})"
            )

    @classmethod
    def congestion_limited(cls) -> "TcpParameters":
        """The paper's default: W = 1 MB, large enough to saturate paths."""
        return cls(max_window_bytes=mbyte(1))

    @classmethod
    def window_limited(cls) -> "TcpParameters":
        """The paper's small-window setting: W = 20 KB."""
        return cls(max_window_bytes=kbyte(20))

    @property
    def max_window_segments(self) -> float:
        """Maximum window expressed in segments."""
        return self.max_window_bytes / self.mss_bytes


@dataclass(frozen=True)
class PathEstimates:
    """A priori path measurements feeding the FB predictor (Eq. (3)).

    Attributes:
        rtt_s: measured round-trip time ``T_hat`` in seconds.
        loss_rate: measured loss rate ``p_hat`` in [0, 1]; zero means the
            probing observed a lossless path.
        availbw_mbps: measured available bandwidth ``A_hat`` in Mbps, or
            ``None`` if no avail-bw measurement was taken.  Required by
            the predictor only on lossless paths.
    """

    rtt_s: float
    loss_rate: float
    availbw_mbps: float | None = None

    def __post_init__(self) -> None:
        if self.rtt_s <= 0:
            raise ConfigurationError(f"rtt_s must be positive, got {self.rtt_s}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.availbw_mbps is not None and self.availbw_mbps <= 0:
            raise ConfigurationError(
                f"availbw_mbps must be positive when given, got {self.availbw_mbps}"
            )

    @property
    def lossless(self) -> bool:
        """True when the a priori probing saw no losses."""
        return self.loss_rate == 0.0


def fb_input_errors(
    *,
    rtt_ms: float,
    loss: float,
    window_kb: float,
    mss: float,
    availbw: float | None = None,
) -> list[str]:
    """Problems with raw FB prediction inputs, as one-line messages.

    The single source of truth for rejecting user-supplied FB inputs:
    the ``repro-predict`` CLI turns a non-empty result into a
    ``parser.error`` and the serving layer's ``/predict/fb`` endpoint
    turns it into an HTTP 400, so both surfaces agree on what is
    invalid and say so with the same words.  An empty list means the
    inputs can safely construct :class:`TcpParameters` and
    :class:`PathEstimates` (which still enforce their own invariants).
    """
    errors: list[str] = []
    if not math.isfinite(rtt_ms) or rtt_ms <= 0:
        errors.append(f"--rtt-ms must be a positive number, got {rtt_ms}")
    if not math.isfinite(loss) or not 0.0 <= loss < 1.0:
        errors.append(f"--loss must be in [0, 1), got {loss}")
    if not math.isfinite(window_kb) or window_kb <= 0:
        errors.append(f"--window-kb must be positive, got {window_kb}")
    if not math.isfinite(mss) or mss <= 0 or mss != int(mss):
        errors.append(f"--mss must be a positive integer, got {mss}")
    elif math.isfinite(window_kb) and 0 < window_kb * 1000 < mss:
        errors.append(
            f"--window-kb must hold at least one segment "
            f"({window_kb} KB < {mss} bytes)"
        )
    if availbw is not None and (not math.isfinite(availbw) or availbw <= 0):
        errors.append(f"--availbw must be positive when given, got {availbw}")
    if not errors and loss == 0.0 and availbw is None:
        errors.append("--availbw is required when --loss is 0 (lossless path)")
    return errors
