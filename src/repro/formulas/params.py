"""Parameter bundles shared by the FB models.

Two small frozen dataclasses keep model signatures readable:

* :class:`TcpParameters` — properties of the *transfer* (segment size,
  delayed-ACK factor ``b``, maximum window ``W``), the knobs the paper
  varies (W = 1 MB vs W = 20 KB).
* :class:`PathEstimates` — the *a priori* measurements of the path
  (RTT ``T_hat``, loss rate ``p_hat``, avail-bw ``A_hat``) that the FB
  predictor of Eq. (3) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.units import kbyte, mbyte

#: Standard Ethernet-derived maximum segment size, bytes.
DEFAULT_MSS_BYTES = 1460

#: Delayed ACKs acknowledge every other segment (paper's ``b``).
DEFAULT_ACK_EVERY = 2


@dataclass(frozen=True)
class TcpParameters:
    """Transfer-side parameters of the TCP throughput models.

    Attributes:
        mss_bytes: maximum segment size ``M`` in bytes.
        ack_every: segments per new ACK, the models' ``b`` (2 with
            delayed ACKs, 1 without).
        max_window_bytes: maximum window ``W`` in bytes — in practice the
            smaller of the sender buffer and the receiver's advertised
            window, which the paper controls through IPerf's socket
            buffer size.
    """

    mss_bytes: int = DEFAULT_MSS_BYTES
    ack_every: int = DEFAULT_ACK_EVERY
    max_window_bytes: int = mbyte(1)

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ConfigurationError(f"mss_bytes must be positive, got {self.mss_bytes}")
        if self.ack_every < 1:
            raise ConfigurationError(f"ack_every must be >= 1, got {self.ack_every}")
        if self.max_window_bytes < self.mss_bytes:
            raise ConfigurationError(
                "max_window_bytes must hold at least one segment "
                f"({self.max_window_bytes} < {self.mss_bytes})"
            )

    @classmethod
    def congestion_limited(cls) -> "TcpParameters":
        """The paper's default: W = 1 MB, large enough to saturate paths."""
        return cls(max_window_bytes=mbyte(1))

    @classmethod
    def window_limited(cls) -> "TcpParameters":
        """The paper's small-window setting: W = 20 KB."""
        return cls(max_window_bytes=kbyte(20))

    @property
    def max_window_segments(self) -> float:
        """Maximum window expressed in segments."""
        return self.max_window_bytes / self.mss_bytes


@dataclass(frozen=True)
class PathEstimates:
    """A priori path measurements feeding the FB predictor (Eq. (3)).

    Attributes:
        rtt_s: measured round-trip time ``T_hat`` in seconds.
        loss_rate: measured loss rate ``p_hat`` in [0, 1]; zero means the
            probing observed a lossless path.
        availbw_mbps: measured available bandwidth ``A_hat`` in Mbps, or
            ``None`` if no avail-bw measurement was taken.  Required by
            the predictor only on lossless paths.
    """

    rtt_s: float
    loss_rate: float
    availbw_mbps: float | None = None

    def __post_init__(self) -> None:
        if self.rtt_s <= 0:
            raise ConfigurationError(f"rtt_s must be positive, got {self.rtt_s}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.availbw_mbps is not None and self.availbw_mbps <= 0:
            raise ConfigurationError(
                f"availbw_mbps must be positive when given, got {self.availbw_mbps}"
            )

    @property
    def lossless(self) -> bool:
        """True when the a priori probing saw no losses."""
        return self.loss_rate == 0.0
