"""The vectorized fluid engine: whole traces as (epoch,) arrays.

This is the campaign's default execution engine.  It computes the same
model as the scalar reference loop
(:class:`~repro.fastpath.pathsim.FluidPathSimulator`) but batches every
per-epoch quantity of one trace into NumPy arrays, turning ~150 Python
epoch iterations (a dozen formula calls each) into a handful of array
kernels — a 10-100x campaign throughput win (``benchmarks/perf_bench.py``,
fixtures ``fluid_trace`` vs ``fluid_vector``).

**Bit-identity contract.**  The vector engine must produce *byte-identical
datasets* to the scalar loop (``make vector-parity`` diffs the CSV
digests; ``REPRO_FLUID_VECTOR=0`` switches a campaign to the scalar
engine).  Three mechanisms make that possible:

* every draw site has its own named stream with a fixed per-epoch width
  (:mod:`repro.fastpath.sites`), so one batched ``rng.random((E, k))``
  consumes exactly the bits of ``E`` scalar ``rng.random(k)`` calls;
* the serial AR(1) load recursion runs through the *same* Python
  function (:func:`~repro.fastpath.loadmodel.load_step`) in both
  engines — it is inherently sequential, and at one call per epoch it
  is not the bottleneck;
* everything else evaluates the same NumPy ufunc expression trees the
  scalar engine uses (``np.exp`` and friends round identically for
  scalars and arrays), with branch-dependent work computed on
  ``np.nonzero``-compressed index subsets so each element sees exactly
  the scalar branch arithmetic.

Telemetry: the vector engine emits the same per-epoch ``epoch`` events
and phase timers as the scalar loop, attributing to each epoch an equal
share of the trace's per-phase array-kernel time.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.fastpath.loadmodel import init_load_state, load_step
from repro.fastpath.pathsim import (
    CAPACITY_MEASUREMENT_SLACK,
    N_PROBES_DURING,
    N_PROBES_PRE,
    PROBE_LOSS_LOGNORMAL_SIGMA,
    WINDOW_LIMITED_MARGIN,
    draw_elastic_rtts,
    elastic_cross_weight,
)
from repro.fastpath.queueing import (
    mm1k_loss_probability_array,
    mm1k_mean_queue_delay_s_array,
    packets_for_buffer,
    pollaczek_khinchine_factor,
    service_rate_pps,
)
from repro.fastpath.sampling import pathload_sample, probe_rtt_sample
from repro.fastpath.sites import (
    U_WIDTH,
    FluidSites,
    Z_AR,
    Z_DRIFT,
    Z_FILL,
    Z_PATHLOAD,
    Z_PROBE_MISMATCH,
    Z_RTT_DURING_JITTER,
    Z_RTT_DURING_STDERR,
    Z_RTT_PRE_JITTER,
    Z_RTT_PRE_STDERR,
    Z_SMALL_FILL,
    Z_SMALL_VARIABILITY,
    Z_VARIABILITY,
    z_checkpoint_base,
    z_width,
)
from repro.formulas.params import TcpParameters
from repro.formulas.pftk import pftk_loss_for_throughput_array, pftk_throughput_array
from repro.obs import get_telemetry
from repro.obs.spans import record_trace_phase_spans
from repro.paths.config import PathConfig
from repro.paths.records import EpochMeasurement, EpochTruth, Trace

#: Environment switch: ``REPRO_FLUID_VECTOR=0`` runs campaigns on the
#: scalar reference engine instead (the parity cross-check, and the
#: fallback if a platform's NumPy misbehaves).
ENV_FLUID_VECTOR = "REPRO_FLUID_VECTOR"

#: Regime codes used internally; indices into this tuple.
_REGIMES = ("window", "loss", "congestion")
_WINDOW, _LOSS, _CONGESTION = 0, 1, 2


def fluid_vector_enabled() -> bool:
    """Whether campaigns run on the vectorized fluid engine (default)."""
    return os.environ.get(ENV_FLUID_VECTOR, "1") != "0"


@dataclass(frozen=True)
class _TraceContext:
    """Per-trace path constants shared by the transfer kernels."""

    k_packets: int
    mu_pps: float
    pk_factor: float
    elastic_rtts_s: tuple[float, ...]
    cross_weight: float


@dataclass(frozen=True)
class _TransferArrays:
    """Per-epoch transfer results over one trace."""

    throughput_mbps: np.ndarray
    loss_event_rate: np.ndarray
    rtt_during_s: np.ndarray
    queue_delay_during_s: np.ndarray
    regime: np.ndarray  # uint8 codes into _REGIMES


def run_fluid_trace(
    config: PathConfig,
    sites: FluidSites,
    trace_index: int,
    dt_s: np.ndarray,
    *,
    tcp: TcpParameters,
    small_tcp: TcpParameters | None,
    checkpoint_fractions: tuple[float, ...],
    transfer_duration_s: float,
    start_time_s: float,
) -> Trace:
    """Simulate one whole trace vectorized; bit-identical to the scalar loop.

    Args:
        config: the path's static parameters.
        sites: the (path, trace)'s site streams (the same bundle the
            scalar engine would consume).
        trace_index: which trace on the path.
        dt_s: the per-epoch intervals, already drawn from the ``dt``
            site (one array draw == the scalar loop's per-epoch draws).
        tcp/small_tcp/checkpoint_fractions/transfer_duration_s: the
            campaign settings, as for
            :meth:`~repro.fastpath.pathsim.FluidPathSimulator.run_epoch`.
        start_time_s: the trace's absolute start time.
    """
    telemetry = get_telemetry()
    clock = telemetry.phase_clock()
    cfg = config
    path_id = cfg.path_id
    n_epochs = int(dt_s.size)
    has_small = small_tcp is not None
    for fraction in checkpoint_fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"checkpoint fraction {fraction} outside (0, 1]")

    elastic_rtts_s = draw_elastic_rtts(cfg, sites.elastic)
    ctx = _TraceContext(
        k_packets=packets_for_buffer(cfg.buffer_bytes),
        mu_pps=service_rate_pps(cfg.capacity_mbps),
        pk_factor=pollaczek_khinchine_factor(cfg.burstiness_scv),
        elastic_rtts_s=elastic_rtts_s,
        cross_weight=elastic_cross_weight(elastic_rtts_s),
    )
    z_init = sites.init.standard_normal(2)
    state = init_load_state(
        cfg, float(z_init[0]), float(z_init[1]), None, start_time_s=start_time_s
    )

    # One batched fill per site == the scalar loop's per-epoch draws.
    u_block = sites.u.random((n_epochs, U_WIDTH))
    z_block = sites.z.standard_normal(
        (n_epochs, z_width(has_small, len(checkpoint_fractions)))
    )

    # --- the load recursion (serial, shared with the scalar engine) ----
    util_pre = np.empty(n_epochs)
    util_during = np.empty(n_epochs)
    outliers: list[bool] = []
    u_rows = u_block.tolist()
    z_ar_col = z_block[:, Z_AR].tolist()
    z_drift_col = z_block[:, Z_DRIFT].tolist()
    dt_list = dt_s.tolist()
    for e in range(n_epochs):
        pre, during, outlier, _shifted = load_step(
            cfg, state, dt_list[e], u_rows[e], z_ar_col[e], z_drift_col[e]
        )
        util_pre[e] = pre
        util_during[e] = during
        outliers.append(outlier)
    clock.lap("load")

    # --- pre-transfer measurements ------------------------------------
    dq_pre = ctx.pk_factor * mm1k_mean_queue_delay_s_array(
        util_pre, ctx.k_packets, ctx.mu_pps
    )
    that_s = probe_rtt_sample(
        cfg.base_rtt_s,
        dq_pre,
        N_PROBES_PRE,
        z_block[:, Z_RTT_PRE_STDERR],
        z_block[:, Z_RTT_PRE_JITTER],
    )
    loss_pre = np.minimum(
        0.5, cfg.random_loss + mm1k_loss_probability_array(util_pre, ctx.k_packets)
    )
    phat = sites.phat.binomial(N_PROBES_PRE, loss_pre) / N_PROBES_PRE
    clock.lap("ping")
    availbw_pre = cfg.capacity_mbps * (1.0 - util_pre)
    ahat_mbps = pathload_sample(
        availbw_pre,
        cfg.capacity_mbps,
        cfg.pathload_bias,
        cfg.pathload_noise,
        z_block[:, Z_PATHLOAD],
    )
    clock.lap("pathload")

    # --- the target transfer ------------------------------------------
    outcome = _transfer_arrays(
        ctx, cfg, util_during, tcp, z_block[:, Z_FILL], z_block[:, Z_VARIABILITY]
    )
    clock.lap("iperf")

    # --- probing during the transfer ----------------------------------
    ttilde_s = probe_rtt_sample(
        cfg.base_rtt_s,
        outcome.queue_delay_during_s,
        N_PROBES_DURING,
        z_block[:, Z_RTT_DURING_STDERR],
        z_block[:, Z_RTT_DURING_JITTER],
    )
    observed = _probe_observed_loss_arrays(
        cfg, outcome, z_block[:, Z_PROBE_MISMATCH]
    )
    ptilde = sites.ptilde.binomial(N_PROBES_DURING, observed) / N_PROBES_DURING
    clock.lap("ping")

    # --- companion small-window transfer + checkpoints ----------------
    smallw = None
    if has_small:
        # Only the throughput column of the companion transfer is kept,
        # so the (expensive, RNG-free) loss-rate inversion is skipped.
        smallw = _transfer_arrays(
            ctx,
            cfg,
            util_during,
            small_tcp,
            z_block[:, Z_SMALL_FILL],
            z_block[:, Z_SMALL_VARIABILITY],
            need_loss_event=False,
        ).throughput_mbps
    checkpoint_cols = []
    if checkpoint_fractions:
        base = z_checkpoint_base(has_small)
        for offset, fraction in enumerate(checkpoint_fractions):
            rel_std = 0.08 / math.sqrt(fraction)
            value = outcome.throughput_mbps * np.exp(
                min(rel_std, 0.5) * z_block[:, base + offset]
            )
            checkpoint_cols.append(np.maximum(value, 1e-3))
    del transfer_duration_s  # documented knob; the fractions carry the scale
    clock.lap("iperf")

    trace = _assemble_trace(
        path_id,
        trace_index,
        start_time_s,
        dt_list,
        ahat_mbps,
        phat,
        that_s,
        ptilde,
        ttilde_s,
        outcome,
        smallw,
        checkpoint_cols,
        util_pre,
        util_during,
        outliers,
    )
    if clock.enabled:
        # Each epoch gets an equal share of the trace's per-phase time;
        # the event/timer *shapes* match the scalar engine's exactly.
        per_epoch_phases = {
            name: total / n_epochs for name, total in clock.phases.items()
        }
        telemetry.record_epoch_batch(
            "epoch",
            path_id,
            trace_index,
            per_epoch_phases,
            [{"regime": _REGIMES[code]} for code in outcome.regime.tolist()],
        )
        # Spans stay at the granularity the engine measured: one child
        # span per whole-trace phase under the open unit span.  A span
        # per epoch (~14 us each) would cost more than the epoch.
        record_trace_phase_spans(telemetry, clock.phases, n_epochs)
    return trace


def _bandwidth_share_arrays(
    ctx: _TraceContext, cfg: PathConfig, util: np.ndarray, target_rtt_s: float
) -> np.ndarray:
    """Vector twin of ``FluidPathSimulator._bandwidth_share``."""
    availbw = cfg.capacity_mbps * (1.0 - util)
    if not ctx.elastic_rtts_s:
        return np.maximum(availbw, 0.10 * cfg.capacity_mbps)
    elastic_cross_mbps = util * cfg.elasticity * cfg.capacity_mbps
    target_weight = 1.0 / target_rtt_s
    yielded = (
        elastic_cross_mbps * target_weight / (target_weight + ctx.cross_weight)
    )
    return np.maximum(availbw + yielded, 0.10 * cfg.capacity_mbps)


def _transfer_arrays(
    ctx: _TraceContext,
    cfg: PathConfig,
    util: np.ndarray,
    tcp: TcpParameters,
    z_fill: np.ndarray,
    z_var: np.ndarray,
    need_loss_event: bool = True,
) -> _TransferArrays:
    """Vector twin of ``FluidPathSimulator._transfer``.

    Branch selection is computed for the whole trace at once; each
    branch's arithmetic then runs on its compressed index subset, where
    it evaluates exactly the scalar branch's expression tree.

    ``need_loss_event=False`` skips the congestion branch's PFTK loss
    inversion (a pure function of already-computed columns — no RNG)
    and leaves ``loss_event_rate`` meaningless; callers that only read
    the throughput column use this to avoid the dominant bisection
    cost.
    """
    n = util.size
    capacity = cfg.capacity_mbps
    base_rtt = cfg.base_rtt_s
    availbw = capacity * (1.0 - util)
    dq_light = ctx.pk_factor * mm1k_mean_queue_delay_s_array(
        util, ctx.k_packets, ctx.mu_pps
    )
    window_cap = tcp.max_window_bytes * 8.0 / (base_rtt + dq_light) / 1e6
    window_mask = window_cap < WINDOW_LIMITED_MARGIN * availbw

    throughput = np.empty(n)
    loss_event = np.empty(n)
    rtt_during = np.empty(n)
    dq_during = np.empty(n)
    regime = np.empty(n, dtype=np.uint8)
    out = _TransferArrays(throughput, loss_event, rtt_during, dq_during, regime)

    index_w = np.nonzero(window_mask)[0]
    if index_w.size:
        _window_limited_arrays(out, index_w, ctx, cfg, util[index_w], tcp, z_var[index_w])

    index_nw = np.nonzero(~window_mask)[0]
    if index_nw.size:
        share = _bandwidth_share_arrays(ctx, cfg, util[index_nw], base_rtt)
        rto_guess = max(1.0, 2.0 * base_rtt)
        if cfg.random_loss > 0:
            loss_cap = pftk_throughput_array(
                base_rtt + dq_light[index_nw], cfg.random_loss, rto_guess, tcp
            )
            loss_mask = loss_cap < share
        else:
            loss_cap = np.empty(0)
            loss_mask = np.zeros(index_nw.size, dtype=bool)
        index_l = index_nw[loss_mask]
        if index_l.size:
            _loss_limited_arrays(
                out, index_l, ctx, cfg, util[index_l], loss_cap[loss_mask], z_var[index_l]
            )
        index_c = index_nw[~loss_mask]
        if index_c.size:
            _congestion_limited_arrays(
                out,
                index_c,
                ctx,
                cfg,
                util[index_c],
                tcp,
                share[~loss_mask],
                z_fill[index_c],
                z_var[index_c],
                need_loss_event,
            )
    return out


def _window_limited_arrays(
    out: _TransferArrays,
    index: np.ndarray,
    ctx: _TraceContext,
    cfg: PathConfig,
    util: np.ndarray,
    tcp: TcpParameters,
    z_var: np.ndarray,
) -> None:
    window_mbps = tcp.max_window_bytes * 8.0 / cfg.base_rtt_s / 1e6
    util_total = np.minimum(0.98, util + window_mbps / cfg.capacity_mbps)
    dq = ctx.pk_factor * mm1k_mean_queue_delay_s_array(
        util_total, ctx.k_packets, ctx.mu_pps
    )
    rtt_d = cfg.base_rtt_s + dq
    mean_rate = tcp.max_window_bytes * 8.0 / rtt_d / 1e6

    loss = np.minimum(
        0.4, cfg.random_loss + mm1k_loss_probability_array(util_total, ctx.k_packets)
    )
    lossy = np.nonzero(loss > 0)[0]
    if lossy.size:
        rto = np.maximum(1.0, 2.0 * rtt_d[lossy])
        mean_rate[lossy] = np.minimum(
            mean_rate[lossy], pftk_throughput_array(rtt_d[lossy], loss[lossy], rto, tcp)
        )

    sigma = 0.03 + 1.5 * np.sqrt(loss)
    sample = mean_rate * np.exp(np.minimum(sigma, 0.35) * z_var)
    sample = np.minimum(sample, window_mbps)
    sample = np.minimum(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
    out.throughput_mbps[index] = np.maximum(sample, 1e-3)
    out.loss_event_rate[index] = loss
    out.rtt_during_s[index] = rtt_d
    out.queue_delay_during_s[index] = dq
    out.regime[index] = _WINDOW


def _loss_limited_arrays(
    out: _TransferArrays,
    index: np.ndarray,
    ctx: _TraceContext,
    cfg: PathConfig,
    util: np.ndarray,
    loss_cap_mbps: np.ndarray,
    z_var: np.ndarray,
) -> None:
    util_total = np.minimum(0.99, util + loss_cap_mbps / cfg.capacity_mbps)
    dq = ctx.pk_factor * mm1k_mean_queue_delay_s_array(
        util_total, ctx.k_packets, ctx.mu_pps
    )
    rtt_d = cfg.base_rtt_s + dq
    sigma = 0.07 + 0.5 * np.sqrt(cfg.random_loss)
    sample = loss_cap_mbps * np.exp(min(sigma, 0.4) * z_var)
    sample = np.minimum(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
    out.throughput_mbps[index] = np.maximum(sample, 1e-3)
    out.loss_event_rate[index] = cfg.random_loss
    out.rtt_during_s[index] = rtt_d
    out.queue_delay_during_s[index] = dq
    out.regime[index] = _LOSS


def _congestion_limited_arrays(
    out: _TransferArrays,
    index: np.ndarray,
    ctx: _TraceContext,
    cfg: PathConfig,
    util: np.ndarray,
    tcp: TcpParameters,
    share_mbps: np.ndarray,
    z_fill: np.ndarray,
    z_var: np.ndarray,
    need_loss_event: bool = True,
) -> None:
    bdp_bytes = share_mbps * 1e6 * cfg.base_rtt_s / 8.0
    eta = 0.55 + 0.35 * np.minimum(1.0, cfg.buffer_bytes / np.maximum(bdp_bytes, 1.0))
    mean_rate = share_mbps * eta

    fill = np.minimum(0.9, np.maximum(0.15, 0.25 + 0.35 * util + 0.08 * z_fill))
    dq = fill * ctx.k_packets / ctx.mu_pps
    rtt_d = cfg.base_rtt_s + dq
    mean_rate = np.minimum(mean_rate, tcp.max_window_bytes * 8.0 / rtt_d / 1e6)

    sigma = 0.03 + 0.35 * util * util / math.sqrt(max(1, cfg.n_cross_flows))
    sample = mean_rate * np.exp(np.minimum(sigma, 0.5) * z_var)
    sample = np.minimum(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
    sample = np.maximum(sample, 1e-3)

    if need_loss_event:
        rto = np.maximum(1.0, 2.0 * rtt_d)
        p_event = pftk_loss_for_throughput_array(sample, rtt_d, rto, tcp)
        p_event = np.maximum(p_event, cfg.random_loss)
        out.loss_event_rate[index] = p_event
    else:
        out.loss_event_rate[index] = 0.0

    out.throughput_mbps[index] = sample
    out.rtt_during_s[index] = rtt_d
    out.queue_delay_during_s[index] = dq
    out.regime[index] = _CONGESTION


def _probe_observed_loss_arrays(
    cfg: PathConfig, outcome: _TransferArrays, z_mismatch: np.ndarray
) -> np.ndarray:
    """Vector twin of ``FluidPathSimulator._probe_observed_loss``."""
    observed = outcome.loss_event_rate.copy()
    index_c = np.nonzero(outcome.regime == _CONGESTION)[0]
    if index_c.size:
        packet_loss = outcome.loss_event_rate[index_c] * cfg.burst_factor
        mismatch = np.exp(PROBE_LOSS_LOGNORMAL_SIGMA * z_mismatch[index_c])
        observed[index_c] = (
            cfg.random_loss + cfg.probe_loss_factor * mismatch * packet_loss
        )
    return np.minimum(0.5, np.maximum(0.0, observed))


def _assemble_trace(
    path_id: str,
    trace_index: int,
    start_time_s: float,
    dt_list: list,
    ahat_mbps: np.ndarray,
    phat: np.ndarray,
    that_s: np.ndarray,
    ptilde: np.ndarray,
    ttilde_s: np.ndarray,
    outcome: _TransferArrays,
    smallw: np.ndarray | None,
    checkpoint_cols: list[np.ndarray],
    util_pre: np.ndarray,
    util_during: np.ndarray,
    outliers: list[bool],
) -> Trace:
    """Build the Trace from column arrays, bypassing dataclass ``__init__``.

    At a million epochs per campaign sweep, frozen-dataclass
    construction (``object.__setattr__`` per field) is a measurable
    cost; validation is done on the whole columns first, then records
    are assembled through ``__dict__`` with plain Python floats (NumPy
    scalars would change the CSV writer's ``repr`` output).
    """
    throughput = outcome.throughput_mbps
    valid = (
        float(throughput.min()) > 0.0
        and 0.0 <= float(phat.min())
        and float(phat.max()) < 1.0
        and 0.0 <= float(ptilde.min())
        and float(ptilde.max()) < 1.0
    )
    n_epochs = int(throughput.size)

    ahat_l = ahat_mbps.tolist()
    phat_l = phat.tolist()
    that_l = that_s.tolist()
    thr_l = throughput.tolist()
    ptilde_l = ptilde.tolist()
    ttilde_l = ttilde_s.tolist()
    smallw_l = smallw.tolist() if smallw is not None else None
    cp_rows = (
        list(zip(*(col.tolist() for col in checkpoint_cols)))
        if checkpoint_cols
        else None
    )
    util_pre_l = util_pre.tolist()
    util_during_l = util_during.tolist()
    loss_event_l = outcome.loss_event_rate.tolist()
    regime_l = [_REGIMES[code] for code in outcome.regime.tolist()]

    if smallw_l is None:
        smallw_l = [None] * n_epochs
    if cp_rows is None:
        cp_rows = [()] * n_epochs

    measurement_new = EpochMeasurement.__new__
    truth_new = EpochTruth.__new__
    oset = object.__setattr__  # both record types are frozen dataclasses
    epochs: list[EpochMeasurement] = []
    append = epochs.append
    time_s = start_time_s
    rows = zip(
        dt_list,
        ahat_l,
        phat_l,
        that_l,
        thr_l,
        ptilde_l,
        ttilde_l,
        smallw_l,
        cp_rows,
        util_pre_l,
        util_during_l,
        loss_event_l,
        regime_l,
        outliers,
    )
    for e, (dt, ahat, ph, th, thr, pt, tt, sw, cps, up, ud, le, rg, ol) in enumerate(
        rows
    ):
        time_s += dt
        truth = truth_new(EpochTruth)
        oset(truth, "__dict__", {
            "utilization_pre": up,
            "utilization_during": ud,
            "loss_event_rate": le,
            "regime": rg,
            "outlier": ol,
        })
        fields = {
            "path_id": path_id,
            "trace_index": trace_index,
            "epoch_index": e,
            "start_time_s": time_s,
            "ahat_mbps": ahat,
            "phat": ph,
            "that_s": th,
            "throughput_mbps": thr,
            "ptilde": pt,
            "ttilde_s": tt,
            "smallw_throughput_mbps": sw,
            "duration_throughputs_mbps": cps,
            "truth": truth,
        }
        if not valid:
            # Rare: route through the validating constructor so the
            # offending epoch raises the scalar engine's exact DataError.
            append(EpochMeasurement(**fields))
            continue
        record = measurement_new(EpochMeasurement)
        oset(record, "__dict__", fields)
        append(record)
    return Trace(path_id=path_id, trace_index=trace_index, epochs=epochs)
