"""The fluid per-epoch path simulator.

:class:`FluidPathSimulator` produces one :class:`EpochMeasurement` per
call, following the paper's epoch timeline (Fig. 1): avail-bw
measurement, 60 s of pre-transfer probing, the 50 s target transfer with
concurrent probing, plus the companion small-window transfer.

The transfer model distinguishes the three regimes that bound a bulk
TCP flow:

* **window-limited** — ``W/T`` below the available bandwidth: the flow
  never saturates the path; its throughput is ``W/T`` with the mild
  queueing the flow itself adds (the paper's most predictable case);
* **loss-limited** — inherent random loss caps the flow below its
  bandwidth share (PFTK applied to the true loss process);
* **congestion-limited** — the flow saturates the bottleneck: it gets
  its share of the capacity (avail-bw plus whatever elastic cross
  traffic yields, discounted by buffer adequacy), fills the buffer
  (RTT inflation), and *drives the loss process itself* — the loss
  event rate is the one at which the TCP model equals the achieved
  share (AIMD loss-throughput duality, computed by inverting PFTK).

Every stochastic draw comes from the injected RNG stream, so campaigns
are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fastpath.loadmodel import CrossLoadProcess, EpochLoad
from repro.fastpath.queueing import (
    mm1k_loss_probability,
    mm1k_mean_queue_delay_s,
    packets_for_buffer,
    pollaczek_khinchine_factor,
    service_rate_pps,
)
from repro.fastpath.sampling import (
    pathload_estimate,
    probe_loss_estimate,
    probe_rtt_estimate,
)
from repro.formulas.params import TcpParameters
from repro.obs import get_telemetry
from repro.formulas.pftk import pftk_loss_for_throughput, pftk_throughput
from repro.paths.config import PathConfig
from repro.paths.records import EpochMeasurement, EpochTruth

#: Probe counts of the paper's methodology: 600 before (60 s at 10 Hz),
#: 500 during the 50 s transfer.
N_PROBES_PRE = 600
N_PROBES_DURING = 500

#: A flow is called window-limited when its window ceiling stays below
#: this fraction of the available bandwidth.
WINDOW_LIMITED_MARGIN = 0.92

#: Epoch-to-epoch lognormal spread of the probe-vs-TCP loss sampling
#: mismatch (Goyal et al. report order-of-magnitude discrepancies).
PROBE_LOSS_LOGNORMAL_SIGMA = 1.5

#: Physical envelope for a measured transfer rate: an epoch-level iperf
#: measurement can exceed the bottleneck capacity only by measurement
#: noise (clock granularity, buffered bytes draining into the sample
#: window), never by the unbounded tail of the lognormal variability
#: draw.  The loss- and congestion-limited branches scale a mean rate
#: near capacity by that draw, so the raw sample must be clamped here.
CAPACITY_MEASUREMENT_SLACK = 1.2


@dataclass(frozen=True)
class _TransferOutcome:
    """Internal result of the transfer model."""

    throughput_mbps: float
    mean_throughput_mbps: float
    loss_event_rate: float
    rtt_during_s: float
    queue_delay_during_s: float
    regime: str


class FluidPathSimulator:
    """Epoch-level simulator of one path.

    Args:
        config: the path's static parameters.
        rng: this path/trace's random stream.
        regime_mean: optional starting regime mean for the load process.
        start_time_s: absolute start time, forwarded to the load process
            (only observable when the config enables a diurnal cycle).
    """

    def __init__(
        self,
        config: PathConfig,
        rng: np.random.Generator,
        regime_mean: float | None = None,
        start_time_s: float = 0.0,
    ) -> None:
        self.config = config
        self.rng = rng
        self.load = CrossLoadProcess(
            config, rng, regime_mean, start_time_s=start_time_s
        )
        self._k_packets = packets_for_buffer(config.buffer_bytes)
        self._mu_pps = service_rate_pps(config.capacity_mbps)
        self._pk_factor = pollaczek_khinchine_factor(config.burstiness_scv)
        # Elastic cross flows competing at the bottleneck: count and RTTs
        # are drawn once per simulator (i.e. per trace).
        n_elastic = int(round(config.elasticity * config.n_cross_flows))
        self._elastic_rtts_s = [
            float(config.base_rtt_s * rng.uniform(0.5, 2.5))
            for _ in range(n_elastic)
        ]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_epoch(
        self,
        path_id: str,
        trace_index: int,
        epoch_index: int,
        start_time_s: float,
        dt_s: float,
        tcp: TcpParameters,
        small_tcp: TcpParameters | None = None,
        checkpoint_fractions: tuple[float, ...] = (),
        transfer_duration_s: float = 50.0,
    ) -> EpochMeasurement:
        """Simulate one epoch and return its measurement record.

        Args:
            path_id/trace_index/epoch_index: identity of the epoch.
            start_time_s: absolute epoch start time.
            dt_s: time since the previous epoch (load evolution).
            tcp: the main transfer's parameters (the paper's W = 1 MB).
            small_tcp: when given, a companion small-window transfer is
                simulated under the same load (the paper's W = 20 KB).
            checkpoint_fractions: fractions of the transfer duration at
                which cumulative throughput snapshots are reported
                (Fig. 11's 30/60/120 s cuts, as fractions of 120 s).
            transfer_duration_s: the transfer length.
        """
        telemetry = get_telemetry()
        clock = telemetry.phase_clock()
        load = self.load.advance(dt_s)
        clock.lap("load")

        # --- pre-transfer measurements (pathload, then 60 s of ping) ---
        dq_pre = self._queue_delay(load.util_pre)
        that_s = probe_rtt_estimate(
            self.rng, self.config.base_rtt_s, dq_pre, N_PROBES_PRE
        )
        loss_pre = min(
            0.5,
            self.config.random_loss
            + mm1k_loss_probability(load.util_pre, self._k_packets),
        )
        phat = probe_loss_estimate(self.rng, loss_pre, N_PROBES_PRE)
        clock.lap("ping")
        availbw_pre = self.config.capacity_mbps * (1.0 - load.util_pre)
        ahat_mbps = pathload_estimate(
            self.rng,
            availbw_pre,
            self.config.capacity_mbps,
            self.config.pathload_bias,
            self.config.pathload_noise,
        )
        clock.lap("pathload")

        # --- the target transfer ---------------------------------------
        outcome = self._transfer(load, tcp)
        clock.lap("iperf")

        # --- probing during the transfer --------------------------------
        ttilde_s = probe_rtt_estimate(
            self.rng,
            self.config.base_rtt_s,
            outcome.queue_delay_during_s,
            N_PROBES_DURING,
        )
        probe_loss_during = self._probe_observed_loss(outcome)
        ptilde = probe_loss_estimate(self.rng, probe_loss_during, N_PROBES_DURING)
        clock.lap("ping")

        # --- companion small-window transfer ----------------------------
        smallw = None
        if small_tcp is not None:
            smallw = self._transfer(load, small_tcp).throughput_mbps

        # --- sub-duration throughputs (second measurement set) ----------
        checkpoints = self._checkpoint_throughputs(
            outcome, checkpoint_fractions, transfer_duration_s
        )
        clock.lap("iperf")

        if clock.enabled:
            telemetry.record_epoch(
                "epoch",
                path_id,
                trace_index,
                epoch_index,
                clock.phases,
                regime=outcome.regime,
            )

        return EpochMeasurement(
            path_id=path_id,
            trace_index=trace_index,
            epoch_index=epoch_index,
            start_time_s=start_time_s,
            ahat_mbps=ahat_mbps,
            phat=phat,
            that_s=that_s,
            throughput_mbps=outcome.throughput_mbps,
            ptilde=ptilde,
            ttilde_s=ttilde_s,
            smallw_throughput_mbps=smallw,
            duration_throughputs_mbps=checkpoints,
            truth=EpochTruth(
                utilization_pre=load.util_pre,
                utilization_during=load.util_during,
                loss_event_rate=outcome.loss_event_rate,
                regime=outcome.regime,
                outlier=load.outlier,
            ),
        )

    # ------------------------------------------------------------------
    # The transfer model
    # ------------------------------------------------------------------

    def _transfer(self, load: EpochLoad, tcp: TcpParameters) -> _TransferOutcome:
        cfg = self.config
        u = load.util_during
        capacity = cfg.capacity_mbps
        availbw = capacity * (1.0 - u)
        base_rtt = cfg.base_rtt_s
        window_mbps_at = lambda rtt_s: tcp.max_window_bytes * 8.0 / rtt_s / 1e6

        # First guess of the flow's RTT if it stays non-saturating.
        dq_light = self._queue_delay(u)
        window_cap = window_mbps_at(base_rtt + dq_light)

        if window_cap < WINDOW_LIMITED_MARGIN * availbw:
            return self._window_limited_transfer(u, tcp)

        # The flow saturates (or tries to): compute its bandwidth share.
        share = self._bandwidth_share(u, base_rtt)
        rto_guess = max(1.0, 2.0 * base_rtt)
        loss_cap = math.inf
        if cfg.random_loss > 0:
            loss_cap = pftk_throughput(
                base_rtt + dq_light, cfg.random_loss, rto_guess, tcp
            )

        if loss_cap < share:
            return self._loss_limited_transfer(u, tcp, loss_cap)
        return self._congestion_limited_transfer(u, tcp, share)

    def _window_limited_transfer(
        self, util: float, tcp: TcpParameters
    ) -> _TransferOutcome:
        cfg = self.config
        # The flow adds its own (small) load; recompute the queue with it.
        window_mbps = tcp.max_window_bytes * 8.0 / cfg.base_rtt_s / 1e6
        util_total = min(0.98, util + window_mbps / cfg.capacity_mbps)
        dq = self._queue_delay(util_total)
        rtt_during = cfg.base_rtt_s + dq
        mean_rate = tcp.max_window_bytes * 8.0 / rtt_during / 1e6

        loss = min(
            0.4,
            cfg.random_loss + mm1k_loss_probability(util_total, self._k_packets),
        )
        if loss > 0:
            rto = max(1.0, 2.0 * rtt_during)
            mean_rate = min(mean_rate, pftk_throughput(rtt_during, loss, rto, tcp))

        sigma = 0.03 + 1.5 * math.sqrt(loss)
        sample = mean_rate * float(self.rng.lognormal(0.0, min(sigma, 0.35)))
        sample = min(sample, tcp.max_window_bytes * 8.0 / cfg.base_rtt_s / 1e6)
        sample = min(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
        return _TransferOutcome(
            throughput_mbps=max(sample, 1e-3),
            mean_throughput_mbps=mean_rate,
            loss_event_rate=loss,
            rtt_during_s=rtt_during,
            queue_delay_during_s=dq,
            regime="window",
        )

    def _loss_limited_transfer(
        self, util: float, tcp: TcpParameters, loss_cap_mbps: float
    ) -> _TransferOutcome:
        cfg = self.config
        util_total = min(
            0.99, util + loss_cap_mbps / cfg.capacity_mbps
        )
        dq = self._queue_delay(util_total)
        rtt_during = cfg.base_rtt_s + dq
        # Loss-limited flows have high throughput variance: the loss
        # process, not the capacity, sets the pace.
        sigma = 0.07 + 0.5 * math.sqrt(cfg.random_loss)
        sample = loss_cap_mbps * float(self.rng.lognormal(0.0, min(sigma, 0.4)))
        sample = min(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
        return _TransferOutcome(
            throughput_mbps=max(sample, 1e-3),
            mean_throughput_mbps=loss_cap_mbps,
            loss_event_rate=cfg.random_loss,
            rtt_during_s=rtt_during,
            queue_delay_during_s=dq,
            regime="loss",
        )

    def _congestion_limited_transfer(
        self, util: float, tcp: TcpParameters, share_mbps: float
    ) -> _TransferOutcome:
        cfg = self.config
        # Buffer adequacy: an AIMD sawtooth needs roughly a BDP of
        # buffering to keep the link busy through window halvings.  The
        # base efficiency sits well below 1 even with ample buffering:
        # classic Reno loses whole RTO periods (1 s minimum) whenever a
        # drop-tail overflow claims several segments of one window —
        # calibrated against the packet-level simulator (see
        # tests/integration/test_fluid_vs_packet.py).
        bdp_bytes = share_mbps * 1e6 * cfg.base_rtt_s / 8.0
        eta = 0.55 + 0.35 * min(1.0, cfg.buffer_bytes / max(bdp_bytes, 1.0))
        mean_rate = share_mbps * eta

        # Saturation keeps the buffer partially full; the fill level rises
        # with how loaded the path already was.
        fill = float(
            np.clip(0.25 + 0.35 * util + self.rng.normal(0.0, 0.08), 0.15, 0.9)
        )
        dq = fill * self._k_packets / self._mu_pps
        rtt_during = cfg.base_rtt_s + dq
        mean_rate = min(mean_rate, tcp.max_window_bytes * 8.0 / rtt_during / 1e6)

        # Short-term throughput variability: grows with utilization,
        # shrinks with statistical multiplexing (the paper's queueing
        # analysis, Section 6.1.4).
        sigma = 0.03 + 0.35 * util * util / math.sqrt(max(1, cfg.n_cross_flows))
        sample = mean_rate * float(self.rng.lognormal(0.0, min(sigma, 0.5)))
        sample = min(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
        sample = max(sample, 1e-3)

        # AIMD duality: the loss event rate is whatever makes the TCP
        # model deliver the achieved rate at the experienced RTT.
        rto = max(1.0, 2.0 * rtt_during)
        p_event = pftk_loss_for_throughput(sample, rtt_during, rto, tcp)
        p_event = max(p_event, cfg.random_loss)

        return _TransferOutcome(
            throughput_mbps=sample,
            mean_throughput_mbps=mean_rate,
            loss_event_rate=p_event,
            rtt_during_s=rtt_during,
            queue_delay_during_s=dq,
            regime="congestion",
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _queue_delay(self, utilization: float) -> float:
        """Mean queueing delay at the given load, with the PK burstiness
        factor applied (neutral at the default ``burstiness_scv = 1``)."""
        return self._pk_factor * mm1k_mean_queue_delay_s(
            utilization, self._k_packets, self._mu_pps
        )

    def _bandwidth_share(self, util: float, target_rtt_s: float) -> float:
        """The saturating flow's bandwidth share.

        The flow gets the available bandwidth plus whatever the elastic
        share of the cross traffic yields; the yield shrinks with the
        number of elastic competitors and their RTT advantage
        (Section 3.4).

        The share is floored at 10% of capacity: even against a heavy
        inelastic aggregate, a persistent Reno flow keeps pushing and
        claims buffer slots, so full starvation does not happen on a
        drop-tail bottleneck.
        """
        cfg = self.config
        availbw = cfg.capacity_mbps * (1.0 - util)
        if not self._elastic_rtts_s:
            return max(availbw, 0.10 * cfg.capacity_mbps)
        elastic_cross_mbps = util * cfg.elasticity * cfg.capacity_mbps
        target_weight = 1.0 / target_rtt_s
        cross_weight = sum(1.0 / rtt for rtt in self._elastic_rtts_s)
        yielded = elastic_cross_mbps * target_weight / (target_weight + cross_weight)
        return max(availbw + yielded, 0.10 * cfg.capacity_mbps)

    def _probe_observed_loss(self, outcome: _TransferOutcome) -> float:
        """Loss rate periodic probes see during the transfer.

        In the congestion-limited regime the flow's own losses cluster in
        its AIMD bursts; probes observe only a fraction, with large
        epoch-to-epoch spread (Section 3.3).
        """
        cfg = self.config
        if outcome.regime == "congestion":
            packet_loss = outcome.loss_event_rate * cfg.burst_factor
            mismatch = float(
                self.rng.lognormal(0.0, PROBE_LOSS_LOGNORMAL_SIGMA)
            )
            observed = cfg.random_loss + cfg.probe_loss_factor * mismatch * packet_loss
        else:
            observed = outcome.loss_event_rate
        return float(min(0.5, max(0.0, observed)))

    def _checkpoint_throughputs(
        self,
        outcome: _TransferOutcome,
        fractions: tuple[float, ...],
        duration_s: float,
    ) -> tuple[float, ...]:
        """Cumulative throughput at intermediate cuts of the transfer.

        A shorter averaging window sees more of the flow's short-term
        variability, so the deviation from the full-transfer throughput
        shrinks with the square root of the cut length.
        """
        if not fractions:
            return ()
        checkpoints = []
        for fraction in fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(f"checkpoint fraction {fraction} outside (0, 1]")
            rel_std = 0.08 / math.sqrt(fraction)
            value = outcome.throughput_mbps * float(
                self.rng.lognormal(0.0, min(rel_std, 0.5))
            )
            checkpoints.append(max(value, 1e-3))
        del duration_s  # documented knob; the fractions carry the scale
        return tuple(checkpoints)
