"""The fluid per-epoch path simulator (the scalar reference engine).

:class:`FluidPathSimulator` produces one :class:`EpochMeasurement` per
call, following the paper's epoch timeline (Fig. 1): avail-bw
measurement, 60 s of pre-transfer probing, the 50 s target transfer with
concurrent probing, plus the companion small-window transfer.

The transfer model distinguishes the three regimes that bound a bulk
TCP flow:

* **window-limited** — ``W/T`` below the available bandwidth: the flow
  never saturates the path; its throughput is ``W/T`` with the mild
  queueing the flow itself adds (the paper's most predictable case);
* **loss-limited** — inherent random loss caps the flow below its
  bandwidth share (PFTK applied to the true loss process);
* **congestion-limited** — the flow saturates the bottleneck: it gets
  its share of the capacity (avail-bw plus whatever elastic cross
  traffic yields, discounted by buffer adequacy), fills the buffer
  (RTT inflation), and *drives the loss process itself* — the loss
  event rate is the one at which the TCP model equals the achieved
  share (AIMD loss-throughput duality, computed by inverting PFTK).

Every stochastic draw comes from the trace's named **site streams**
(:class:`~repro.fastpath.sites.FluidSites`) with a fixed per-epoch
draw-and-discard layout, so the vectorized engine
(``repro.fastpath.vector``) can batch the same draws across a whole
trace and reproduce this scalar loop bit for bit.  Noise enters the
arithmetic only through NumPy ufunc expressions (``np.exp`` /
``np.sqrt`` / ``np.minimum`` ...), which round identically whether
applied to scalars or arrays — the foundation of the scalar/vector
parity gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fastpath.loadmodel import init_load_state, load_step
from repro.fastpath.queueing import (
    mm1k_loss_probability,
    mm1k_mean_queue_delay_s,
    packets_for_buffer,
    pollaczek_khinchine_factor,
    service_rate_pps,
)
from repro.fastpath.sampling import pathload_sample, probe_rtt_sample
from repro.fastpath.sites import (
    U_WIDTH,
    FluidSites,
    Z_AR,
    Z_DRIFT,
    Z_FILL,
    Z_PATHLOAD,
    Z_PROBE_MISMATCH,
    Z_RTT_DURING_JITTER,
    Z_RTT_DURING_STDERR,
    Z_RTT_PRE_JITTER,
    Z_RTT_PRE_STDERR,
    Z_SMALL_FILL,
    Z_SMALL_VARIABILITY,
    Z_VARIABILITY,
    z_checkpoint_base,
    z_width,
)
from repro.formulas.params import TcpParameters
from repro.obs import get_telemetry
from repro.obs.spans import record_epoch_spans
from repro.formulas.pftk import pftk_loss_for_throughput, pftk_throughput
from repro.paths.config import PathConfig
from repro.paths.records import EpochMeasurement, EpochTruth

#: Probe counts of the paper's methodology: 600 before (60 s at 10 Hz),
#: 500 during the 50 s transfer.
N_PROBES_PRE = 600
N_PROBES_DURING = 500

#: A flow is called window-limited when its window ceiling stays below
#: this fraction of the available bandwidth.
WINDOW_LIMITED_MARGIN = 0.92

#: Epoch-to-epoch lognormal spread of the probe-vs-TCP loss sampling
#: mismatch (Goyal et al. report order-of-magnitude discrepancies).
PROBE_LOSS_LOGNORMAL_SIGMA = 1.5

#: Physical envelope for a measured transfer rate: an epoch-level iperf
#: measurement can exceed the bottleneck capacity only by measurement
#: noise (clock granularity, buffered bytes draining into the sample
#: window), never by the unbounded tail of the lognormal variability
#: draw.  The loss- and congestion-limited branches scale a mean rate
#: near capacity by that draw, so the raw sample must be clamped here.
CAPACITY_MEASUREMENT_SLACK = 1.2


def draw_elastic_rtts(
    config: PathConfig, rng: np.random.Generator
) -> tuple[float, ...]:
    """The elastic cross flows' RTTs, drawn once per trace.

    One vectorized ``uniform(0.5, 2.5, n)`` call — shared verbatim by
    the scalar and vector engines so both consume the ``elastic`` site
    stream identically.
    """
    n_elastic = int(round(config.elasticity * config.n_cross_flows))
    if n_elastic == 0:
        return ()
    draws = config.base_rtt_s * rng.uniform(0.5, 2.5, n_elastic)
    return tuple(float(rtt) for rtt in draws)


def elastic_cross_weight(elastic_rtts_s: tuple[float, ...]) -> float:
    """``sum(1/rtt)`` over the elastic flows, in a *fixed* order.

    The bandwidth-share formula reduces over the elastic RTTs; NumPy's
    pairwise summation would regroup that reduction and diverge from a
    scalar loop in the last bits, so both engines share this explicit
    left-to-right accumulation, computed once per trace.
    """
    total = 0.0
    for rtt in elastic_rtts_s:
        total += 1.0 / rtt
    return total


@dataclass(frozen=True)
class _TransferOutcome:
    """Internal result of the transfer model."""

    throughput_mbps: float
    mean_throughput_mbps: float
    loss_event_rate: float
    rtt_during_s: float
    queue_delay_during_s: float
    regime: str


class FluidPathSimulator:
    """Epoch-level simulator of one path (scalar reference engine).

    Args:
        config: the path's static parameters.
        rng: this path/trace's random streams — either a
            :class:`~repro.fastpath.sites.FluidSites` bundle (what the
            campaign passes) or a single :class:`numpy.random.Generator`
            from which a bundle is spawned (tests, ad hoc use).
        regime_mean: optional starting regime mean for the load process.
        start_time_s: absolute start time, forwarded to the load process
            (only observable when the config enables a diurnal cycle).
    """

    def __init__(
        self,
        config: PathConfig,
        rng: np.random.Generator | FluidSites,
        regime_mean: float | None = None,
        start_time_s: float = 0.0,
    ) -> None:
        self.config = config
        sites = rng if isinstance(rng, FluidSites) else FluidSites.from_generator(rng)
        self.sites = sites
        self._k_packets = packets_for_buffer(config.buffer_bytes)
        self._mu_pps = service_rate_pps(config.capacity_mbps)
        self._pk_factor = pollaczek_khinchine_factor(config.burstiness_scv)
        # Elastic cross flows competing at the bottleneck: count and RTTs
        # are drawn once per simulator (i.e. per trace).
        self._elastic_rtts_s = draw_elastic_rtts(config, sites.elastic)
        self._cross_weight = elastic_cross_weight(self._elastic_rtts_s)
        z_init = sites.init.standard_normal(2)
        self._load_state = init_load_state(
            config,
            float(z_init[0]),
            float(z_init[1]),
            regime_mean,
            start_time_s=start_time_s,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_epoch(
        self,
        path_id: str,
        trace_index: int,
        epoch_index: int,
        start_time_s: float,
        dt_s: float,
        tcp: TcpParameters,
        small_tcp: TcpParameters | None = None,
        checkpoint_fractions: tuple[float, ...] = (),
        transfer_duration_s: float = 50.0,
    ) -> EpochMeasurement:
        """Simulate one epoch and return its measurement record.

        Args:
            path_id/trace_index/epoch_index: identity of the epoch.
            start_time_s: absolute epoch start time.
            dt_s: time since the previous epoch (load evolution).
            tcp: the main transfer's parameters (the paper's W = 1 MB).
            small_tcp: when given, a companion small-window transfer is
                simulated under the same load (the paper's W = 20 KB).
            checkpoint_fractions: fractions of the transfer duration at
                which cumulative throughput snapshots are reported
                (Fig. 11's 30/60/120 s cuts, as fractions of 120 s).
            transfer_duration_s: the transfer length.
        """
        telemetry = get_telemetry()
        clock = telemetry.phase_clock()
        cfg = self.config

        has_small = small_tcp is not None
        u = self.sites.u.random(U_WIDTH).tolist()
        z = self.sites.z.standard_normal(
            z_width(has_small, len(checkpoint_fractions))
        ).tolist()
        util_pre, util_during, outlier, _shifted = load_step(
            cfg, self._load_state, dt_s, u, z[Z_AR], z[Z_DRIFT]
        )
        clock.lap("load")

        # --- pre-transfer measurements (pathload, then 60 s of ping) ---
        dq_pre = self._queue_delay(util_pre)
        that_s = float(
            probe_rtt_sample(
                cfg.base_rtt_s,
                dq_pre,
                N_PROBES_PRE,
                z[Z_RTT_PRE_STDERR],
                z[Z_RTT_PRE_JITTER],
            )
        )
        loss_pre = min(
            0.5,
            cfg.random_loss + mm1k_loss_probability(util_pre, self._k_packets),
        )
        phat = float(self.sites.phat.binomial(N_PROBES_PRE, loss_pre)) / N_PROBES_PRE
        clock.lap("ping")
        availbw_pre = cfg.capacity_mbps * (1.0 - util_pre)
        ahat_mbps = float(
            pathload_sample(
                availbw_pre,
                cfg.capacity_mbps,
                cfg.pathload_bias,
                cfg.pathload_noise,
                z[Z_PATHLOAD],
            )
        )
        clock.lap("pathload")

        # --- the target transfer ---------------------------------------
        outcome = self._transfer(util_during, tcp, z[Z_FILL], z[Z_VARIABILITY])
        clock.lap("iperf")

        # --- probing during the transfer --------------------------------
        ttilde_s = float(
            probe_rtt_sample(
                cfg.base_rtt_s,
                outcome.queue_delay_during_s,
                N_PROBES_DURING,
                z[Z_RTT_DURING_STDERR],
                z[Z_RTT_DURING_JITTER],
            )
        )
        probe_loss_during = self._probe_observed_loss(outcome, z[Z_PROBE_MISMATCH])
        ptilde = (
            float(self.sites.ptilde.binomial(N_PROBES_DURING, probe_loss_during))
            / N_PROBES_DURING
        )
        clock.lap("ping")

        # --- companion small-window transfer ----------------------------
        smallw = None
        if has_small:
            smallw = self._transfer(
                util_during, small_tcp, z[Z_SMALL_FILL], z[Z_SMALL_VARIABILITY]
            ).throughput_mbps

        # --- sub-duration throughputs (second measurement set) ----------
        checkpoints = self._checkpoint_throughputs(
            outcome, checkpoint_fractions, transfer_duration_s, z, has_small
        )
        clock.lap("iperf")

        if clock.enabled:
            telemetry.record_epoch(
                "epoch",
                path_id,
                trace_index,
                epoch_index,
                clock.phases,
                regime=outcome.regime,
            )
            # Under an open unit span, the laps also become an epoch
            # span with phase children (no extra clock reads).
            record_epoch_spans(
                telemetry, "epoch", path_id, trace_index, epoch_index,
                clock.phases,
            )

        return EpochMeasurement(
            path_id=path_id,
            trace_index=trace_index,
            epoch_index=epoch_index,
            start_time_s=start_time_s,
            ahat_mbps=ahat_mbps,
            phat=phat,
            that_s=that_s,
            throughput_mbps=outcome.throughput_mbps,
            ptilde=ptilde,
            ttilde_s=ttilde_s,
            smallw_throughput_mbps=smallw,
            duration_throughputs_mbps=checkpoints,
            truth=EpochTruth(
                utilization_pre=util_pre,
                utilization_during=util_during,
                loss_event_rate=outcome.loss_event_rate,
                regime=outcome.regime,
                outlier=outlier,
            ),
        )

    # ------------------------------------------------------------------
    # The transfer model
    # ------------------------------------------------------------------

    def _transfer(
        self, util: float, tcp: TcpParameters, z_fill: float, z_var: float
    ) -> _TransferOutcome:
        cfg = self.config
        capacity = cfg.capacity_mbps
        availbw = capacity * (1.0 - util)
        base_rtt = cfg.base_rtt_s

        # First guess of the flow's RTT if it stays non-saturating.
        dq_light = self._queue_delay(util)
        window_cap = tcp.max_window_bytes * 8.0 / (base_rtt + dq_light) / 1e6

        if window_cap < WINDOW_LIMITED_MARGIN * availbw:
            return self._window_limited_transfer(util, tcp, z_var)

        # The flow saturates (or tries to): compute its bandwidth share.
        share = self._bandwidth_share(util, base_rtt)
        rto_guess = max(1.0, 2.0 * base_rtt)
        loss_cap = math.inf
        if cfg.random_loss > 0:
            loss_cap = pftk_throughput(
                base_rtt + dq_light, cfg.random_loss, rto_guess, tcp
            )

        if loss_cap < share:
            return self._loss_limited_transfer(util, tcp, loss_cap, z_var)
        return self._congestion_limited_transfer(util, tcp, share, z_fill, z_var)

    def _window_limited_transfer(
        self, util: float, tcp: TcpParameters, z_var: float
    ) -> _TransferOutcome:
        cfg = self.config
        # The flow adds its own (small) load; recompute the queue with it.
        window_mbps = tcp.max_window_bytes * 8.0 / cfg.base_rtt_s / 1e6
        util_total = min(0.98, util + window_mbps / cfg.capacity_mbps)
        dq = self._queue_delay(util_total)
        rtt_during = cfg.base_rtt_s + dq
        mean_rate = tcp.max_window_bytes * 8.0 / rtt_during / 1e6

        loss = min(
            0.4,
            cfg.random_loss + mm1k_loss_probability(util_total, self._k_packets),
        )
        if loss > 0:
            rto = max(1.0, 2.0 * rtt_during)
            mean_rate = min(mean_rate, pftk_throughput(rtt_during, loss, rto, tcp))

        sigma = 0.03 + 1.5 * np.sqrt(loss)
        sample = mean_rate * np.exp(min(sigma, 0.35) * z_var)
        sample = min(sample, window_mbps)
        sample = min(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
        return _TransferOutcome(
            throughput_mbps=float(max(sample, 1e-3)),
            mean_throughput_mbps=mean_rate,
            loss_event_rate=loss,
            rtt_during_s=rtt_during,
            queue_delay_during_s=dq,
            regime="window",
        )

    def _loss_limited_transfer(
        self, util: float, tcp: TcpParameters, loss_cap_mbps: float, z_var: float
    ) -> _TransferOutcome:
        cfg = self.config
        util_total = min(
            0.99, util + loss_cap_mbps / cfg.capacity_mbps
        )
        dq = self._queue_delay(util_total)
        rtt_during = cfg.base_rtt_s + dq
        # Loss-limited flows have high throughput variance: the loss
        # process, not the capacity, sets the pace.
        sigma = 0.07 + 0.5 * np.sqrt(cfg.random_loss)
        sample = loss_cap_mbps * np.exp(min(sigma, 0.4) * z_var)
        sample = min(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
        return _TransferOutcome(
            throughput_mbps=float(max(sample, 1e-3)),
            mean_throughput_mbps=loss_cap_mbps,
            loss_event_rate=cfg.random_loss,
            rtt_during_s=rtt_during,
            queue_delay_during_s=dq,
            regime="loss",
        )

    def _congestion_limited_transfer(
        self,
        util: float,
        tcp: TcpParameters,
        share_mbps: float,
        z_fill: float,
        z_var: float,
    ) -> _TransferOutcome:
        cfg = self.config
        # Buffer adequacy: an AIMD sawtooth needs roughly a BDP of
        # buffering to keep the link busy through window halvings.  The
        # base efficiency sits well below 1 even with ample buffering:
        # classic Reno loses whole RTO periods (1 s minimum) whenever a
        # drop-tail overflow claims several segments of one window —
        # calibrated against the packet-level simulator (see
        # tests/integration/test_fluid_vs_packet.py).
        bdp_bytes = share_mbps * 1e6 * cfg.base_rtt_s / 8.0
        eta = 0.55 + 0.35 * min(1.0, cfg.buffer_bytes / max(bdp_bytes, 1.0))
        mean_rate = share_mbps * eta

        # Saturation keeps the buffer partially full; the fill level rises
        # with how loaded the path already was.
        fill = min(0.9, max(0.15, 0.25 + 0.35 * util + 0.08 * z_fill))
        dq = fill * self._k_packets / self._mu_pps
        rtt_during = cfg.base_rtt_s + dq
        mean_rate = min(mean_rate, tcp.max_window_bytes * 8.0 / rtt_during / 1e6)

        # Short-term throughput variability: grows with utilization,
        # shrinks with statistical multiplexing (the paper's queueing
        # analysis, Section 6.1.4).
        sigma = 0.03 + 0.35 * util * util / math.sqrt(max(1, cfg.n_cross_flows))
        sample = mean_rate * np.exp(min(sigma, 0.5) * z_var)
        sample = min(sample, CAPACITY_MEASUREMENT_SLACK * cfg.capacity_mbps)
        sample = float(max(sample, 1e-3))

        # AIMD duality: the loss event rate is whatever makes the TCP
        # model deliver the achieved rate at the experienced RTT.
        rto = max(1.0, 2.0 * rtt_during)
        p_event = pftk_loss_for_throughput(sample, rtt_during, rto, tcp)
        p_event = max(p_event, cfg.random_loss)

        return _TransferOutcome(
            throughput_mbps=sample,
            mean_throughput_mbps=mean_rate,
            loss_event_rate=p_event,
            rtt_during_s=rtt_during,
            queue_delay_during_s=dq,
            regime="congestion",
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _queue_delay(self, utilization: float) -> float:
        """Mean queueing delay at the given load, with the PK burstiness
        factor applied (neutral at the default ``burstiness_scv = 1``)."""
        return self._pk_factor * mm1k_mean_queue_delay_s(
            utilization, self._k_packets, self._mu_pps
        )

    def _bandwidth_share(self, util: float, target_rtt_s: float) -> float:
        """The saturating flow's bandwidth share.

        The flow gets the available bandwidth plus whatever the elastic
        share of the cross traffic yields; the yield shrinks with the
        number of elastic competitors and their RTT advantage
        (Section 3.4).

        The share is floored at 10% of capacity: even against a heavy
        inelastic aggregate, a persistent Reno flow keeps pushing and
        claims buffer slots, so full starvation does not happen on a
        drop-tail bottleneck.
        """
        cfg = self.config
        availbw = cfg.capacity_mbps * (1.0 - util)
        if not self._elastic_rtts_s:
            return max(availbw, 0.10 * cfg.capacity_mbps)
        elastic_cross_mbps = util * cfg.elasticity * cfg.capacity_mbps
        target_weight = 1.0 / target_rtt_s
        yielded = (
            elastic_cross_mbps
            * target_weight
            / (target_weight + self._cross_weight)
        )
        return max(availbw + yielded, 0.10 * cfg.capacity_mbps)

    def _probe_observed_loss(
        self, outcome: _TransferOutcome, z_mismatch: float
    ) -> float:
        """Loss rate periodic probes see during the transfer.

        In the congestion-limited regime the flow's own losses cluster in
        its AIMD bursts; probes observe only a fraction, with large
        epoch-to-epoch spread (Section 3.3).
        """
        cfg = self.config
        if outcome.regime == "congestion":
            packet_loss = outcome.loss_event_rate * cfg.burst_factor
            mismatch = np.exp(PROBE_LOSS_LOGNORMAL_SIGMA * z_mismatch)
            observed = cfg.random_loss + cfg.probe_loss_factor * mismatch * packet_loss
        else:
            observed = outcome.loss_event_rate
        return float(min(0.5, max(0.0, observed)))

    def _checkpoint_throughputs(
        self,
        outcome: _TransferOutcome,
        fractions: tuple[float, ...],
        duration_s: float,
        z: list,
        has_small: bool,
    ) -> tuple[float, ...]:
        """Cumulative throughput at intermediate cuts of the transfer.

        A shorter averaging window sees more of the flow's short-term
        variability, so the deviation from the full-transfer throughput
        shrinks with the square root of the cut length.
        """
        if not fractions:
            return ()
        base = z_checkpoint_base(has_small)
        checkpoints = []
        for offset, fraction in enumerate(fractions):
            if not 0.0 < fraction <= 1.0:
                raise ValueError(f"checkpoint fraction {fraction} outside (0, 1]")
            rel_std = 0.08 / math.sqrt(fraction)
            value = outcome.throughput_mbps * np.exp(
                min(rel_std, 0.5) * z[base + offset]
            )
            checkpoints.append(float(max(value, 1e-3)))
        del duration_s  # documented knob; the fractions carry the scale
        return tuple(checkpoints)
