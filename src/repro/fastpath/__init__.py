"""The fluid (epoch-level) path model.

The paper's campaign comprises 36 750 fifty-second TCP transfers —
infeasible at packet granularity in-process.  ``fastpath`` models each
epoch analytically but *mechanistically*: the same causes that produce
FB prediction errors on real paths produce them here.

* :mod:`repro.fastpath.queueing` — finite-buffer queueing formulas
  (M/M/1/K) giving queueing delay and overflow loss from utilization.
* :mod:`repro.fastpath.loadmodel` — the stochastic cross-traffic load
  process: per-trace regimes, AR(1) epoch dynamics, Poisson level
  shifts, transient outlier bursts.
* :mod:`repro.fastpath.sampling` — how periodic probes (ping, pathload)
  observe the path: finite-sample binomial loss estimates, sample-mean
  RTT noise, the probe-vs-TCP loss sampling mismatch.
* :mod:`repro.fastpath.pathsim` — :class:`FluidPathSimulator`, the
  per-epoch engine producing the paper's measurement tuples.

The packet-level simulator (``repro.simnet``) validates this model; see
``tests/integration/test_fluid_vs_packet.py``.
"""

from repro.fastpath.loadmodel import CrossLoadProcess, EpochLoad
from repro.fastpath.pathsim import FluidPathSimulator
from repro.fastpath.queueing import (
    mm1k_loss_probability,
    mm1k_mean_queue_delay_s,
    mm1k_mean_system_occupancy,
)
from repro.fastpath.sampling import (
    probe_loss_estimate,
    probe_rtt_estimate,
)

__all__ = [
    "CrossLoadProcess",
    "EpochLoad",
    "FluidPathSimulator",
    "mm1k_loss_probability",
    "mm1k_mean_queue_delay_s",
    "mm1k_mean_system_occupancy",
    "probe_loss_estimate",
    "probe_rtt_estimate",
]
