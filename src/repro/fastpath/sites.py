"""Named per-trace RNG *site* streams for the fluid path simulator.

The fluid engine exists in two implementations — the scalar reference
loop (one epoch at a time) and the vectorized engine (whole-trace
arrays) — that must produce **bit-identical** datasets.  The only way
to vectorize draws without perturbing them is to give every draw *site*
its own generator and a fixed-width, draw-and-discard layout:

* each site's draws then form one homogeneous sequence, and NumPy fills
  ``rng.random((E, k))`` / ``rng.standard_normal((E, k))`` /
  ``rng.uniform(a, b, E)`` by running the same scalar routine against
  the bit stream ``E`` (or ``E * k``) times, so a whole-trace batched
  fill consumes exactly the bits the scalar per-epoch calls would
  (the :class:`~repro.core.rng.PredrawnExponentials` contract, extended
  from exponentials to every site the fluid path draws from);
* the per-epoch width of a site never depends on which branch an epoch
  takes — unused slots are drawn and discarded — so scalar and vector
  runs stay aligned even though the window/loss/congestion branches
  need different noise.

Streams are named ``{path_id}/trace{t}/fluid/{site}``, so any subset of
a campaign reproduces identically regardless of execution order, and a
retried trace re-derives exactly the draws of a never-failed run.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FluidSites",
    "SITE_NAMES",
    "U_WIDTH",
    "U_SHIFT_TEST",
    "U_SHIFT_MAGNITUDE",
    "U_SHIFT_DIRECTION",
    "U_OUTLIER_TEST",
    "U_OUTLIER_EXTRA",
    "Z_AR",
    "Z_DRIFT",
    "Z_RTT_PRE_STDERR",
    "Z_RTT_PRE_JITTER",
    "Z_PATHLOAD",
    "Z_FILL",
    "Z_VARIABILITY",
    "Z_RTT_DURING_STDERR",
    "Z_RTT_DURING_JITTER",
    "Z_PROBE_MISMATCH",
    "Z_BASE_WIDTH",
    "Z_SMALL_FILL",
    "Z_SMALL_VARIABILITY",
    "z_width",
    "z_checkpoint_base",
]

#: The seven independent draw sites of one fluid trace, in a fixed
#: order (the order only matters for :meth:`FluidSites.from_generator`,
#: which spawns children positionally).
SITE_NAMES = ("dt", "init", "elastic", "u", "z", "phat", "ptilde")

# -- the per-epoch uniform block (site "u") ---------------------------------
#: Width of the per-epoch uniform block.
U_WIDTH = 5
#: ``u < shift_prob`` triggers a regime level shift.
U_SHIFT_TEST = 0
#: Shift magnitude: ``(1.5 + 2.5 u) * max(util_spread, 0.05)``.
U_SHIFT_MAGNITUDE = 1
#: ``u < 0.6`` shifts toward the long-run mean, else away.
U_SHIFT_DIRECTION = 2
#: ``u < outlier_rate`` marks the epoch's transfer as an outlier.
U_OUTLIER_TEST = 3
#: Outlier extra load: ``0.15 + 0.35 u``.
U_OUTLIER_EXTRA = 4

# -- the per-epoch standard-normal block (site "z") -------------------------
#: AR(1) innovation (used by both the shift and the AR branch).
Z_AR = 0
#: Within-epoch load drift between the probes and the transfer.
Z_DRIFT = 1
#: Pre-transfer RTT estimate: sample-mean standard error.
Z_RTT_PRE_STDERR = 2
#: Pre-transfer RTT estimate: timestamping jitter.
Z_RTT_PRE_JITTER = 3
#: Pathload estimator noise.
Z_PATHLOAD = 4
#: Congestion-branch buffer fill level (drawn in every branch).
Z_FILL = 5
#: Main transfer's lognormal throughput variability (every branch).
Z_VARIABILITY = 6
#: During-transfer RTT estimate: standard error.
Z_RTT_DURING_STDERR = 7
#: During-transfer RTT estimate: jitter.
Z_RTT_DURING_JITTER = 8
#: Probe-vs-TCP loss sampling mismatch (used in congestion only).
Z_PROBE_MISMATCH = 9
#: Width without the small-window transfer and without checkpoints.
Z_BASE_WIDTH = 10
#: Small-window transfer's buffer-fill draw (present when small runs).
Z_SMALL_FILL = 10
#: Small-window transfer's lognormal variability draw.
Z_SMALL_VARIABILITY = 11


def z_width(has_small: bool, n_checkpoints: int) -> int:
    """Per-epoch width of the ``z`` block for the given epoch shape.

    The small-window companion transfer adds two slots (its fill and
    variability draws); each checkpoint fraction adds one.
    """
    return Z_BASE_WIDTH + (2 if has_small else 0) + n_checkpoints


def z_checkpoint_base(has_small: bool) -> int:
    """Column of the first checkpoint draw in the ``z`` block."""
    return Z_BASE_WIDTH + (2 if has_small else 0)


class FluidSites:
    """The bundle of per-site generators driving one fluid trace.

    Attributes (one :class:`numpy.random.Generator` each):
        dt: epoch intervals — one ``uniform(150, 190)`` per epoch.
        init: trace initialization — one ``standard_normal(2)``
            (regime-mean draw, initial AR state).
        elastic: elastic cross-flow RTTs — one
            ``uniform(0.5, 2.5, n_elastic)`` per trace.
        u: the per-epoch ``random(U_WIDTH)`` block (shift/outlier).
        z: the per-epoch ``standard_normal(z_width(...))`` block.
        phat: pre-transfer probe-loss counts —
            one ``binomial(600, loss_pre)`` per epoch.
        ptilde: during-transfer probe-loss counts —
            one ``binomial(500, observed)`` per epoch.
    """

    __slots__ = SITE_NAMES

    def __init__(
        self,
        dt: np.random.Generator,
        init: np.random.Generator,
        elastic: np.random.Generator,
        u: np.random.Generator,
        z: np.random.Generator,
        phat: np.random.Generator,
        ptilde: np.random.Generator,
    ) -> None:
        self.dt = dt
        self.init = init
        self.elastic = elastic
        self.u = u
        self.z = z
        self.phat = phat
        self.ptilde = ptilde

    @classmethod
    def from_streams(cls, streams, path_id: str, trace_index: int) -> "FluidSites":
        """The campaign's named site streams of one (path, trace)."""
        base = f"{path_id}/trace{trace_index}/fluid"
        return cls(*(streams.get(f"{base}/{site}") for site in SITE_NAMES))

    @classmethod
    def from_generator(cls, rng: np.random.Generator) -> "FluidSites":
        """Derive a site bundle from a single generator (tests, ad hoc).

        The children are spawned, so the bundle is reproducible given
        the parent's seed but statistically independent site to site.
        """
        return cls(*rng.spawn(len(SITE_NAMES)))
