"""The stochastic cross-traffic load process of one path.

Three timescales, matching what the paper's traces exhibit (Fig. 15):

* **regimes** — the per-trace mean utilization, drawn around the path's
  long-run mean (different traces run at different times of day);
* **level shifts** — a Poisson hazard replaces the regime mean with a
  fresh draw (routing changes, start/stop of big aggregates), producing
  the sudden mean changes the LSO heuristic targets;
* **epoch-to-epoch dynamics** — an AR(1) process around the regime
  mean, plus rare transient **outlier** bursts confined to a single
  epoch's transfer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.paths.config import PathConfig

#: Utilization from cross traffic alone never quite reaches the link.
MAX_CROSS_UTIL = 0.96

#: Outlier bursts add this much extra offered load (before clipping).
OUTLIER_EXTRA_UTIL_RANGE = (0.15, 0.5)


@dataclass(frozen=True)
class EpochLoad:
    """Cross-traffic load state for one epoch.

    Attributes:
        util_pre: bottleneck utilization during the pre-transfer
            measurements (pathload + ping).
        util_during: cross-traffic utilization during the transfer
            (excluding the target flow itself).
        outlier: True when a transient burst hits this epoch's transfer.
        shifted: True when a level shift occurred just before this epoch.
    """

    util_pre: float
    util_during: float
    outlier: bool
    shifted: bool


#: Seconds in the diurnal cycle.
DAY_S = 24 * 3600.0


class CrossLoadProcess:
    """Evolves one path's cross-traffic utilization across epochs.

    Args:
        config: the path's static parameters.
        rng: random stream (one per path/trace for reproducibility).
        regime_mean: starting regime mean; ``None`` draws one around the
            path's ``base_util`` (what a fresh trace does).
        start_time_s: absolute start time; only matters when the config
            enables a diurnal cycle (``diurnal_amplitude > 0``), which
            adds ``A * sin(2 pi t / 24h)`` to the regime mean.
    """

    def __init__(
        self,
        config: PathConfig,
        rng: np.random.Generator,
        regime_mean: float | None = None,
        start_time_s: float = 0.0,
    ) -> None:
        self.config = config
        self.rng = rng
        self.time_s = start_time_s
        if regime_mean is None:
            regime_mean = self._draw_regime_mean()
        self.regime_mean = regime_mean
        self.util = self._clip(regime_mean + rng.normal(0.0, config.ar_sigma))

    def _draw_regime_mean(self) -> float:
        draw = self.rng.normal(self.config.base_util, self.config.util_spread)
        return self._clip(draw)

    @staticmethod
    def _clip(value: float) -> float:
        return float(np.clip(value, 0.0, MAX_CROSS_UTIL))

    def advance(self, dt_s: float) -> EpochLoad:
        """Advance the process by one epoch interval and sample its load.

        Args:
            dt_s: elapsed time since the previous epoch (level-shift
                hazard scales with it).
        """
        if dt_s < 0:
            raise ValueError(f"dt_s must be non-negative, got {dt_s}")
        cfg = self.config
        self.time_s += dt_s

        shifted = False
        shift_prob = 1.0 - np.exp(-cfg.shift_rate_per_hour * dt_s / 3600.0)
        if self.rng.random() < shift_prob:
            self.regime_mean = self._draw_shift_target()
            # Jump most of the way to the new level immediately.
            self.util = self._clip(
                self.regime_mean + self.rng.normal(0.0, cfg.ar_sigma)
            )
            shifted = True
        else:
            mean = self.regime_mean + self._diurnal_offset()
            self.util = self._clip(
                mean
                + cfg.ar_phi * (self.util - mean)
                + self.rng.normal(0.0, cfg.ar_sigma)
            )

        # The transfer happens ~1-2 minutes after the measurements begin;
        # at short timescales cross traffic is bursty, so the load during
        # the transfer can differ substantially from what the probes saw
        # (the paper's Section 3.2 — the primary cause of FB errors).
        within_epoch_drift = self.rng.normal(0.01, cfg.ar_sigma * 0.8)
        util_during = self._clip(self.util + within_epoch_drift)

        outlier = bool(self.rng.random() < cfg.outlier_rate)
        if outlier:
            extra = self.rng.uniform(*OUTLIER_EXTRA_UTIL_RANGE)
            util_during = self._clip(util_during + extra)

        return EpochLoad(
            util_pre=self.util,
            util_during=util_during,
            outlier=outlier,
            shifted=shifted,
        )

    def _diurnal_offset(self) -> float:
        """Sinusoidal load-of-day offset; zero when disabled."""
        amplitude = self.config.diurnal_amplitude
        if amplitude == 0.0:
            return 0.0
        return amplitude * float(np.sin(2.0 * np.pi * self.time_s / DAY_S))

    def _draw_shift_target(self) -> float:
        """A new regime mean, clearly separated from the current one."""
        cfg = self.config
        # Shift magnitude: at least ~1.5 sigma of trace-level variation,
        # in a random direction, biased back toward the long-run mean.
        magnitude = self.rng.uniform(1.5, 4.0) * max(cfg.util_spread, 0.05)
        toward_base = np.sign(cfg.base_util - self.regime_mean) or 1.0
        direction = toward_base if self.rng.random() < 0.6 else -toward_base
        return self._clip(self.regime_mean + direction * magnitude)


# ---------------------------------------------------------------------------
# The pre-drawn-noise load process shared by the fluid engines.
#
# :class:`CrossLoadProcess` above owns its generator and draws as it
# goes, which the packet-level :class:`~repro.testbed.packet_epoch.
# PacketTraceRunner` still relies on.  The fluid campaign instead
# pre-draws all load noise from its ``u``/``z`` site streams (see
# ``repro.fastpath.sites``) and feeds it through the pure function
# :func:`load_step` — the *same* Python code evolves the AR(1) recursion
# one epoch at a time in both the scalar and the vectorized engine, so
# the two are bit-identical by construction.
# ---------------------------------------------------------------------------


def _clip_util(value: float) -> float:
    """Clip a utilization to ``[0, MAX_CROSS_UTIL]`` (branchy, scalar-fast)."""
    if value < 0.0:
        return 0.0
    if value > MAX_CROSS_UTIL:
        return MAX_CROSS_UTIL
    return value


@dataclass
class LoadState:
    """Mutable cross-load state threaded through :func:`load_step`.

    Attributes:
        regime_mean: the current regime's mean utilization.
        util: the AR(1) state (last epoch's pre-transfer utilization).
        time_s: absolute time (drives the optional diurnal cycle).
    """

    regime_mean: float
    util: float
    time_s: float


def init_load_state(
    config: PathConfig,
    z_regime: float,
    z_util: float,
    regime_mean: float | None = None,
    start_time_s: float = 0.0,
) -> LoadState:
    """Initial load state from the trace's two init draws.

    ``z_regime`` is consumed only when no explicit ``regime_mean`` is
    given (it is drawn-and-discarded otherwise, keeping the init
    stream's layout fixed).
    """
    if regime_mean is None:
        regime_mean = _clip_util(
            config.base_util + config.util_spread * z_regime
        )
    util = _clip_util(regime_mean + config.ar_sigma * z_util)
    return LoadState(regime_mean=regime_mean, util=util, time_s=start_time_s)


def load_step(
    config: PathConfig,
    state: LoadState,
    dt_s: float,
    u,
    z_ar: float,
    z_drift: float,
) -> tuple[float, float, bool, bool]:
    """Advance the load by one epoch using pre-drawn noise.

    Args:
        config: the path's static parameters.
        state: the mutable load state (updated in place).
        dt_s: elapsed time since the previous epoch.
        u: this epoch's uniform block (``U_WIDTH`` wide, indexed by the
            ``U_*`` constants of ``repro.fastpath.sites``).
        z_ar: the AR innovation (shared by the shift and AR branches).
        z_drift: the within-epoch drift innovation.

    Returns:
        ``(util_pre, util_during, outlier, shifted)`` — a plain tuple
        (this runs once per epoch on the campaign hot path).
    """
    if dt_s < 0:
        raise ValueError(f"dt_s must be non-negative, got {dt_s}")
    cfg = config
    state.time_s += dt_s

    shifted = False
    shift_prob = 1.0 - math.exp(-cfg.shift_rate_per_hour * dt_s / 3600.0)
    if u[0] < shift_prob:
        # Level shift: magnitude of at least ~1.5 sigma of trace-level
        # variation, biased back toward the long-run mean.
        magnitude = (1.5 + 2.5 * u[1]) * max(cfg.util_spread, 0.05)
        diff = cfg.base_util - state.regime_mean
        toward_base = 1.0 if diff > 0.0 else (-1.0 if diff < 0.0 else 1.0)
        direction = toward_base if u[2] < 0.6 else -toward_base
        state.regime_mean = _clip_util(state.regime_mean + direction * magnitude)
        # Jump most of the way to the new level immediately.
        state.util = _clip_util(state.regime_mean + cfg.ar_sigma * z_ar)
        shifted = True
    else:
        mean = state.regime_mean
        amplitude = cfg.diurnal_amplitude
        if amplitude != 0.0:
            mean = mean + amplitude * math.sin(
                2.0 * math.pi * state.time_s / DAY_S
            )
        state.util = _clip_util(
            mean + cfg.ar_phi * (state.util - mean) + cfg.ar_sigma * z_ar
        )

    # The transfer happens ~1-2 minutes after the measurements begin;
    # at short timescales cross traffic is bursty, so the load during
    # the transfer can differ substantially from what the probes saw.
    util_during = _clip_util(state.util + (0.01 + cfg.ar_sigma * 0.8 * z_drift))

    outlier = bool(u[3] < cfg.outlier_rate)
    if outlier:
        extra = OUTLIER_EXTRA_UTIL_RANGE[0] + (
            OUTLIER_EXTRA_UTIL_RANGE[1] - OUTLIER_EXTRA_UTIL_RANGE[0]
        ) * u[4]
        util_during = _clip_util(util_during + extra)

    return state.util, util_during, outlier, shifted
