"""How active probing observes the path (paper Section 3.3).

Periodic probes do not see the path the way a TCP flow does:

* a **finite probe count** quantizes loss estimates — 600 probes cannot
  resolve rates below 1/600, and the paper's own Fig. 5 footnote notes
  the resulting discretization;
* the **sample mean** of probe RTTs carries noise that shrinks with the
  probe count;
* during saturation, TCP's losses cluster in bursts of its own making,
  which a uniform-in-time sampler largely misses — probes observe only a
  path-dependent fraction (``probe_loss_factor``) of the packet loss
  TCP inflicts.
"""

from __future__ import annotations

import numpy as np

#: The paper's probing setup: 100 ms period.
PROBES_PER_SECOND = 10

#: Kernel/NIC timestamping jitter on a single RTT sample, seconds.
RTT_JITTER_S = 2e-4


def probe_loss_estimate(
    rng: np.random.Generator, true_loss: float, n_probes: int
) -> float:
    """A finite-sample loss estimate: Binomial(n, p) / n.

    This is what quantizes the paper's measured loss rates to multiples
    of ``1/n_probes`` and what makes mildly lossy paths often *measure*
    lossless.
    """
    if not 0.0 <= true_loss <= 1.0:
        raise ValueError(f"true_loss must be in [0, 1], got {true_loss}")
    if n_probes < 1:
        raise ValueError(f"n_probes must be >= 1, got {n_probes}")
    return float(rng.binomial(n_probes, true_loss)) / n_probes


def probe_rtt_estimate(
    rng: np.random.Generator,
    base_rtt_s: float,
    mean_queue_delay_s: float,
    n_probes: int,
) -> float:
    """The sample-mean RTT a periodic prober reports.

    Per-probe queueing delays are roughly exponential around their mean
    (M/M/1-like), so the sample mean over ``n`` probes has standard
    error ``mean / sqrt(n)``; timestamping jitter adds a floor.
    """
    if base_rtt_s <= 0:
        raise ValueError(f"base_rtt_s must be positive, got {base_rtt_s}")
    if mean_queue_delay_s < 0:
        raise ValueError(
            f"mean_queue_delay_s must be non-negative, got {mean_queue_delay_s}"
        )
    if n_probes < 1:
        raise ValueError(f"n_probes must be >= 1, got {n_probes}")
    stderr = mean_queue_delay_s / np.sqrt(n_probes)
    noise = rng.normal(0.0, stderr) + rng.normal(0.0, RTT_JITTER_S)
    return float(max(base_rtt_s, base_rtt_s + mean_queue_delay_s + noise))


def probe_rtt_sample(
    base_rtt_s: float,
    mean_queue_delay_s,
    n_probes: int,
    z_stderr,
    z_jitter,
):
    """:func:`probe_rtt_estimate` as a pure kernel over pre-drawn noise.

    Written entirely in NumPy ufunc operations so that the scalar
    engine (passing floats) and the vectorized engine (passing whole
    epoch arrays) produce bit-identical values — NumPy applies the same
    elementwise routine either way.
    """
    stderr = mean_queue_delay_s / np.sqrt(n_probes)
    noise = stderr * z_stderr + RTT_JITTER_S * z_jitter
    return np.maximum(base_rtt_s, base_rtt_s + mean_queue_delay_s + noise)


def pathload_sample(
    true_availbw_mbps,
    capacity_mbps: float,
    bias: float,
    noise: float,
    z,
):
    """:func:`pathload_estimate` as a pure kernel over pre-drawn noise.

    Same scalar/array bit-identity contract as :func:`probe_rtt_sample`.
    """
    estimate = true_availbw_mbps * (1.0 + bias + noise * z)
    floor = 0.05  # Mbps; the estimator cannot report zero or less
    return np.clip(estimate, floor, capacity_mbps * 1.05)


def pathload_estimate(
    rng: np.random.Generator,
    true_availbw_mbps: float,
    capacity_mbps: float,
    bias: float,
    noise: float,
) -> float:
    """An avail-bw estimate with pathload's bias and noise.

    Pathload's binary search has finite resolution and tends to settle
    slightly above the true avail-bw (the paper hypothesizes exactly
    this overestimation in Section 4.2.1); both the fractional ``bias``
    and the fractional ``noise`` come from the path configuration.

    The estimate is clipped to a small positive floor and to just above
    the capacity (an estimator can report a touch more than ``C``).
    """
    if true_availbw_mbps < 0:
        raise ValueError(
            f"true_availbw_mbps must be non-negative, got {true_availbw_mbps}"
        )
    if capacity_mbps <= 0:
        raise ValueError(f"capacity_mbps must be positive, got {capacity_mbps}")
    estimate = true_availbw_mbps * (1.0 + bias + rng.normal(0.0, noise))
    floor = 0.05  # Mbps; the estimator cannot report zero or less
    return float(np.clip(estimate, floor, capacity_mbps * 1.05))
