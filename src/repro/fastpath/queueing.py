"""Finite-buffer queueing formulas.

The bottleneck is modelled as an M/M/1/K queue: Poisson-ish cross
traffic offered at utilization ``rho`` to a server of ``K`` packet
slots.  M/M/1/K has closed forms for exactly the two quantities the
paper's error analysis needs — the overflow (loss) probability and the
mean queueing delay — and is well-behaved in overload (``rho > 1``),
which happens whenever the target flow saturates the path.

Internet cross traffic is burstier than Poisson; the path configuration
compensates through its ``burst_factor``/``probe_loss_factor``
parameters rather than through a heavier queueing model.

Each scalar formula has an ``*_array`` variant evaluating whole epoch
batches at once for the vectorized fluid engine.  The scalar forms
deliberately route their exponentials and logarithms through ``np.exp``
/ ``np.log`` (the ``math`` module's versions round differently in the
last bit on some inputs — unlike ``sqrt``, ``exp``/``log`` are not
IEEE-correctly-rounded, so the two libms may disagree) and the array
forms replicate every special case element by element, so the two are
**bit-identical** — the property the scalar-vs-vector campaign parity
gate (``make vector-parity``) rests on.
"""

from __future__ import annotations

import numpy as np


def _validate(rho: float, k_packets: int) -> None:
    if rho < 0:
        raise ValueError(f"utilization must be non-negative, got {rho}")
    if k_packets < 1:
        raise ValueError(f"buffer must hold at least 1 packet, got {k_packets}")


def mm1k_loss_probability(rho: float, k_packets: int) -> float:
    """Blocking probability of an M/M/1/K queue at offered load ``rho``.

    ``P_K = (1 - rho) rho^K / (1 - rho^(K+1))``; at ``rho = 1`` the limit
    is ``1 / (K + 1)``.  Valid for ``rho > 1`` (overload) as well.
    """
    _validate(rho, k_packets)
    if rho == 0.0:
        return 0.0
    if abs(rho - 1.0) < 1e-9:
        return 1.0 / (k_packets + 1)
    # For large K and rho < 1, rho^K underflows harmlessly to 0.
    log_rho = float(np.log(rho))
    if rho < 1.0 and k_packets * log_rho < -700:
        return 0.0
    num = (1.0 - rho) * np.exp(k_packets * log_rho)
    den = 1.0 - np.exp((k_packets + 1) * log_rho)
    return float(min(1.0, max(0.0, num / den)))


def mm1k_loss_probability_array(rho: np.ndarray, k_packets: int) -> np.ndarray:
    """Elementwise :func:`mm1k_loss_probability` over a load array.

    Bit-identical to the scalar form for every element, including its
    ``rho == 0`` / ``rho ~ 1`` / underflow special cases.
    """
    _validate(float(rho.min(initial=0.0)), k_packets)
    out = np.zeros_like(rho)
    near_one = np.abs(rho - 1.0) < 1e-9
    if near_one.any():
        out[near_one] = 1.0 / (k_packets + 1)
    index = np.nonzero(~near_one & (rho != 0.0))[0]
    if index.size:
        r = rho[index]
        log_rho = np.log(r)
        num = (1.0 - r) * np.exp(k_packets * log_rho)
        den = 1.0 - np.exp((k_packets + 1) * log_rho)
        values = np.minimum(1.0, np.maximum(0.0, num / den))
        # Match the scalar underflow guard exactly: below exp's
        # subnormal range the scalar returns a clean 0.0 early.
        values[(r < 1.0) & (k_packets * log_rho < -700)] = 0.0
        out[index] = values
    return out


def mm1k_mean_system_occupancy(rho: float, k_packets: int) -> float:
    """Mean number of packets in an M/M/1/K system (queue + service).

    ``L = rho/(1-rho) - (K+1) rho^(K+1) / (1 - rho^(K+1))``; at
    ``rho = 1`` the limit is ``K/2``.
    """
    _validate(rho, k_packets)
    if rho == 0.0:
        return 0.0
    if abs(rho - 1.0) < 1e-9:
        return k_packets / 2.0
    log_rho = float(np.log(rho))
    if rho < 1.0 and (k_packets + 1) * log_rho < -700:
        return rho / (1.0 - rho)
    tail = (k_packets + 1) * np.exp((k_packets + 1) * log_rho)
    occupancy = rho / (1.0 - rho) - tail / (1.0 - np.exp((k_packets + 1) * log_rho))
    return float(min(float(k_packets), max(0.0, occupancy)))


def mm1k_mean_system_occupancy_array(
    rho: np.ndarray, k_packets: int
) -> np.ndarray:
    """Elementwise :func:`mm1k_mean_system_occupancy` over a load array."""
    _validate(float(rho.min(initial=0.0)), k_packets)
    out = np.zeros_like(rho)
    near_one = np.abs(rho - 1.0) < 1e-9
    if near_one.any():
        out[near_one] = k_packets / 2.0
    index = np.nonzero(~near_one & (rho != 0.0))[0]
    if index.size:
        r = rho[index]
        log_rho = np.log(r)
        geometric = r / (1.0 - r)
        tail = (k_packets + 1) * np.exp((k_packets + 1) * log_rho)
        occupancy = geometric - tail / (1.0 - np.exp((k_packets + 1) * log_rho))
        values = np.minimum(float(k_packets), np.maximum(0.0, occupancy))
        # The scalar underflow branch returns rho/(1-rho) *unclamped*.
        underflow = (r < 1.0) & ((k_packets + 1) * log_rho < -700)
        values[underflow] = geometric[underflow]
        out[index] = values
    return out


def mm1k_mean_queue_delay_s(
    rho: float, k_packets: int, service_rate_pps: float
) -> float:
    """Mean *queueing* delay (excluding service) of accepted packets.

    From Little's law: ``W = L / lambda_eff`` with
    ``lambda_eff = lambda (1 - P_K)``; the queueing delay is
    ``W - 1/mu``.

    Args:
        rho: offered load.
        k_packets: buffer size in packets.
        service_rate_pps: ``mu``, packets per second the link serves.
    """
    _validate(rho, k_packets)
    if service_rate_pps <= 0:
        raise ValueError(f"service_rate_pps must be positive, got {service_rate_pps}")
    if rho == 0.0:
        return 0.0
    loss = mm1k_loss_probability(rho, k_packets)
    occupancy = mm1k_mean_system_occupancy(rho, k_packets)
    effective_arrivals = rho * service_rate_pps * (1.0 - loss)
    if effective_arrivals <= 0:
        return 0.0
    total_delay = occupancy / effective_arrivals
    return float(max(0.0, total_delay - 1.0 / service_rate_pps))


def mm1k_mean_queue_delay_s_array(
    rho: np.ndarray, k_packets: int, service_rate_pps: float
) -> np.ndarray:
    """Elementwise :func:`mm1k_mean_queue_delay_s` over a load array."""
    if service_rate_pps <= 0:
        raise ValueError(f"service_rate_pps must be positive, got {service_rate_pps}")
    loss = mm1k_loss_probability_array(rho, k_packets)
    occupancy = mm1k_mean_system_occupancy_array(rho, k_packets)
    effective_arrivals = rho * service_rate_pps * (1.0 - loss)
    out = np.zeros_like(rho)
    index = np.nonzero(effective_arrivals > 0)[0]
    if index.size:
        total_delay = occupancy[index] / effective_arrivals[index]
        out[index] = np.maximum(0.0, total_delay - 1.0 / service_rate_pps)
    return out


def pollaczek_khinchine_factor(scv: float) -> float:
    """The M/G/1 mean-wait multiplier relative to M/M/1.

    Pollaczek-Khinchine: ``Wq(M/G/1) = Wq(M/M/1) * (1 + C_s^2) / 2``
    where ``C_s^2`` is the squared coefficient of variation of the
    service process.  ``scv = 1`` recovers the exponential baseline;
    burstier-than-Poisson traffic (``scv > 1``) queues longer at the
    same utilization.
    """
    if scv < 0:
        raise ValueError(f"scv must be non-negative, got {scv}")
    return (1.0 + scv) / 2.0


def packets_for_buffer(buffer_bytes: int, packet_bytes: int = 1500) -> int:
    """Buffer size converted to (whole) packet slots, at least one."""
    if buffer_bytes <= 0:
        raise ValueError(f"buffer_bytes must be positive, got {buffer_bytes}")
    if packet_bytes <= 0:
        raise ValueError(f"packet_bytes must be positive, got {packet_bytes}")
    return max(1, buffer_bytes // packet_bytes)


def service_rate_pps(capacity_mbps: float, packet_bytes: int = 1500) -> float:
    """Packets per second a link of the given capacity serves."""
    if capacity_mbps <= 0:
        raise ValueError(f"capacity_mbps must be positive, got {capacity_mbps}")
    return capacity_mbps * 1e6 / (packet_bytes * 8)
