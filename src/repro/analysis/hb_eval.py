"""History-Based prediction accuracy: the analysis behind Figs. 15-23.

The unit of evaluation is the *trace*: a walk-forward one-step
evaluation of a predictor over the trace's throughput series yields a
per-trace RMSRE; the figures aggregate those RMSREs across traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataError
from repro.core.metrics import Cdf, pearson_correlation, rmsre
from repro.formulas.fb_predictor import FormulaBasedPredictor
from repro.formulas.params import TcpParameters
from repro.hb.base import PredictorFactory
from repro.hb.evaluate import evaluate_predictor, lso_segmentation
from repro.hb.ewma import Ewma
from repro.hb.holt_winters import HoltWinters
from repro.hb.lso import LsoConfig
from repro.hb.moving_average import MovingAverage
from repro.hb.wrappers import LsoPredictor
from repro.analysis.fb_eval import predict_epoch
from repro.paths.records import Dataset, Trace

# ----------------------------------------------------------------------
# Standard predictor factories
# ----------------------------------------------------------------------


def ma(order: int) -> PredictorFactory:
    """Factory for an ``order``-MA predictor."""
    return lambda: MovingAverage(order)


def ewma(alpha: float) -> PredictorFactory:
    """Factory for an EWMA predictor."""
    return lambda: Ewma(alpha)


def hw(alpha: float = 0.8, beta: float = 0.2) -> PredictorFactory:
    """Factory for a non-seasonal Holt-Winters predictor."""
    return lambda: HoltWinters(alpha, beta)


def with_lso(
    factory: PredictorFactory, config: LsoConfig | None = None
) -> PredictorFactory:
    """Wrap a factory with the LSO heuristics."""
    return lambda: LsoPredictor(factory, config)


#: The predictor set of Fig. 21's per-trace bars.
FIG21_PREDICTORS: dict[str, PredictorFactory] = {
    "1-MA": ma(1),
    "10-MA": ma(10),
    "HW": hw(),
    "HW-LSO": with_lso(hw()),
}


# ----------------------------------------------------------------------
# Per-trace RMSRE helpers
# ----------------------------------------------------------------------


def trace_rmsre(
    trace: Trace,
    factory: PredictorFactory,
    small_window: bool = False,
    exclude_outliers: bool = False,
) -> float:
    """One predictor's RMSRE over one trace."""
    series = trace.throughput_series(small_window=small_window)
    lso_config = LsoConfig() if exclude_outliers else None
    evaluation = evaluate_predictor(series, factory, lso_config=lso_config)
    return evaluation.rmsre(exclude_outliers=exclude_outliers)


def rmsre_per_trace(
    dataset: Dataset, factory: PredictorFactory, small_window: bool = False
) -> list[float]:
    """RMSREs of one predictor across all traces of the dataset."""
    values = [
        trace_rmsre(trace, factory, small_window=small_window) for trace in dataset
    ]
    if not values:
        raise DataError("dataset has no traces")
    return values


# ----------------------------------------------------------------------
# Fig. 15 — exemplar traces with shifts / trends / outliers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExemplarTrace:
    """One Fig. 15 panel: a trace and its per-predictor RMSREs."""

    trace_name: str
    n_level_shifts: int
    n_outliers: int
    rmsres: dict[str, float]


def exemplar_traces(
    dataset: Dataset,
    predictors: dict[str, PredictorFactory] | None = None,
    max_examples: int = 3,
) -> list[ExemplarTrace]:
    """Fig. 15: traces exhibiting level shifts and outliers, with the
    RMSRE of each candidate predictor.

    Traces are ranked by how much LSO structure they contain (shifts
    first, then outliers), mirroring the three exemplar panels.
    """
    if predictors is None:
        predictors = {
            "10-MA": ma(10),
            "10-MA-LSO": with_lso(ma(10)),
            "0.8-EWMA": ewma(0.8),
            "HW": hw(),
            "HW-LSO": with_lso(hw()),
        }
    scored = []
    for trace in dataset:
        series = trace.throughput_series()
        seg = lso_segmentation(series.values)
        score = 10 * len(seg.shift_indices) + len(seg.outlier_indices)
        if score == 0:
            continue
        scored.append((score, trace, seg))
    scored.sort(key=lambda item: -item[0])
    if not scored:
        raise DataError("no traces with level shifts or outliers found")

    examples = []
    for _, trace, seg in scored[:max_examples]:
        series = trace.throughput_series()
        examples.append(
            ExemplarTrace(
                trace_name=series.name,
                n_level_shifts=len(seg.shift_indices),
                n_outliers=len(seg.outlier_indices),
                rmsres={
                    name: rmsre(
                        evaluate_predictor(series, factory).valid_errors
                    )
                    for name, factory in predictors.items()
                },
            )
        )
    return examples


# ----------------------------------------------------------------------
# Figs. 16-17 — predictor families with and without LSO
# ----------------------------------------------------------------------


def predictor_cdfs(
    dataset: Dataset, predictors: dict[str, PredictorFactory]
) -> dict[str, Cdf]:
    """CDF of per-trace RMSRE for each candidate predictor.

    Figs. 16 and 17 are exactly this, for MA and HW families.
    """
    return {
        name: Cdf.from_values(rmsre_per_trace(dataset, factory), label=name)
        for name, factory in predictors.items()
    }


def ma_family(orders: tuple[int, ...] = (1, 5, 10, 20)) -> dict[str, PredictorFactory]:
    """Fig. 16's predictor set: n-MA with and without LSO."""
    family: dict[str, PredictorFactory] = {}
    for order in orders:
        family[f"{order}-MA"] = ma(order)
        family[f"{order}-MA-LSO"] = with_lso(ma(order))
    return family


def hw_family(
    alphas: tuple[float, ...] = (0.2, 0.5, 0.8)
) -> dict[str, PredictorFactory]:
    """Fig. 17's predictor set: alpha-HW with and without LSO."""
    family: dict[str, PredictorFactory] = {}
    for alpha in alphas:
        family[f"{alpha:g}-HW"] = hw(alpha)
        family[f"{alpha:g}-HW-LSO"] = with_lso(hw(alpha))
    return family


# ----------------------------------------------------------------------
# Fig. 18 — LSO parameter sensitivity
# ----------------------------------------------------------------------


def lso_sensitivity(
    dataset: Dataset,
    order: int = 5,
    chi_values: tuple[float, ...] = (0.2, 0.3, 0.4),
    psi_values: tuple[float, ...] = (0.3, 0.4, 0.5),
) -> dict[str, Cdf]:
    """Fig. 18: |E| CDFs for MA-LSO under different chi/psi settings."""
    cdfs: dict[str, Cdf] = {}
    for chi in chi_values:
        for psi in psi_values:
            config = LsoConfig(level_shift_threshold=chi, outlier_threshold=psi)
            abs_errors: list[float] = []
            for trace in dataset:
                series = trace.throughput_series()
                evaluation = evaluate_predictor(
                    series, with_lso(ma(order), config)
                )
                abs_errors.extend(np.abs(evaluation.valid_errors).tolist())
            label = f"chi={chi:g}, psi={psi:g}"
            cdfs[label] = Cdf.from_values(abs_errors, label=label)
    return cdfs


# ----------------------------------------------------------------------
# Fig. 19 — FB vs HB per-trace RMSRE
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FbHbComparison:
    """Fig. 19: per-trace RMSRE CDFs of the FB and an HB predictor."""

    fb: Cdf
    hb: Cdf

    def summary(self) -> str:
        return "\n".join(
            [
                self.fb.summary(),
                self.hb.summary(),
                f"HB RMSRE < 0.4 for {self.hb.fraction_below(0.4):.0%} of traces "
                f"(FB: {self.fb.fraction_below(0.4):.0%})",
            ]
        )


def fb_vs_hb(
    dataset: Dataset, hb_factory: PredictorFactory | None = None
) -> FbHbComparison:
    """Fig. 19: FB against HB (HW-LSO by default), per-trace RMSRE."""
    hb_factory = hb_factory or with_lso(hw())
    fb_predictor = FormulaBasedPredictor(tcp=TcpParameters.congestion_limited())
    fb_rmsres, hb_rmsres = [], []
    for trace in dataset:
        errors = [predict_epoch(e, fb_predictor).error for e in trace]
        fb_rmsres.append(rmsre(errors))
        hb_rmsres.append(trace_rmsre(trace, hb_factory))
    return FbHbComparison(
        fb=Cdf.from_values(fb_rmsres, label="FB per-trace RMSRE"),
        hb=Cdf.from_values(hb_rmsres, label="HB (HW-LSO) per-trace RMSRE"),
    )


# ----------------------------------------------------------------------
# Fig. 20 — RMSRE vs CoV
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CovRelation:
    """Fig. 20: per-trace (CoV, RMSRE) pairs and their correlation."""

    covs: np.ndarray
    rmsres: np.ndarray

    def correlation(self) -> float:
        return pearson_correlation(self.covs, self.rmsres)


def cov_correlation(
    dataset: Dataset, hb_factory: PredictorFactory | None = None
) -> CovRelation:
    """Fig. 20: HW-LSO RMSRE against the trace CoV.

    The CoV is computed per Section 6.1.3: stationary segments between
    detected level shifts, outliers excluded, weighted by segment
    length; the RMSRE likewise excludes outlier epochs.
    """
    hb_factory = hb_factory or with_lso(hw())
    covs, rmsres_ = [], []
    for trace in dataset:
        series = trace.throughput_series()
        seg = lso_segmentation(series.values)
        try:
            covs.append(seg.weighted_cov())
        except DataError:
            continue
        rmsres_.append(
            trace_rmsre(trace, hb_factory, exclude_outliers=True)
        )
    if len(covs) < 2:
        raise DataError("not enough traces for the CoV relation")
    return CovRelation(covs=np.asarray(covs), rmsres=np.asarray(rmsres_))


# ----------------------------------------------------------------------
# Fig. 21 — path predictability classes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PathClass:
    """One path's per-trace RMSREs and its predictability class."""

    path_id: str
    rmsres_by_predictor: dict[str, list[float]]
    mean_rmsre: float
    rmsre_std: float
    label: str


#: Class thresholds (mean RMSRE, std of RMSRE across traces) chosen to
#: mirror the paper's four Fig. 21 panels.
CLASS_THRESHOLDS = {
    "predictable": (0.25, np.inf),
    "stable-errors": (0.6, 0.15),
    "varying-errors": (0.6, np.inf),
    "unpredictable": (np.inf, np.inf),
}


def classify_path(mean_rmsre: float, rmsre_std: float) -> str:
    """The paper's four-way predictability classification."""
    if mean_rmsre < 0.25:
        return "predictable"
    if mean_rmsre < 0.6:
        return "stable-errors" if rmsre_std < 0.15 else "varying-errors"
    return "unpredictable"


def path_classes(
    dataset: Dataset, predictors: dict[str, PredictorFactory] | None = None
) -> list[PathClass]:
    """Fig. 21: per-path, per-trace RMSRE for the standard predictor set,
    plus the four-way predictability class (based on HW-LSO)."""
    predictors = predictors or FIG21_PREDICTORS
    classes = []
    for path_id in dataset.path_ids:
        traces = dataset.traces_for(path_id)
        by_predictor = {
            name: [trace_rmsre(t, factory) for t in traces]
            for name, factory in predictors.items()
        }
        reference = by_predictor.get("HW-LSO") or next(iter(by_predictor.values()))
        mean_rmsre = float(np.mean(reference))
        rmsre_std = float(np.std(reference))
        classes.append(
            PathClass(
                path_id=path_id,
                rmsres_by_predictor=by_predictor,
                mean_rmsre=mean_rmsre,
                rmsre_std=rmsre_std,
                label=classify_path(mean_rmsre, rmsre_std),
            )
        )
    return classes


# ----------------------------------------------------------------------
# Section 6.1.4 — HB error vs path loss rate on lossy paths
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LossyPathRelation:
    """Per-path (mean a priori loss rate, mean HB RMSRE) pairs.

    Section 6.1.4: across *all* paths no path metric explained HB
    accuracy, except on paths with a priori loss above 0.5%, where the
    RMSRE correlates strongly with the loss rate (0.72-0.94).
    """

    loss_rates: np.ndarray
    rmsres: np.ndarray
    path_ids: tuple[str, ...]

    def correlation(self) -> float:
        return pearson_correlation(self.loss_rates, self.rmsres)


def lossy_path_correlation(
    dataset: Dataset,
    min_loss: float = 0.005,
    hb_factory: PredictorFactory | None = None,
) -> LossyPathRelation:
    """Section 6.1.4: RMSRE vs a priori loss rate, lossy paths only.

    A path qualifies when its mean a priori loss rate exceeds
    ``min_loss`` (the paper's 0.5% threshold).

    Raises:
        DataError: when fewer than three paths qualify.
    """
    hb_factory = hb_factory or with_lso(hw())
    loss_rates, rmsres_, ids = [], [], []
    for path_id in dataset.path_ids:
        epochs = dataset.epochs(path_id)
        mean_loss = float(np.mean([e.phat for e in epochs]))
        if mean_loss < min_loss:
            continue
        traces = dataset.traces_for(path_id)
        loss_rates.append(mean_loss)
        rmsres_.append(float(np.mean([trace_rmsre(t, hb_factory) for t in traces])))
        ids.append(path_id)
    if len(ids) < 3:
        raise DataError(
            f"only {len(ids)} paths with mean a priori loss above {min_loss}"
        )
    return LossyPathRelation(
        loss_rates=np.asarray(loss_rates),
        rmsres=np.asarray(rmsres_),
        path_ids=tuple(ids),
    )


# ----------------------------------------------------------------------
# Fig. 22 — HB accuracy for window-limited flows
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HbWindowComparison:
    """One path's HB RMSRE under both window settings (Fig. 22)."""

    path_id: str
    rmsre_large_window: float
    rmsre_small_window: float


def window_limited_hb(
    dataset: Dataset, hb_factory: PredictorFactory | None = None
) -> list[HbWindowComparison]:
    """Fig. 22: HB RMSRE on W = 1 MB vs W = 20 KB series, per path."""
    hb_factory = hb_factory or with_lso(hw())
    comparisons = []
    for path_id in dataset.path_ids:
        traces = dataset.traces_for(path_id)
        try:
            large = [trace_rmsre(t, hb_factory) for t in traces]
            small = [
                trace_rmsre(t, hb_factory, small_window=True) for t in traces
            ]
        except DataError:
            continue
        comparisons.append(
            HbWindowComparison(
                path_id=path_id,
                rmsre_large_window=float(np.mean(large)),
                rmsre_small_window=float(np.mean(small)),
            )
        )
    if not comparisons:
        raise DataError("dataset has no small-window measurements")
    return comparisons


# ----------------------------------------------------------------------
# Fig. 23 — the effect of the transfer interval
# ----------------------------------------------------------------------


def interval_effect(
    dataset: Dataset,
    downsample_factors: dict[str, int] | None = None,
    hb_factory: PredictorFactory | None = None,
) -> dict[str, Cdf]:
    """Fig. 23: per-trace RMSRE CDFs at longer transfer intervals.

    The paper down-samples its ~3-minute traces to 6, 24, and 45-minute
    periods; with the default factors the same intervals result here.
    """
    hb_factory = hb_factory or with_lso(hw())
    downsample_factors = downsample_factors or {
        "3min": 1,
        "6min": 2,
        "24min": 8,
        "45min": 15,
    }
    cdfs: dict[str, Cdf] = {}
    for label, factor in downsample_factors.items():
        rmsres_ = []
        for trace in dataset:
            series = trace.throughput_series().downsample(factor)
            if len(series) < 5:
                continue
            evaluation = evaluate_predictor(series, hb_factory)
            if evaluation.valid_errors.size == 0:
                continue
            rmsres_.append(rmsre(evaluation.valid_errors))
        if not rmsres_:
            raise DataError(f"no traces long enough for factor {factor}")
        cdfs[label] = Cdf.from_values(rmsres_, label=f"interval {label}")
    return cdfs
