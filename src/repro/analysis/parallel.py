"""Parallel warm-up of the HB evaluation cache for ``repro-analyze``.

The HB figures (16, 17, 19-23) spend nearly all their time inside
:func:`~repro.hb.evaluate.evaluate_predictor`, and every one of those
walks is a pure function of ``(trace series, predictor spec,
LsoConfig)`` — the same independence the campaign executor exploits for
simulation.  This module makes that explicit:

* :func:`plan_units` derives, from the requested figure numbers, the
  exact set of :class:`EvalUnit` evaluations the figure renderers will
  ask for — by instantiating the same factory helpers the renderers use
  (:func:`~repro.analysis.hb_eval.ma_family` and friends) and reducing
  them to cache specs with :func:`~repro.analysis.evalcache.derive_spec`;
* :func:`warm_eval_cache` executes the units that are not already
  cached — serially, or fanned out per trace over a
  ``ProcessPoolExecutor`` (``--workers N``) — and records every result
  in the :class:`~repro.analysis.evalcache.EvaluationCache`.

The figure phase then runs unchanged with the cache activated: each
``evaluate_predictor`` call hits the warm entry, and the rendered
output is byte-identical to a serial, cache-less run (``make
analyze-parity`` proves this at workers 1, 2, and 4).

Telemetry determinism follows the campaign executor's discipline:
worker collectors are drained per unit, shipped back with the result,
and merged in planned-unit order — so counters like
``hb.level_shifts`` and the event stream are identical whatever the
worker count or scheduling.  A worker-pool failure
(``BrokenProcessPool``) degrades to in-process execution of the
remaining units rather than failing the analysis.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.analysis import hb_eval
from repro.analysis.evalcache import (
    EvaluationCache,
    PredictorSpec,
    derive_spec,
    evaluation_key,
    spec_factory,
)
from repro.core.errors import DataError
from repro.core.timeseries import TimeSeries
from repro.hb.evaluate import HbEvaluation, evaluate_predictor
from repro.hb.lso import LsoConfig
from repro.hb.vector_eval import ENV_HB_VECTOR
from repro.obs import get_telemetry
from repro.paths.records import Dataset
from repro.testbed.executor import resolve_workers


@dataclass(frozen=True)
class EvalUnit:
    """One independent HB evaluation a figure will need.

    Attributes:
        trace_ordinal: index of the trace in ``dataset.traces``.
        small_window: evaluate the W=20 KB companion series (Fig. 22).
        downsample: keep every n-th sample first (Fig. 23); 1 = none.
        spec: the predictor spec (see :func:`derive_spec`).
        lso: LSO config for outlier exclusion, or ``None``.
    """

    trace_ordinal: int
    small_window: bool
    downsample: int
    spec: PredictorSpec
    lso: LsoConfig | None


#: (small_window, downsample, lso_config) shape of a unit; the specs
#: come from the figure's factory set.
_Shape = tuple[bool, int, LsoConfig | None]


def _spec_of(factory) -> PredictorSpec:
    spec = derive_spec(factory())
    assert spec is not None, "figure factories are registered families"
    return spec


def _figure_combos(figures: list[int]) -> list[tuple[PredictorSpec, _Shape]]:
    """The (spec, shape) combinations the requested figures evaluate.

    Mirrors the renderers in :mod:`repro.cli.analyze` figure by figure;
    a figure with no HB walks contributes nothing.  Order is stable and
    duplicates are dropped so the unit plan is deterministic.
    """
    combos: dict[tuple[PredictorSpec, _Shape], None] = {}

    def add(factory, small_window=False, downsample=1, lso=None) -> None:
        combos[(_spec_of(factory), (small_window, downsample, lso))] = None

    hw_lso = hb_eval.with_lso(hb_eval.hw())
    for number in figures:
        if number == 16:
            for factory in hb_eval.ma_family().values():
                add(factory)
        elif number == 17:
            for factory in hb_eval.hw_family().values():
                add(factory)
        elif number == 19:
            add(hw_lso)
        elif number == 20:
            add(hw_lso, lso=LsoConfig())
        elif number == 21:
            for factory in hb_eval.FIG21_PREDICTORS.values():
                add(factory)
        elif number == 22:
            add(hw_lso)
            add(hw_lso, small_window=True)
        elif number == 23:
            for factor in (1, 2, 8, 15):
                add(hw_lso, downsample=factor)
    return list(combos)


def plan_units(dataset: Dataset, figures: list[int]) -> list[EvalUnit]:
    """Every HB evaluation the requested figures will perform.

    Trace-major order: all of one trace's units are adjacent, so
    parallel jobs (one per trace) and the serial path walk the same
    sequence — which is also the telemetry merge order.
    """
    combos = _figure_combos(figures)
    units: list[EvalUnit] = []
    for ordinal in range(len(dataset.traces)):
        for spec, (small_window, downsample, lso) in combos:
            units.append(
                EvalUnit(
                    trace_ordinal=ordinal,
                    small_window=small_window,
                    downsample=downsample,
                    spec=spec,
                    lso=lso,
                )
            )
    return units


def _unit_series(dataset: Dataset, unit: EvalUnit) -> TimeSeries | None:
    """The series a unit evaluates, or ``None`` when the trace lacks it
    (e.g. no small-window measurements — the renderer skips it too)."""
    trace = dataset.traces[unit.trace_ordinal]
    try:
        series = trace.throughput_series(small_window=unit.small_window)
    except DataError:
        return None
    if unit.downsample > 1:
        series = series.downsample(unit.downsample)
    return series


def _evaluate_unit(dataset: Dataset, unit: EvalUnit) -> HbEvaluation | None:
    """Compute one unit fresh (never consults the active cache — the
    warm phase runs before activation, and workers install none)."""
    series = _unit_series(dataset, unit)
    if series is None:
        return None
    try:
        return evaluate_predictor(series, spec_factory(unit.spec), lso_config=unit.lso)
    except DataError:
        # An undevaluable series reads as "nothing to warm"; the figure
        # phase surfaces the error through its own skip handling.
        return None


@dataclass(frozen=True)
class WarmStats:
    """What one :func:`warm_eval_cache` pass did.

    Attributes:
        planned: units the requested figures will evaluate.
        cached: units already present in the cache (skipped).
        computed: units evaluated and recorded this pass.
        workers: resolved worker count used for the computed units.
    """

    planned: int
    cached: int
    computed: int
    workers: int


# ---------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------

_WORKER_DATASET: Dataset | None = None


def _init_worker(dataset_path: str, hb_engine_env: str) -> None:
    """Pool initializer: load the dataset once per worker process.

    The HB engine selection is shipped explicitly so a ``spawn``-started
    worker agrees with the parent even though it re-imports everything.
    """
    global _WORKER_DATASET
    from repro.testbed.io import load_dataset

    os.environ[ENV_HB_VECTOR] = hb_engine_env
    _WORKER_DATASET = load_dataset(dataset_path)
    get_telemetry().drain()


def _run_trace_job(
    units: tuple[EvalUnit, ...]
) -> list[tuple[HbEvaluation | None, dict]]:
    """Worker entry point: evaluate one trace's pending units.

    Telemetry is drained per unit so the parent can merge snapshots in
    planned-unit order regardless of how jobs landed on workers.
    """
    assert _WORKER_DATASET is not None, "pool initializer did not run"
    telemetry = get_telemetry()
    telemetry.drain()  # leftovers from a failed prior job in this worker
    results = []
    for unit in units:
        evaluation = _evaluate_unit(_WORKER_DATASET, unit)
        results.append((evaluation, telemetry.drain()))
    return results


# ---------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------


def _record(
    cache: EvaluationCache, dataset: Dataset, unit: EvalUnit, evaluation: HbEvaluation
) -> None:
    series = _unit_series(dataset, unit)
    assert series is not None  # an evaluation exists, so the series did
    cache.put(evaluation_key(series, unit.spec, unit.lso), evaluation)


def warm_eval_cache(
    dataset: Dataset,
    dataset_path: str,
    figures: list[int],
    cache: EvaluationCache,
    n_workers: int = 1,
) -> WarmStats:
    """Pre-compute every HB evaluation the requested figures need.

    Units already in ``cache`` are skipped (that is the warm-run win);
    the rest run serially or across ``n_workers`` processes (0 = all
    CPUs), with results recorded into the cache and worker telemetry
    merged in planned-unit order.  The figure phase afterwards — run
    with the cache activated — only takes hits, so its output is
    byte-identical to a cache-less serial run.
    """
    units = plan_units(dataset, figures)
    pending: list[EvalUnit] = []
    cached = 0
    for unit in units:
        series = _unit_series(dataset, unit)
        if series is None:
            continue
        if cache.get(evaluation_key(series, unit.spec, unit.lso)) is not None:
            cached += 1
            continue
        pending.append(unit)

    workers = resolve_workers(n_workers)
    if pending:
        if workers > 1 and len({u.trace_ordinal for u in pending}) > 1:
            _warm_parallel(dataset, dataset_path, pending, cache, workers)
        else:
            for unit in pending:
                evaluation = _evaluate_unit(dataset, unit)
                if evaluation is not None:
                    _record(cache, dataset, unit, evaluation)
    return WarmStats(
        planned=len(units), cached=cached, computed=len(pending), workers=workers
    )


def _warm_parallel(
    dataset: Dataset,
    dataset_path: str,
    pending: list[EvalUnit],
    cache: EvaluationCache,
    workers: int,
) -> None:
    """Fan pending units out per trace; merge results in planned order."""
    jobs: dict[int, list[EvalUnit]] = {}
    for unit in pending:
        jobs.setdefault(unit.trace_ordinal, []).append(unit)

    telemetry = get_telemetry()
    hb_engine_env = os.environ.get(ENV_HB_VECTOR, "1")
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(str(dataset_path), hb_engine_env),
        ) as pool:
            futures = [
                pool.submit(_run_trace_job, tuple(job_units))
                for job_units in jobs.values()
            ]
            # Collect in submission (= trace) order; nothing is merged
            # or recorded until every job has finished, so a pool crash
            # below leaves no partial state behind.
            job_results = [future.result() for future in futures]
    except BrokenProcessPool:
        telemetry.counter("analysis.pool_fallback").inc()
        telemetry.emit("analysis.pool_fallback", pending=len(pending))
        for unit in pending:
            evaluation = _evaluate_unit(dataset, unit)
            if evaluation is not None:
                _record(cache, dataset, unit, evaluation)
        return

    for job_units, results in zip(jobs.values(), job_results):
        for unit, (evaluation, snapshot) in zip(job_units, results):
            telemetry.merge(snapshot)
            if evaluation is not None:
                _record(cache, dataset, unit, evaluation)
