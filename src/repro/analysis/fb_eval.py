"""Formula-Based prediction accuracy: the analysis behind Figs. 2-14.

Every function here evaluates the FB predictor of Eq. (3) (or a variant)
over a dataset and aggregates the relative errors (Eq. 4) the way the
corresponding figure does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.errors import DataError
from repro.core.metrics import Cdf, pearson_correlation, relative_error, rmsre
from repro.obs import get_telemetry
from repro.formulas.fb_predictor import FormulaBasedPredictor
from repro.formulas.params import PathEstimates, TcpParameters
from repro.hb.moving_average import MovingAverage
from repro.paths.records import Dataset, EpochMeasurement


@dataclass(frozen=True)
class FbEpochResult:
    """FB prediction outcome for one epoch."""

    epoch: EpochMeasurement
    predicted_mbps: float
    error: float

    @property
    def lossy(self) -> bool:
        """True when the prediction used the PFTK branch (``phat > 0``)."""
        return not self.epoch.lossless


def predict_epoch(
    epoch: EpochMeasurement, predictor: FormulaBasedPredictor
) -> FbEpochResult:
    """Apply the FB predictor to one epoch's a priori measurements."""
    estimates = PathEstimates(
        rtt_s=epoch.that_s,
        loss_rate=epoch.phat,
        availbw_mbps=epoch.ahat_mbps,
    )
    tele = get_telemetry()
    if tele.enabled:
        started = perf_counter()
        predicted = predictor.predict(estimates)
        tele.metrics.timer("predict.wall_s", predictor="fb").observe(
            perf_counter() - started
        )
        tele.metrics.counter(
            "predictions.made",
            predictor="fb",
            regime="lossless" if epoch.lossless else "lossy",
        ).inc()
    else:
        predicted = predictor.predict(estimates)
    return FbEpochResult(
        epoch=epoch,
        predicted_mbps=predicted,
        error=relative_error(predicted, epoch.throughput_mbps),
    )


def evaluate(
    dataset: Dataset, predictor: FormulaBasedPredictor | None = None
) -> list[FbEpochResult]:
    """FB predictions for every epoch of the dataset."""
    predictor = predictor or FormulaBasedPredictor(
        tcp=TcpParameters.congestion_limited()
    )
    return [predict_epoch(epoch, predictor) for epoch in dataset.epochs()]


# ----------------------------------------------------------------------
# Fig. 2 — CDF of E for all / lossy / lossless predictions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorCdfs:
    """The three error CDFs of Fig. 2."""

    all: Cdf
    lossy: Cdf
    lossless: Cdf

    def summary(self) -> str:
        lines = [
            self.all.summary(),
            self.lossy.summary(),
            self.lossless.summary(),
            f"overestimation fraction: {self.all.fraction_above(0.0):.2f}",
            f"P(E >= 1):  {self.all.fraction_above(1.0 - 1e-12):.2f}",
            f"P(E >= 9):  {self.all.fraction_above(9.0 - 1e-12):.2f}",
            f"P(E <= -1): {self.all.fraction_below(-1.0):.2f}",
        ]
        return "\n".join(lines)


def error_cdfs(
    dataset: Dataset, predictor: FormulaBasedPredictor | None = None
) -> ErrorCdfs:
    """Fig. 2: the error CDFs for all, lossy, and lossless predictions."""
    results = evaluate(dataset, predictor)
    if not results:
        raise DataError("dataset has no epochs")
    all_errors = [r.error for r in results]
    lossy = [r.error for r in results if r.lossy]
    lossless = [r.error for r in results if not r.lossy]
    if not lossy or not lossless:
        raise DataError("dataset lacks lossy or lossless predictions")
    return ErrorCdfs(
        all=Cdf.from_values(all_errors, label="all predictions"),
        lossy=Cdf.from_values(lossy, label="lossy paths (PFTK)"),
        lossless=Cdf.from_values(lossless, label="lossless paths (avail-bw)"),
    )


# ----------------------------------------------------------------------
# Figs. 3-5 — RTT / loss rate increase during the target flow
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IncreaseCdfs:
    """Fig. 3: absolute increases; Figs. 4-5: relative increases."""

    rtt_absolute_s: Cdf
    loss_absolute: Cdf
    rtt_relative: Cdf
    loss_relative: Cdf
    mean_rtt_ratio: float
    mean_loss_ratio: float

    def summary(self) -> str:
        return "\n".join(
            [
                self.rtt_absolute_s.summary(),
                self.loss_absolute.summary(),
                self.rtt_relative.summary(),
                self.loss_relative.summary(),
                f"mean RTT ratio during/before: {self.mean_rtt_ratio:.2f}",
                f"mean loss ratio during/before: {self.mean_loss_ratio:.2f}",
            ]
        )


def increase_cdfs(dataset: Dataset) -> IncreaseCdfs:
    """Figs. 3-5: how much RTT and loss rose once the flow started.

    Relative loss increases are computed only over epochs that were lossy
    even before the transfer (``phat > 0``), as in the paper.
    """
    epochs = dataset.epochs()
    if not epochs:
        raise DataError("dataset has no epochs")
    rtt_abs = [e.ttilde_s - e.that_s for e in epochs]
    loss_abs = [e.ptilde - e.phat for e in epochs]
    rtt_rel = [(e.ttilde_s - e.that_s) / e.that_s for e in epochs]
    lossy = [e for e in epochs if e.phat > 0]
    if not lossy:
        raise DataError("no lossy epochs for relative loss increase")
    loss_rel = [(e.ptilde - e.phat) / e.phat for e in lossy]
    rtt_ratios = [e.ttilde_s / e.that_s for e in epochs]
    loss_ratios = [e.ptilde / e.phat for e in lossy]
    return IncreaseCdfs(
        rtt_absolute_s=Cdf.from_values(rtt_abs, label="RTT increase (s)"),
        loss_absolute=Cdf.from_values(loss_abs, label="loss increase"),
        rtt_relative=Cdf.from_values(rtt_rel, label="relative RTT increase"),
        loss_relative=Cdf.from_values(loss_rel, label="relative loss increase"),
        mean_rtt_ratio=float(np.mean(rtt_ratios)),
        mean_loss_ratio=float(np.mean(loss_ratios)),
    )


# ----------------------------------------------------------------------
# Fig. 6 — prediction using during-flow (T~, p~) instead of (T^, p^)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DuringFlowComparison:
    """Fig. 6: error CDFs with a priori vs during-flow inputs."""

    with_prior: Cdf
    with_during: Cdf

    def summary(self) -> str:
        return "\n".join(
            [
                self.with_prior.summary(),
                self.with_during.summary(),
                "during-flow |E| median: "
                f"{np.median(np.abs(self.with_during.sorted_values)):.2f} vs "
                f"prior {np.median(np.abs(self.with_prior.sorted_values)):.2f}",
            ]
        )


def during_flow_prediction(
    dataset: Dataset, predictor: FormulaBasedPredictor | None = None
) -> DuringFlowComparison:
    """Fig. 6: how much better FB would be with during-flow estimates.

    Restricted to epochs that are lossy both before and during the flow,
    as the figure is.
    """
    predictor = predictor or FormulaBasedPredictor(
        tcp=TcpParameters.congestion_limited()
    )
    prior_errors, during_errors = [], []
    for epoch in dataset.epochs():
        if epoch.phat <= 0 or epoch.ptilde <= 0:
            continue
        prior = predictor.predict(
            PathEstimates(
                rtt_s=epoch.that_s,
                loss_rate=epoch.phat,
                availbw_mbps=epoch.ahat_mbps,
            )
        )
        during = predictor.predict(
            PathEstimates(
                rtt_s=epoch.ttilde_s,
                loss_rate=epoch.ptilde,
                availbw_mbps=epoch.ahat_mbps,
            )
        )
        prior_errors.append(relative_error(prior, epoch.throughput_mbps))
        during_errors.append(relative_error(during, epoch.throughput_mbps))
    if not prior_errors:
        raise DataError("no epochs lossy both before and during the flow")
    return DuringFlowComparison(
        with_prior=Cdf.from_values(prior_errors, label="using (T^, p^)"),
        with_during=Cdf.from_values(during_errors, label="using (T~, p~)"),
    )


# ----------------------------------------------------------------------
# Fig. 7 — per-path error percentiles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PathErrorSummary:
    """Per-path error percentiles (one bar of Fig. 7)."""

    path_id: str
    median: float
    p10: float
    p90: float
    n: int


def per_path_percentiles(
    dataset: Dataset, predictor: FormulaBasedPredictor | None = None
) -> list[PathErrorSummary]:
    """Fig. 7: median and 10/90th percentiles of E per path."""
    predictor = predictor or FormulaBasedPredictor(
        tcp=TcpParameters.congestion_limited()
    )
    summaries = []
    for path_id in dataset.path_ids:
        errors = [
            predict_epoch(e, predictor).error for e in dataset.epochs(path_id)
        ]
        if not errors:
            continue
        arr = np.asarray(errors)
        summaries.append(
            PathErrorSummary(
                path_id=path_id,
                median=float(np.median(arr)),
                p10=float(np.quantile(arr, 0.10)),
                p90=float(np.quantile(arr, 0.90)),
                n=len(errors),
            )
        )
    return summaries


# ----------------------------------------------------------------------
# Figs. 8-10 — scatter relations of E with R, p^, T^
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScatterRelation:
    """A scatter of E against a covariate, with the paper's statistics."""

    x: np.ndarray
    errors: np.ndarray
    x_label: str

    def correlation(self) -> float:
        """Pearson correlation between the covariate and E."""
        return pearson_correlation(self.x, self.errors)

    def fraction_large_error(
        self, x_threshold: float, error_threshold: float = 10.0, below: bool = True
    ) -> float:
        """P(E > error_threshold) among samples with x below/above a cut.

        Fig. 8's headline: 42% of samples with R <= 0.5 Mbps have E > 10.
        """
        mask = self.x <= x_threshold if below else self.x > x_threshold
        if not mask.any():
            raise DataError(f"no samples with {self.x_label} on that side")
        return float((self.errors[mask] > error_threshold).mean())


def throughput_vs_error(
    dataset: Dataset, predictor: FormulaBasedPredictor | None = None
) -> ScatterRelation:
    """Fig. 8: actual throughput versus prediction error."""
    results = evaluate(dataset, predictor)
    return ScatterRelation(
        x=np.asarray([r.epoch.throughput_mbps for r in results]),
        errors=np.asarray([r.error for r in results]),
        x_label="R (Mbps)",
    )


def loss_vs_error(
    dataset: Dataset, predictor: FormulaBasedPredictor | None = None
) -> ScatterRelation:
    """Fig. 9: a priori loss rate versus error (lossy epochs only)."""
    results = [r for r in evaluate(dataset, predictor) if r.lossy]
    if not results:
        raise DataError("no lossy epochs")
    return ScatterRelation(
        x=np.asarray([r.epoch.phat for r in results]),
        errors=np.asarray([r.error for r in results]),
        x_label="p^",
    )


def rtt_vs_error(
    dataset: Dataset, predictor: FormulaBasedPredictor | None = None
) -> ScatterRelation:
    """Fig. 10: a priori RTT versus error."""
    results = evaluate(dataset, predictor)
    return ScatterRelation(
        x=np.asarray([r.epoch.that_s for r in results]),
        errors=np.asarray([r.error for r in results]),
        x_label="T^ (s)",
    )


# ----------------------------------------------------------------------
# Section 4.2.4 — drill-down into the worst paths
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorstPathsAnalysis:
    """The paper's analysis of its 10 highest-median-error paths.

    Attributes:
        worst_path_ids: paths ranked by median error, worst first.
        lossy_fraction_worst: share of PFTK-based (lossy) predictions on
            those paths (the paper: 77%).
        lossy_fraction_all: the same share across all paths (paper: 56%).
        mean_loss_ratio_worst: during/before loss ratio on the worst
            paths — the paper observes the loss rate "increases
            significantly after the target flow starts" there.
        mean_rtt_ratio_worst: during/before RTT ratio on the worst paths
            — the paper observes no significant RTT increase.
    """

    worst_path_ids: tuple[str, ...]
    lossy_fraction_worst: float
    lossy_fraction_all: float
    mean_loss_ratio_worst: float
    mean_rtt_ratio_worst: float

    def summary(self) -> str:
        return (
            f"worst paths: {list(self.worst_path_ids)}\n"
            f"lossy-prediction share: {self.lossy_fraction_worst:.2f} on worst "
            f"paths vs {self.lossy_fraction_all:.2f} overall (paper: 0.77 vs 0.56)\n"
            f"on worst paths, during/before ratios: loss x"
            f"{self.mean_loss_ratio_worst:.1f}, RTT x{self.mean_rtt_ratio_worst:.2f}"
        )


def worst_paths_analysis(
    dataset: Dataset,
    n_worst: int = 10,
    predictor: FormulaBasedPredictor | None = None,
) -> WorstPathsAnalysis:
    """Section 4.2.4: what distinguishes the worst-predicted paths.

    The paper's finding: the largest errors come from paths that were
    congested *before* the target transfer — their predictions are
    disproportionately PFTK-based, and the loss rate (not the RTT)
    climbs once the flow starts.
    """
    summaries = per_path_percentiles(dataset, predictor)
    if len(summaries) < n_worst:
        raise DataError(f"need at least {n_worst} paths, have {len(summaries)}")
    ranked = sorted(summaries, key=lambda s: -s.median)
    worst_ids = tuple(s.path_id for s in ranked[:n_worst])

    all_epochs = dataset.epochs()
    worst_epochs = [e for e in all_epochs if e.path_id in worst_ids]
    lossy_worst = [e for e in worst_epochs if e.phat > 0]
    loss_ratios = [e.ptilde / e.phat for e in lossy_worst]
    rtt_ratios = [e.ttilde_s / e.that_s for e in worst_epochs]
    return WorstPathsAnalysis(
        worst_path_ids=worst_ids,
        lossy_fraction_worst=len(lossy_worst) / len(worst_epochs),
        lossy_fraction_all=sum(e.phat > 0 for e in all_epochs) / len(all_epochs),
        mean_loss_ratio_worst=float(np.mean(loss_ratios)) if loss_ratios else 1.0,
        mean_rtt_ratio_worst=float(np.mean(rtt_ratios)),
    )


# ----------------------------------------------------------------------
# Fig. 11 — prediction accuracy for different transfer lengths
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DurationEffect:
    """Fig. 11: error CDFs for each transfer-duration cut."""

    cdfs: dict[str, Cdf] = field(default_factory=dict)

    def summary(self) -> str:
        return "\n".join(cdf.summary() for cdf in self.cdfs.values())


def duration_effect(
    dataset: Dataset,
    cut_labels: tuple[str, ...] = ("30s", "60s", "120s"),
    predictor: FormulaBasedPredictor | None = None,
) -> DurationEffect:
    """Fig. 11: FB error against the first 30/60/120 s of each transfer.

    Requires a dataset collected with checkpoint fractions (the March
    2006 campaign settings).
    """
    predictor = predictor or FormulaBasedPredictor(
        tcp=TcpParameters.congestion_limited()
    )
    per_cut: dict[str, list[float]] = {label: [] for label in cut_labels}
    for epoch in dataset.epochs():
        if len(epoch.duration_throughputs_mbps) != len(cut_labels):
            continue
        predicted = predictor.predict(
            PathEstimates(
                rtt_s=epoch.that_s,
                loss_rate=epoch.phat,
                availbw_mbps=epoch.ahat_mbps,
            )
        )
        for label, throughput in zip(cut_labels, epoch.duration_throughputs_mbps):
            per_cut[label].append(relative_error(predicted, throughput))
    if not any(per_cut.values()):
        raise DataError("dataset has no duration checkpoints (need the 2006 set)")
    return DurationEffect(
        cdfs={
            label: Cdf.from_values(errors, label=f"E at {label}")
            for label, errors in per_cut.items()
        }
    )


# ----------------------------------------------------------------------
# Fig. 12 — window-limited vs congestion-limited RMSRE per path
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WindowLimitedComparison:
    """One path's RMSRE under both window settings (a Fig. 12 pair)."""

    path_id: str
    rmsre_large_window: float
    rmsre_small_window: float
    window_limited: bool
    window_availbw_ratio: float


def window_limited(
    dataset: Dataset,
    large_tcp: TcpParameters | None = None,
    small_tcp: TcpParameters | None = None,
) -> list[WindowLimitedComparison]:
    """Fig. 12: FB RMSRE with W = 1 MB vs W = 20 KB, per path.

    A path counts as window-limited when the median ratio
    ``(W/T^) / A^`` across its epochs is below 1.
    """
    large_tcp = large_tcp or TcpParameters.congestion_limited()
    small_tcp = small_tcp or TcpParameters.window_limited()
    fb_large = FormulaBasedPredictor(tcp=large_tcp)
    fb_small = FormulaBasedPredictor(tcp=small_tcp)

    comparisons = []
    for path_id in dataset.path_ids:
        epochs = [
            e for e in dataset.epochs(path_id) if e.smallw_throughput_mbps is not None
        ]
        if not epochs:
            continue
        large_errors, small_errors, ratios = [], [], []
        for e in epochs:
            estimates = PathEstimates(
                rtt_s=e.that_s, loss_rate=e.phat, availbw_mbps=e.ahat_mbps
            )
            large_errors.append(
                relative_error(fb_large.predict(estimates), e.throughput_mbps)
            )
            small_errors.append(
                relative_error(
                    fb_small.predict(estimates), e.smallw_throughput_mbps
                )
            )
            window_mbps = small_tcp.max_window_bytes * 8 / e.that_s / 1e6
            ratios.append(window_mbps / e.ahat_mbps)
        ratio = float(np.median(ratios))
        comparisons.append(
            WindowLimitedComparison(
                path_id=path_id,
                rmsre_large_window=rmsre(large_errors),
                rmsre_small_window=rmsre(small_errors),
                window_limited=ratio < 1.0,
                window_availbw_ratio=ratio,
            )
        )
    if not comparisons:
        raise DataError("dataset has no small-window measurements")
    return comparisons


# ----------------------------------------------------------------------
# Fig. 13 — the revised PFTK model
# ----------------------------------------------------------------------


def revised_model_comparison(dataset: Dataset) -> dict[str, Cdf]:
    """Fig. 13: error CDFs of the original vs revised PFTK predictors."""
    tcp = TcpParameters.congestion_limited()
    return {
        name: Cdf.from_values(
            [r.error for r in evaluate(dataset, FormulaBasedPredictor(tcp=tcp, model=model))],
            label=name,
        )
        for name, model in [("original PFTK", "pftk"), ("revised PFTK", "pftk-revised")]
    }


# ----------------------------------------------------------------------
# Fig. 14 — history-smoothed RTT and loss inputs
# ----------------------------------------------------------------------


def smoothed_inputs(dataset: Dataset, ma_order: int = 10) -> dict[str, Cdf]:
    """Fig. 14: FB with MA-smoothed (T^, p^) inputs vs the plain FB.

    The smoothing is a per-trace moving average over the last
    ``ma_order`` epochs' measurements, as in the paper.
    """
    predictor = FormulaBasedPredictor(tcp=TcpParameters.congestion_limited())
    plain_errors, smoothed_errors = [], []
    for trace in dataset:
        rtt_ma = MovingAverage(ma_order)
        loss_ma = MovingAverage(ma_order)
        for epoch in trace:
            plain_errors.append(predict_epoch(epoch, predictor).error)
            if rtt_ma.ready:
                estimates = PathEstimates(
                    rtt_s=rtt_ma.forecast(),
                    loss_rate=max(0.0, loss_ma.forecast()),
                    availbw_mbps=epoch.ahat_mbps,
                )
                smoothed_errors.append(
                    relative_error(
                        predictor.predict(estimates), epoch.throughput_mbps
                    )
                )
            rtt_ma.update(epoch.that_s)
            loss_ma.update(epoch.phat)
    if not smoothed_errors:
        raise DataError("traces too short for smoothed inputs")
    return {
        "plain": Cdf.from_values(plain_errors, label="latest measurements"),
        "smoothed": Cdf.from_values(smoothed_errors, label=f"{ma_order}-MA smoothed"),
    }
