"""Content-addressed cache of walk-forward HB evaluations.

The figure benches of ``repro-analyze`` and the MA-order / EWMA-alpha /
chi-psi grid sweeps evaluate many *identical* (trace, predictor,
LsoConfig) triples — Fig. 21's ``10-MA`` walk is Fig. 16's, Fig. 22's
large-window HW-LSO walk is Fig. 19's, and so on.  This cache keys one
:class:`~repro.hb.evaluate.HbEvaluation` on everything that determines
it:

* the SHA-256 of the trace's sample bytes (plus its name and length —
  the name is baked into the cached result),
* the predictor *spec* — family tag and constructor parameters derived
  from a predictor instance by :func:`derive_spec` (exact type matches
  only: a subclass may override anything, so it never shares a spec
  with the family it inherits from),
* the :class:`~repro.hb.lso.LsoConfig` used for outlier exclusion (or
  ``None``), and
* the package version, so stale entries from older releases are never
  served.

Entries live in a directory of ``.npz`` files (default
``~/.cache/repro/evals``, overridden by ``REPRO_EVAL_CACHE_DIR``), each
holding the prediction/error arrays bit-exactly, with an in-process
memo dict layered on top so a figure suite pays the disk read once per
entry.  The same robustness rules as the dataset cache
(:mod:`repro.testbed.cache`) apply: atomic writes, and corrupt entries
quarantined as ``*.corrupt`` misses rather than errors.  Unlike the
dataset cache, lookups emit no per-entry events (a figure suite makes
thousands — counters ``evalcache.hits``/``misses``/``stores`` carry
the accounting instead).

:func:`evaluate_predictor` consults the cache through the hook
installed by :func:`repro.hb.evaluate.set_active_eval_cache`; use
:func:`EvaluationCache.activated` to scope the installation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

import numpy as np

from repro._version import __version__
from repro.core.cachekey import stable_fingerprint
from repro.core.timeseries import TimeSeries
from repro.hb.autoregressive import AutoRegressive
from repro.hb.base import HistoryPredictor, PredictorFactory
from repro.hb.evaluate import HbEvaluation, set_active_eval_cache
from repro.hb.ewma import Ewma
from repro.hb.holt_winters import HoltWinters
from repro.hb.lso import LsoConfig
from repro.hb.moving_average import MovingAverage
from repro.hb.wrappers import LsoPredictor
from repro.obs import get_telemetry

#: Environment variable overriding the evaluation-cache location.
ENV_EVAL_CACHE_DIR = "REPRO_EVAL_CACHE_DIR"

#: A predictor spec: a family tag followed by constructor parameters,
#: e.g. ``("ma", 10)`` or ``("lso", ("hw", 0.8, 0.2), 0.3, 0.4, True)``.
PredictorSpec = tuple


def default_eval_cache_dir() -> Path:
    """The cache root: ``$REPRO_EVAL_CACHE_DIR`` or ``~/.cache/repro/evals``."""
    env = os.environ.get(ENV_EVAL_CACHE_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "evals"


def derive_spec(predictor: HistoryPredictor) -> PredictorSpec | None:
    """The cacheable spec of a predictor instance, or ``None``.

    ``None`` means the predictor's exact type is not a registered
    family — evaluations of it are computed fresh every time (and, for
    the same reason, take the scalar walk in
    :mod:`repro.hb.vector_eval`).
    """
    kind = type(predictor)
    if kind is MovingAverage:
        return ("ma", predictor.order)
    if kind is Ewma:
        return ("ewma", predictor.alpha)
    if kind is HoltWinters:
        return ("hw", predictor.alpha, predictor.beta)
    if kind is AutoRegressive:
        return ("ar", predictor.order, predictor.max_history, predictor.ridge)
    if kind is LsoPredictor:
        inner = derive_spec(predictor._base)
        if inner is None:
            return None
        config = predictor._config
        return (
            "lso",
            inner,
            config.level_shift_threshold,
            config.outlier_threshold,
            predictor.harden,
        )
    return None


def spec_factory(spec: PredictorSpec) -> PredictorFactory:
    """A factory building fresh predictors matching ``spec``.

    The inverse of :func:`derive_spec` — what lets a worker process
    reconstruct an evaluation unit from its plain-tuple description.
    """
    kind = spec[0]
    if kind == "ma":
        return lambda: MovingAverage(spec[1])
    if kind == "ewma":
        return lambda: Ewma(spec[1])
    if kind == "hw":
        return lambda: HoltWinters(spec[1], spec[2])
    if kind == "ar":
        return lambda: AutoRegressive(spec[1], spec[2], spec[3])
    if kind == "lso":
        inner = spec_factory(spec[1])
        config = LsoConfig(spec[2], spec[3])
        harden = spec[4]
        return lambda: LsoPredictor(inner, config, harden)
    raise ValueError(f"unknown predictor spec {spec!r}")


def series_sha256(series: TimeSeries) -> str:
    """SHA-256 over the trace's raw sample bytes."""
    return hashlib.sha256(np.ascontiguousarray(series.values).tobytes()).hexdigest()


def evaluation_key(
    series: TimeSeries, spec: PredictorSpec, lso_config: LsoConfig | None
) -> str:
    """The content key of one (trace, predictor, LsoConfig) evaluation."""
    return stable_fingerprint(
        {
            "series_sha256": series_sha256(series),
            "series_name": series.name,
            "n": len(series),
            "spec": spec,
            "lso": lso_config,
            "code_version": __version__,
        }
    )


class EvaluationCache:
    """A directory of HB evaluations addressed by content key.

    Args:
        root: cache directory; ``None`` uses
            :func:`default_eval_cache_dir` (which honours
            ``REPRO_EVAL_CACHE_DIR``).
        memory_only: keep entries in the in-process memo only — nothing
            is read from or written to disk.  What ``repro-analyze
            --no-eval-cache`` uses, so one run still shares walks across
            its figures without persisting anything.
    """

    def __init__(
        self, root: str | Path | None = None, *, memory_only: bool = False
    ) -> None:
        self.root = (
            Path(root).expanduser() if root is not None else default_eval_cache_dir()
        )
        self.memory_only = memory_only
        self._memo: dict[str, HbEvaluation] = {}

    def path_for(self, key: str) -> Path:
        """The file an evaluation with ``key`` is (or would be) stored at."""
        return self.root / f"{key}.npz"

    def get(self, key: str) -> HbEvaluation | None:
        """The cached evaluation for ``key``, or ``None`` on a miss.

        Disk hits are promoted into the in-process memo; a malformed
        entry is quarantined (renamed ``*.corrupt``) and counted under
        ``evalcache.corrupt``, and reads as a miss.
        """
        memo = self._memo.get(key)
        if memo is not None:
            return memo
        if self.memory_only:
            return None
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as entry:
                meta = json.loads(str(entry["meta"][()]))
                evaluation = HbEvaluation(
                    predictor_name=meta["predictor_name"],
                    series_name=meta["series_name"],
                    predictions=entry["predictions"],
                    errors=entry["errors"],
                    outlier_indices=frozenset(
                        int(i) for i in entry["outliers"].tolist()
                    ),
                )
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile):
            telemetry = get_telemetry()
            telemetry.counter("evalcache.corrupt").inc()
            telemetry.emit("evalcache", outcome="corrupt", key=key)
            try:
                os.replace(path, path.with_name(path.name + ".corrupt"))
            except OSError:  # pragma: no cover - vanished or unwritable
                pass
            return None
        self._memo[key] = evaluation
        return evaluation

    def put(self, key: str, evaluation: HbEvaluation) -> None:
        """Store ``evaluation`` under ``key`` (atomically, on disk).

        Counts one ``evalcache.stores`` per fresh entry.  The arrays
        round-trip bit-exactly through the ``.npz`` container, so a hit
        returns byte-identical predictions and errors.
        """
        self._memo[key] = evaluation
        get_telemetry().counter("evalcache.stores").inc()
        if self.memory_only:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        meta = json.dumps(
            {
                "predictor_name": evaluation.predictor_name,
                "series_name": evaluation.series_name,
            }
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                # savez on an open handle: no ``.npz`` suffix munging,
                # and the final rename stays atomic.
                np.savez(
                    handle,
                    predictions=evaluation.predictions,
                    errors=evaluation.errors,
                    outliers=np.asarray(
                        sorted(evaluation.outlier_indices), dtype=np.int64
                    ),
                    meta=np.asarray(meta),
                )
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):  # pragma: no cover - error path
                os.unlink(tmp_name)

    # -- the hook protocol evaluate_predictor talks to -------------------

    def lookup(
        self,
        series: TimeSeries,
        predictor: HistoryPredictor,
        lso_config: LsoConfig | None,
    ) -> HbEvaluation | None:
        """Cache probe for one evaluation; counts a hit or a miss.

        Predictors with no derivable spec are not cacheable and probe
        nothing (no counter moves — the cache simply does not apply).
        """
        spec = derive_spec(predictor)
        if spec is None:
            return None
        key = evaluation_key(series, spec, lso_config)
        evaluation = self.get(key)
        if evaluation is not None:
            get_telemetry().counter("evalcache.hits").inc()
            return evaluation
        get_telemetry().counter("evalcache.misses").inc()
        return None

    def record(
        self,
        series: TimeSeries,
        predictor: HistoryPredictor,
        lso_config: LsoConfig | None,
        evaluation: HbEvaluation,
    ) -> None:
        """Persist a freshly computed evaluation (when cacheable)."""
        spec = derive_spec(predictor)
        if spec is None:
            return
        self.put(evaluation_key(series, spec, lso_config), evaluation)

    @contextmanager
    def activated(self) -> Iterator["EvaluationCache"]:
        """Install this cache for :func:`evaluate_predictor` in a scope."""
        previous = set_active_eval_cache(self)
        try:
            yield self
        finally:
            set_active_eval_cache(previous)
