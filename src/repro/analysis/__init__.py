"""The computations behind every figure of the paper's evaluation.

* :mod:`repro.analysis.fb_eval` — Formula-Based prediction accuracy
  (Figs. 2-14).
* :mod:`repro.analysis.hb_eval` — History-Based prediction accuracy
  (Figs. 15-23).
* :mod:`repro.analysis.report` — plain-text rendering of tables, CDFs
  and scatter summaries for benchmark output.
* :mod:`repro.analysis.stats` — bootstrap confidence intervals for the
  headline statistics.

Each function takes a :class:`repro.paths.records.Dataset` and returns
plain result objects; nothing here reads the hidden ``truth`` fields.
"""

from repro.analysis import fb_eval, hb_eval, report, stats

__all__ = ["fb_eval", "hb_eval", "report", "stats"]
