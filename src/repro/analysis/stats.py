"""Resampling statistics for the headline numbers.

The paper reports point estimates ("about 50% of predictions...").  For
the reproduction's EXPERIMENTS.md comparisons it is useful to know how
tight those numbers are under resampling — a gap between paper and
reproduction only matters if it exceeds the estimate's own spread.

Percentile-bootstrap confidence intervals over epochs (for fraction-type
statistics) and over traces (for per-trace RMSRE quantiles).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile-bootstrap interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] @ {self.confidence:.0%}"
        )


def bootstrap_ci(
    values: Sequence[float] | np.ndarray,
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of ``statistic`` over ``values``.

    Args:
        values: the sample (epoch errors, per-trace RMSREs, ...).
        statistic: reduces an array to one number (must be
            deterministic).
        n_resamples: bootstrap replicates.
        confidence: two-sided coverage, in (0, 1).
        seed: RNG seed — fixed by default so reported intervals are
            reproducible.

    Raises:
        DataError: on an empty sample.
    """
    sample = np.asarray(values, dtype=float)
    if sample.size == 0:
        raise DataError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ValueError(f"n_resamples must be >= 10, got {n_resamples}")

    rng = np.random.default_rng(seed)
    # One vectorized draw for all replicates. Generator.integers consumes
    # the bit stream element-by-element in C order, so row i equals the
    # i-th size-n draw of the former Python loop — replicates (and CIs)
    # are unchanged, but index generation is no longer the bottleneck.
    indices = rng.integers(0, sample.size, size=(n_resamples, sample.size))
    resamples = sample[indices]
    replicates = np.fromiter(
        (statistic(resamples[i]) for i in range(n_resamples)),
        dtype=float,
        count=n_resamples,
    )
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(sample)),
        low=float(np.quantile(replicates, alpha)),
        high=float(np.quantile(replicates, 1.0 - alpha)),
        confidence=confidence,
    )


def fraction_above_ci(
    values: Sequence[float] | np.ndarray,
    threshold: float,
    **kwargs,
) -> ConfidenceInterval:
    """CI for ``P(X > threshold)`` — the paper's CDF-style headlines."""
    return bootstrap_ci(
        values, lambda sample: float((sample > threshold).mean()), **kwargs
    )


def median_ci(
    values: Sequence[float] | np.ndarray, **kwargs
) -> ConfidenceInterval:
    """CI for the sample median."""
    return bootstrap_ci(values, lambda sample: float(np.median(sample)), **kwargs)


def quantile_ci(
    values: Sequence[float] | np.ndarray, q: float, **kwargs
) -> ConfidenceInterval:
    """CI for an arbitrary quantile."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    return bootstrap_ci(
        values, lambda sample: float(np.quantile(sample, q)), **kwargs
    )
