"""Plain-text rendering of the reproduction's tables and figures.

The benchmark harness prints what the paper plots: CDF tables, per-path
bar summaries, and scatter statistics.  Everything renders to fixed-width
text so benchmark output is diff-able and readable in a terminal.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.metrics import Cdf


def render_cdf_table(
    cdfs: Mapping[str, Cdf] | Sequence[Cdf],
    thresholds: Sequence[float] = (-1.0, 0.0, 0.5, 1.0, 2.0, 5.0, 9.0),
    title: str = "",
) -> str:
    """A table of P(X <= t) rows for each CDF at the given thresholds."""
    if isinstance(cdfs, Mapping):
        items = [(name, cdf) for name, cdf in cdfs.items()]
    else:
        items = [(cdf.label or f"cdf{i}", cdf) for i, cdf in enumerate(cdfs)]
    name_width = max(12, max(len(name) for name, _ in items) + 1)
    header = f"{'':<{name_width}}" + "".join(
        f"P(<={t:g}) ".rjust(10) for t in thresholds
    )
    lines = [title, header] if title else [header]
    for name, cdf in items:
        row = f"{name:<{name_width}}" + "".join(
            f"{cdf.fraction_below(t):.3f}".rjust(10) for t in thresholds
        )
        lines.append(row)
    return "\n".join(lines)


def render_quantile_table(
    cdfs: Mapping[str, Cdf],
    quantiles: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90),
    title: str = "",
) -> str:
    """A table of quantiles for each CDF."""
    name_width = max(12, max(len(name) for name in cdfs) + 1)
    header = f"{'':<{name_width}}" + "".join(
        f"q{int(q * 100):02d}".rjust(9) for q in quantiles
    )
    lines = [title, header] if title else [header]
    for name, cdf in cdfs.items():
        row = f"{name:<{name_width}}" + "".join(
            f"{cdf.quantile(q):.3f}".rjust(9) for q in quantiles
        )
        lines.append(row)
    return "\n".join(lines)


def render_bar_table(
    rows: Sequence[tuple[str, Mapping[str, float]]],
    title: str = "",
    value_format: str = "{:.3f}",
) -> str:
    """A table with one row per entity and one column per series."""
    if not rows:
        return title
    columns = list(rows[0][1])
    name_width = max(10, max(len(name) for name, _ in rows) + 1)
    header = f"{'':<{name_width}}" + "".join(c.rjust(12) for c in columns)
    lines = [title, header] if title else [header]
    for name, values in rows:
        row = f"{name:<{name_width}}" + "".join(
            value_format.format(values[c]).rjust(12) for c in columns
        )
        lines.append(row)
    return "\n".join(lines)


def render_ascii_cdf(cdf: Cdf, width: int = 60, height: int = 12) -> str:
    """A rough ASCII plot of one CDF (x: value, y: cumulative fraction)."""
    xs, ps = cdf.points(width)
    lo, hi = float(xs[0]), float(xs[-1])
    if hi == lo:
        return f"{cdf.label}: constant at {lo:.3g}"
    grid = [[" "] * width for _ in range(height)]
    for x, p in zip(xs, ps):
        col = int((x - lo) / (hi - lo) * (width - 1))
        row = height - 1 - int(p * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"{lo:<.3g}{' ' * (width - 12)}{hi:>.3g}")
    if cdf.label:
        lines.insert(0, cdf.label)
    return "\n".join(lines)


def render_scatter_summary(
    x: np.ndarray,
    y: np.ndarray,
    x_label: str,
    y_label: str,
    n_bins: int = 6,
) -> str:
    """Binned medians of y over x — a text rendering of a scatter plot."""
    if x.size != y.size or x.size == 0:
        raise ValueError("x and y must be equal-length, non-empty")
    order = np.argsort(x)
    xs, ys = x[order], y[order]
    bins = np.array_split(np.arange(xs.size), n_bins)
    lines = [f"{x_label:>16} {'n':>6} {f'median {y_label}':>16} {'p90':>9}"]
    for idx in bins:
        if idx.size == 0:
            continue
        lines.append(
            f"{np.median(xs[idx]):16.4g} {idx.size:6d} "
            f"{np.median(ys[idx]):16.3f} {np.quantile(ys[idx], 0.9):9.2f}"
        )
    return "\n".join(lines)
