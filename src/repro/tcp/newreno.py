"""TCP NewReno sender (RFC 3782 fast-recovery semantics).

Classic Reno (the default in this package, matching the paper's era and
the PFTK model's assumptions) exits fast recovery on the *first* new
ACK, so a window with several losses usually ends in a retransmission
timeout.  NewReno instead interprets a *partial* ACK — one that
advances ``una`` but not past the recovery point — as proof of another
hole, retransmits it immediately, and stays in recovery until the whole
pre-loss window is acknowledged.

Provided as a comparison point: the difference between the two senders
on a lossy bottleneck is a direct measurement of how much of the
"TCP cannot use the avail-bw" effect (the paper's Section 3.4) is
Reno's multi-loss timeout behaviour.
"""

from __future__ import annotations

from repro.tcp.reno import RenoSender


class NewRenoSender(RenoSender):
    """Reno sender with NewReno partial-ACK handling.

    Same constructor and interface as
    :class:`~repro.tcp.reno.RenoSender`.
    """

    def _handle_new_ack(self, ack: int) -> None:
        if not self.in_recovery:
            super()._handle_new_ack(ack)
            return

        if ack >= self.recover_seq:
            # Full acknowledgement: the whole pre-loss window arrived.
            super()._handle_new_ack(ack)
            return

        # Partial ACK: deflate by the amount acknowledged, retransmit
        # the next hole, stay in recovery (RFC 3782, Section 3 step 5).
        self._sample_rtt(ack)
        newly_acked = ack - self.una
        self.una = ack
        self.next_seq = max(self.next_seq, ack)
        self._forget_below(ack)
        self.cwnd = max(self.cwnd - newly_acked + 1.0, 2.0)
        self._retransmit_segment(self.una)
        self._rto_backoff = 1.0
        self._restart_rto()
        self._try_send()
