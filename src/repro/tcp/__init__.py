"""TCP Reno over the packet simulator.

:class:`~repro.tcp.reno.RenoSender` implements the sender side the way
the paper's measurement era ran it: slow start, congestion avoidance,
fast retransmit / fast recovery (classic Reno — multiple losses in one
window typically force a retransmission timeout, which is exactly the
regime the PFTK model covers), an RFC 6298 retransmission timer with a
1-second floor and exponential backoff, and a maximum window ``W``
(the socket-buffer limit IPerf controls in the paper).

:class:`~repro.tcp.sink.TcpSink` is the receiver: cumulative ACKs,
delayed ACKs (``b = 2``), immediate duplicate ACKs on out-of-order
arrivals, and delivered-byte accounting for throughput measurement.
"""

from repro.tcp.newreno import NewRenoSender
from repro.tcp.reno import RenoSender, RenoStats
from repro.tcp.sink import TcpSink

__all__ = ["NewRenoSender", "RenoSender", "RenoStats", "TcpSink"]
