"""The TCP receiver: cumulative + delayed ACKs, delivery accounting."""

from __future__ import annotations

from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.packet import Packet, PacketKind
from repro.simnet.path import DumbbellPath

#: Wire size of a pure ACK (IP + TCP headers).
ACK_SIZE_BYTES = 40

#: Delayed-ACK timer, a typical early-2000s stack value.
DELAYED_ACK_TIMEOUT_S = 0.1


class TcpSink:
    """Receiver side of a TCP connection.

    In-order data advances ``rcv_next`` (absorbing any buffered
    out-of-order segments); every second in-order segment — or the
    delayed-ACK timer — triggers a cumulative ACK; out-of-order segments
    trigger an immediate duplicate ACK, which is what drives the sender's
    fast retransmit.

    Args:
        sim: the event loop.
        path: the path ACKs travel back over (reverse direction).
        name: this endpoint's address.
        peer: the sender's address (ACK destination).
        flow: flow label copied into ACKs.
        ack_every: in-order segments per ACK (the models' ``b``).
    """

    def __init__(
        self,
        sim: Simulator,
        path: DumbbellPath,
        name: str,
        peer: str,
        flow: str,
        ack_every: int = 2,
    ) -> None:
        if ack_every < 1:
            raise ValueError(f"ack_every must be >= 1, got {ack_every}")
        self.sim = sim
        self.path = path
        self.name = name
        self.peer = peer
        self.flow = flow
        self.ack_every = ack_every
        self.rcv_next = 0
        self.segments_delivered = 0
        self.bytes_delivered = 0
        self._out_of_order: set[int] = set()
        self._pending_acks = 0
        self._delayed_handle: EventHandle | None = None
        self.acks_sent = 0

    def receive(self, packet: Packet) -> None:
        """Handle an arriving data segment."""
        if packet.kind is not PacketKind.DATA or packet.flow != self.flow:
            return
        seq = packet.seq
        if seq == self.rcv_next:
            self.rcv_next += 1
            self._absorb_buffered()
            self.segments_delivered += 1 + self._drain_count
            self.bytes_delivered += packet.size_bytes * (1 + self._drain_count)
            self._pending_acks += 1
            if self._pending_acks >= self.ack_every or self._drain_count:
                self._send_ack()
            elif self._delayed_handle is None or self._delayed_handle.cancelled:
                self._delayed_handle = self.sim.schedule(
                    DELAYED_ACK_TIMEOUT_S, self._delayed_ack_fire
                )
        elif seq > self.rcv_next:
            # Out of order: buffer and emit an immediate duplicate ACK.
            self._out_of_order.add(seq)
            self._send_ack()
        else:
            # Below rcv_next: a spurious retransmission; re-ACK so the
            # sender learns its state.
            self._send_ack()

    def _absorb_buffered(self) -> None:
        self._drain_count = 0
        while self.rcv_next in self._out_of_order:
            self._out_of_order.remove(self.rcv_next)
            self.rcv_next += 1
            self._drain_count += 1

    _drain_count = 0

    def _delayed_ack_fire(self) -> None:
        if self._pending_acks > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        self._pending_acks = 0
        if self._delayed_handle is not None:
            self._delayed_handle.cancel()
            self._delayed_handle = None
        ack = Packet(
            src=self.name,
            dst=self.peer,
            kind=PacketKind.ACK,
            size_bytes=ACK_SIZE_BYTES,
            seq=self.rcv_next,
            flow=self.flow,
            created_at=self.sim.now,
        )
        self.acks_sent += 1
        self.path.send_reverse(ack)
