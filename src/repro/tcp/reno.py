"""TCP Reno sender.

Implements the early-2000s Reno behaviour the paper's models assume:

* slow start (cwnd += 1 per new ACK) until ``ssthresh``,
* congestion avoidance (cwnd += 1/cwnd per new ACK),
* fast retransmit on the third duplicate ACK,
* classic-Reno fast recovery — window inflation per duplicate ACK,
  deflation to ``ssthresh`` on the first new ACK; multiple losses in one
  window therefore usually end in a retransmission timeout, the regime
  PFTK's timeout term models,
* an RFC 6298 retransmission timer with the 1-second floor and
  exponential backoff, and Karn's rule for RTT sampling,
* a maximum window ``W`` (socket-buffer limit), the paper's key knob.

Sequence numbers count MSS-sized segments.  The sender transmits as long
as its application (:class:`~repro.apps.iperf.BulkTransferApp`) keeps it
running — a bulk transfer with unlimited data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.packet import Packet, PacketKind
from repro.simnet.path import DumbbellPath

#: RFC 6298 constants.
RTO_ALPHA = 0.125
RTO_BETA = 0.25
MIN_RTO_S = 1.0
MAX_RTO_S = 60.0

#: Initial congestion window, segments (RFC 2581 allowed 2).
INITIAL_CWND = 2.0

#: Data segment overhead is folded into the MSS-sized wire packets.
DEFAULT_MSS_BYTES = 1460


@dataclass
class RenoStats:
    """Sender-side counters.

    Attributes:
        segments_sent: all transmissions, including retransmissions.
        retransmissions: fast retransmits plus timeout retransmissions.
        fast_retransmits: losses recovered by triple-duplicate ACK.
        timeouts: RTO expirations.
        rtt_samples: RTT measurements taken (Karn-filtered).
        srtt_s: final smoothed RTT, or None if never sampled.
    """

    segments_sent: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    rtt_samples: int = 0
    srtt_s: float | None = None
    rtt_sum_s: float = 0.0

    @property
    def mean_rtt_s(self) -> float | None:
        """Mean of the RTT samples, or None without samples."""
        if self.rtt_samples == 0:
            return None
        return self.rtt_sum_s / self.rtt_samples


class RenoSender:
    """Sender side of a bulk TCP Reno transfer.

    Args:
        sim: the event loop.
        path: the network path (data forward, ACKs reverse).
        name: this endpoint's address.
        peer: the receiver's address.
        flow: flow label stamped on segments.
        mss_bytes: segment size.
        max_window_segments: the maximum window ``W`` in segments.
        data_limit_segments: stop offering new data after this many
            segments (None = unlimited bulk data).  Used for
            fixed-size (short) transfers.
    """

    def __init__(
        self,
        sim: Simulator,
        path: DumbbellPath,
        name: str,
        peer: str,
        flow: str,
        mss_bytes: int = DEFAULT_MSS_BYTES,
        max_window_segments: float = 700.0,
        data_limit_segments: int | None = None,
    ) -> None:
        if max_window_segments < 1:
            raise ConfigurationError(
                f"max_window_segments must be >= 1, got {max_window_segments}"
            )
        self.sim = sim
        self.path = path
        self.name = name
        self.peer = peer
        self.flow = flow
        self.mss_bytes = mss_bytes
        self.max_window_segments = max_window_segments
        if data_limit_segments is not None and data_limit_segments < 1:
            raise ConfigurationError(
                f"data_limit_segments must be >= 1, got {data_limit_segments}"
            )
        self.data_limit_segments = data_limit_segments

        self.una = 0  # lowest unacknowledged segment
        self.next_seq = 0  # next segment to send
        self.highest_sent = 0  # one past the highest segment ever sent
        self.cwnd = INITIAL_CWND
        self.ssthresh = max_window_segments
        self.dup_acks = 0
        self.in_recovery = False
        self.recover_seq = 0

        self.srtt: float | None = None
        self.rttvar = 0.0
        self.rto = 3.0  # RFC 6298 initial value
        self._rto_backoff = 1.0
        self._rto_handle: EventHandle | None = None

        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._running = False
        self.stats = RenoStats()

    # ------------------------------------------------------------------
    # Application control
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (bulk data, no end until :meth:`stop`)."""
        self._running = True
        self._try_send()

    def stop(self) -> None:
        """Stop offering new data and cancel the retransmission timer."""
        self._running = False
        self._cancel_rto()

    @property
    def window_segments(self) -> float:
        """The effective window: ``min(cwnd, W)``."""
        return min(self.cwnd, self.max_window_segments)

    @property
    def flight_size(self) -> int:
        """Segments in flight (sent but unacknowledged)."""
        return self.highest_sent - self.una

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Handle an arriving ACK."""
        if packet.kind is not PacketKind.ACK or packet.flow != self.flow:
            return
        ack = packet.seq  # cumulative: all segments < ack received
        if ack > self.una:
            self._handle_new_ack(ack)
        elif ack == self.una and self.flight_size > 0:
            self._handle_dup_ack()

    def _handle_new_ack(self, ack: int) -> None:
        self._sample_rtt(ack)
        newly_acked = ack - self.una
        self.una = ack
        # A cumulative ACK can jump past a post-timeout rollback point.
        self.next_seq = max(self.next_seq, ack)
        self._forget_below(ack)

        if self.in_recovery:
            # Classic Reno: the first new ACK ends recovery and deflates
            # the window to ssthresh.
            self.in_recovery = False
            self.cwnd = self.ssthresh
            self.dup_acks = 0
        else:
            self.dup_acks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd = min(
                    self.cwnd + newly_acked, self.max_window_segments
                )
            else:
                self.cwnd = min(
                    self.cwnd + newly_acked / self.cwnd, self.max_window_segments
                )

        self._rto_backoff = 1.0
        if self.flight_size > 0:
            self._restart_rto()
        else:
            self._cancel_rto()
        self._try_send()

    def _handle_dup_ack(self) -> None:
        self.dup_acks += 1
        if self.in_recovery:
            # Window inflation: each dup ACK signals a departed segment.
            self.cwnd += 1.0
            self._try_send()
        elif self.dup_acks == 3:
            self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.recover_seq = self.next_seq
        self.in_recovery = True
        self._retransmit_segment(self.una)
        self.cwnd = self.ssthresh + 3.0
        self._restart_rto()
        self._try_send()

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------

    def _on_rto(self) -> None:
        self._rto_handle = None
        if not self._running and self.flight_size == 0:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_recovery = False
        self._rto_backoff = min(self._rto_backoff * 2.0, MAX_RTO_S / self.rto)
        # Go-back-N: retransmit from the first unacknowledged segment,
        # growing the window again under slow start.  Cumulative ACKs jump
        # over segments the receiver already buffered.
        self.next_seq = self.una
        self._restart_rto()
        self._try_send()

    def _restart_rto(self) -> None:
        self._cancel_rto()
        timeout = min(self.rto * self._rto_backoff, MAX_RTO_S)
        self._rto_handle = self.sim.schedule(timeout, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    # ------------------------------------------------------------------
    # RTT estimation (RFC 6298 + Karn's rule)
    # ------------------------------------------------------------------

    def _sample_rtt(self, ack: int) -> None:
        # The newest cumulatively-acked segment is ack - 1; sample it if
        # it was transmitted exactly once.
        seq = ack - 1
        sent_at = self._send_times.get(seq)
        if sent_at is None or seq in self._retransmitted:
            return
        sample = self.sim.now - sent_at
        self.stats.rtt_samples += 1
        self.stats.rtt_sum_s += sample
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = (1 - RTO_BETA) * self.rttvar + RTO_BETA * abs(
                self.srtt - sample
            )
            self.srtt = (1 - RTO_ALPHA) * self.srtt + RTO_ALPHA * sample
        self.stats.srtt_s = self.srtt
        self.rto = max(MIN_RTO_S, self.srtt + 4.0 * self.rttvar)

    def _forget_below(self, ack: int) -> None:
        for seq in [s for s in self._send_times if s < ack]:
            del self._send_times[seq]
        self._retransmitted = {s for s in self._retransmitted if s >= ack}

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        if not self._running:
            return
        while self.next_seq < self.una + int(self.window_segments):
            if (
                self.data_limit_segments is not None
                and self.next_seq >= self.data_limit_segments
            ):
                return
            self._transmit(self.next_seq)
            self.next_seq += 1
            if self._rto_handle is None:
                self._restart_rto()

    def _retransmit_segment(self, seq: int) -> None:
        self._transmit(seq)

    def _transmit(self, seq: int) -> None:
        if seq < self.highest_sent:
            # Any segment sent before counts as a retransmission; Karn's
            # rule excludes it from RTT sampling.
            self.stats.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = self.sim.now
            self.highest_sent = seq + 1
        packet = Packet(
            src=self.name,
            dst=self.peer,
            kind=PacketKind.DATA,
            size_bytes=self.mss_bytes,
            seq=seq,
            flow=self.flow,
            created_at=self.sim.now,
        )
        self.stats.segments_sent += 1
        self.path.send_forward(packet)
