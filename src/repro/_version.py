"""Single source of truth for the package version."""

__version__ = "1.9.0"
