"""Exception hierarchy for the reproduction package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single ``except`` clause while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event or fluid simulation entered an invalid state."""


class PredictionError(ReproError):
    """A predictor was asked for a forecast it cannot produce.

    For example, requesting a History-Based prediction before any history
    samples have been observed.
    """


class DataError(ReproError):
    """A dataset, trace, or serialized file is malformed or inconsistent."""


class ExecutionError(ReproError):
    """A campaign job failed permanently (retries exhausted or aborted).

    The message names the failing ``(path_id, trace_index)`` work unit so
    an operator can tell which job to investigate without digging through
    a worker traceback; the original exception rides along as
    ``__cause__``.
    """
