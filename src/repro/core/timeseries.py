"""A small time-series container used by the HB predictors and analysis.

The paper's HB predictors operate on a sequence of throughput samples
taken at (roughly) regular intervals. :class:`TimeSeries` pairs sample
values with their timestamps and supports the operations the paper needs:
slicing, down-sampling to a longer measurement period (Section 6.1.6), and
basic statistics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.core.errors import DataError


class TimeSeries:
    """An immutable series of ``(time, value)`` samples, sorted by time.

    Args:
        times: sample timestamps in seconds, strictly increasing.
        values: sample values; same length as ``times``.
        name: optional label used in reports.
    """

    __slots__ = ("_times", "_values", "name")

    def __init__(
        self,
        times: Sequence[float] | np.ndarray,
        values: Sequence[float] | np.ndarray,
        name: str = "",
    ) -> None:
        times_arr = np.asarray(times, dtype=float)
        values_arr = np.asarray(values, dtype=float)
        if times_arr.ndim != 1 or values_arr.ndim != 1:
            raise DataError("times and values must be one-dimensional")
        if times_arr.shape != values_arr.shape:
            raise DataError(
                f"length mismatch: {times_arr.size} times vs {values_arr.size} values"
            )
        if times_arr.size > 1 and not np.all(np.diff(times_arr) > 0):
            raise DataError("times must be strictly increasing")
        # Copy so later mutation of the inputs cannot change the series.
        self._times = times_arr.copy()
        self._values = values_arr.copy()
        self._times.setflags(write=False)
        self._values.setflags(write=False)
        self.name = name

    @classmethod
    def from_values(
        cls, values: Iterable[float], period: float = 1.0, start: float = 0.0, name: str = ""
    ) -> "TimeSeries":
        """Build a series from values sampled every ``period`` seconds."""
        values_list = list(values)
        times = start + period * np.arange(len(values_list))
        return cls(times, values_list, name=name)

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (read-only array)."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Sample values (read-only array)."""
        return self._values

    def __len__(self) -> int:
        return int(self._values.size)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return zip(self._times.tolist(), self._values.tolist())

    def __getitem__(self, index: int | slice) -> "float | TimeSeries":
        if isinstance(index, slice):
            return TimeSeries(self._times[index], self._values[index], name=self.name)
        return float(self._values[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return bool(
            np.array_equal(self._times, other._times)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing is enough
        return id(self)

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        self._require_nonempty()
        return float(self._values.mean())

    def std(self) -> float:
        """Population standard deviation of the values."""
        self._require_nonempty()
        return float(self._values.std())

    def median(self) -> float:
        """Median of the values."""
        self._require_nonempty()
        return float(np.median(self._values))

    def period(self) -> float:
        """Median spacing between consecutive samples.

        Raises:
            DataError: for series with fewer than two samples.
        """
        if len(self) < 2:
            raise DataError("period is undefined for series shorter than 2")
        return float(np.median(np.diff(self._times)))

    def downsample(self, factor: int) -> "TimeSeries":
        """Keep every ``factor``-th sample, starting from the first.

        This mirrors the paper's Section 6.1.6, which evaluates HB
        prediction on traces down-sampled to longer transfer intervals.
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return TimeSeries(
            self._times[::factor], self._values[::factor], name=self.name
        )

    def drop_indices(self, indices: Iterable[int]) -> "TimeSeries":
        """Return a copy with the samples at ``indices`` removed.

        Indices must be integers in ``[0, len(self))``; negative indices
        are rejected rather than wrapping around numpy-style.

        Raises:
            DataError: for non-integer, negative, or out-of-range
                indices.
        """
        mask = np.ones(len(self), dtype=bool)
        index_list = list(indices)
        if index_list:
            index_arr = np.asarray(index_list)
            if index_arr.dtype.kind not in "iu":
                raise DataError(
                    f"drop_indices requires integer indices, got {index_list!r}"
                )
            out_of_range = (index_arr < 0) | (index_arr >= len(self))
            if out_of_range.any():
                bad = index_arr[out_of_range][0]
                raise DataError(
                    f"drop_indices: index {bad} out of range for a series "
                    f"of length {len(self)} (negative indices are not "
                    "supported)"
                )
            mask[index_arr] = False
        return TimeSeries(self._times[mask], self._values[mask], name=self.name)

    def window(self, start_time: float, end_time: float) -> "TimeSeries":
        """Return the sub-series with ``start_time <= t < end_time``."""
        mask = (self._times >= start_time) & (self._times < end_time)
        return TimeSeries(self._times[mask], self._values[mask], name=self.name)

    def _require_nonempty(self) -> None:
        if len(self) == 0:
            raise DataError("operation undefined on an empty series")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"TimeSeries({len(self)} samples{label})"
