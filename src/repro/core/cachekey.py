"""Stable content fingerprints for cache keys.

The dataset cache (:mod:`repro.testbed.cache`) needs a key that changes
whenever anything that influences a campaign's output changes — the
path catalog, the seed, the settings, the TCP parameters, the code
version — and never changes otherwise.  Python's built-in ``hash`` is
salted per process and ``pickle`` output is not guaranteed stable, so
the key is a SHA-256 over a canonical text encoding instead.

The encoding is defined for the value shapes the package actually
caches on: dataclasses (encoded as ``ClassName(field=value, ...)`` in
field order), mappings (sorted by key), sequences, and scalars.  Floats
use ``repr``, which round-trips exactly in Python 3.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any


def canonical_encoding(obj: Any) -> str:
    """Encode ``obj`` as a deterministic, type-discriminating string.

    Raises:
        TypeError: for values with no canonical encoding (e.g. open
            files, arbitrary objects) — better to fail loudly than to
            cache under an unstable key.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        # repr() round-trips floats exactly and is stable across runs.
        return f"float:{obj!r}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = ", ".join(
            f"{field.name}={canonical_encoding(getattr(obj, field.name))}"
            for field in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({body})"
    if isinstance(obj, dict):
        body = ", ".join(
            f"{canonical_encoding(key)}: {canonical_encoding(obj[key])}"
            for key in sorted(obj, key=repr)
        )
        return f"{{{body}}}"
    if isinstance(obj, (list, tuple)):
        tag = "list" if isinstance(obj, list) else "tuple"
        return f"{tag}[{', '.join(canonical_encoding(item) for item in obj)}]"
    if isinstance(obj, (set, frozenset)):
        return f"set[{', '.join(sorted(canonical_encoding(item) for item in obj))}]"
    raise TypeError(
        f"no canonical encoding for {type(obj).__name__!r}; "
        "cache keys must be built from dataclasses, mappings, sequences, "
        "and scalars"
    )


def stable_fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_encoding` of ``obj``.

    Equal values give equal fingerprints in every process and on every
    platform; any change to a nested field changes the fingerprint.
    """
    return hashlib.sha256(canonical_encoding(obj).encode("utf-8")).hexdigest()
