"""Shared foundations: units, errors, RNG streams, time series, metrics.

This subpackage holds everything that more than one subsystem needs and
that is not specific to either predictor family or to either simulator.
"""

from repro.core.cachekey import canonical_encoding, stable_fingerprint
from repro.core.errors import (
    ConfigurationError,
    DataError,
    PredictionError,
    ReproError,
    SimulationError,
)
from repro.core.metrics import (
    Cdf,
    coefficient_of_variation,
    pearson_correlation,
    relative_error,
    rmsre,
    segmented_cov,
)
from repro.core.rng import RngStreams
from repro.core.timeseries import TimeSeries
from repro.core.units import (
    BITS_PER_BYTE,
    Bandwidth,
    bits_to_mbps,
    bytes_to_bits,
    kbit,
    kbyte,
    mbit,
    mbyte,
    mbps_to_bps,
)

__all__ = [
    "BITS_PER_BYTE",
    "Bandwidth",
    "Cdf",
    "ConfigurationError",
    "DataError",
    "PredictionError",
    "ReproError",
    "RngStreams",
    "SimulationError",
    "TimeSeries",
    "bits_to_mbps",
    "bytes_to_bits",
    "canonical_encoding",
    "coefficient_of_variation",
    "kbit",
    "kbyte",
    "mbit",
    "mbps_to_bps",
    "mbyte",
    "pearson_correlation",
    "relative_error",
    "rmsre",
    "segmented_cov",
    "stable_fingerprint",
]
