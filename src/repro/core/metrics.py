"""Accuracy metrics from the paper's Section 4.1.

* :func:`relative_error` — the paper's Eq. (4):
  ``E = (R_hat - R) / min(R_hat, R)``, symmetric under over/under
  estimation by the same factor.
* :func:`rmsre` — Eq. (5), the Root Mean Square Relative Error over the
  epochs of a trace.
* :func:`coefficient_of_variation` and :func:`segmented_cov` — the CoV
  statistic related to RMSRE in the paper's Fig. 20 (the segmented form
  isolates stationary periods between detected level shifts and excludes
  outliers, exactly as Section 6.1.3 describes).
* :class:`Cdf` — an empirical CDF with the helpers the figures need.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataError


def relative_error(predicted: float, actual: float) -> float:
    """Relative prediction error ``E`` of one epoch (paper Eq. (4)).

    ``E = (R_hat - R) / min(R_hat, R)``.  Overestimation by a factor
    ``w`` and underestimation by the same factor both give ``|E| = w - 1``.

    Args:
        predicted: the predicted throughput ``R_hat`` (> 0).
        actual: the measured throughput ``R`` (> 0).

    Raises:
        DataError: if either throughput is not positive — the metric is
            undefined there, and a zero measured throughput would signal a
            broken measurement epoch upstream.
    """
    if predicted <= 0 or actual <= 0:
        raise DataError(
            f"relative error undefined for non-positive throughputs "
            f"(predicted={predicted!r}, actual={actual!r})"
        )
    return (predicted - actual) / min(predicted, actual)


def relative_errors(
    predicted: Sequence[float] | np.ndarray, actual: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Vectorised :func:`relative_error` over matched sample arrays."""
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise DataError(f"shape mismatch: {pred.shape} vs {act.shape}")
    if np.any(pred <= 0) or np.any(act <= 0):
        raise DataError("relative error undefined for non-positive throughputs")
    return (pred - act) / np.minimum(pred, act)


def rmsre(errors: Sequence[float] | np.ndarray) -> float:
    """Root Mean Square Relative Error (paper Eq. (5)).

    Args:
        errors: per-epoch relative errors ``E_i``.

    Raises:
        DataError: for an empty error sequence.
    """
    errs = np.asarray(errors, dtype=float)
    if errs.size == 0:
        raise DataError("RMSRE undefined for an empty error sequence")
    return float(np.sqrt(np.mean(np.square(errs))))


def coefficient_of_variation(values: Sequence[float] | np.ndarray) -> float:
    """CoV: the ratio of the standard deviation to the mean.

    Raises:
        DataError: for empty input or a zero mean.
    """
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise DataError("CoV undefined for an empty sequence")
    mean = float(vals.mean())
    if mean == 0:
        raise DataError("CoV undefined for a zero-mean sequence")
    return float(vals.std()) / abs(mean)


def segmented_cov(segments: Sequence[Sequence[float] | np.ndarray]) -> float:
    """Weighted-average CoV over stationary segments (Section 6.1.3).

    The paper computes a trace's CoV by isolating the stationary periods
    between detected level shifts (after excluding outliers), computing
    each period's CoV, and averaging them weighted by the number of
    samples in each period.  Segments shorter than two samples contribute
    no variability information and are skipped.

    Raises:
        DataError: if no segment has at least two samples.
    """
    weights: list[int] = []
    covs: list[float] = []
    for segment in segments:
        seg = np.asarray(segment, dtype=float)
        if seg.size < 2:
            continue
        covs.append(coefficient_of_variation(seg))
        weights.append(int(seg.size))
    if not covs:
        raise DataError("segmented CoV needs at least one segment of length >= 2")
    return float(np.average(covs, weights=weights))


def pearson_correlation(
    x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray
) -> float:
    """Pearson correlation coefficient between two equal-length samples.

    Raises:
        DataError: on length mismatch, fewer than two samples, or zero
            variance in either input.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise DataError(f"shape mismatch: {x_arr.shape} vs {y_arr.shape}")
    if x_arr.size < 2:
        raise DataError("correlation undefined for fewer than 2 samples")
    if float(x_arr.std()) == 0 or float(y_arr.std()) == 0:
        raise DataError("correlation undefined for zero-variance input")
    return float(np.corrcoef(x_arr, y_arr)[0, 1])


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF over a sample of values.

    The evaluation figures of the paper are mostly CDFs of relative
    errors; this class provides the quantile/fraction lookups those
    figures need plus a text rendering for reports.
    """

    sorted_values: np.ndarray
    label: str = ""

    @classmethod
    def from_values(cls, values: Sequence[float] | np.ndarray, label: str = "") -> "Cdf":
        """Build a CDF from unsorted sample values."""
        vals = np.sort(np.asarray(values, dtype=float))
        if vals.size == 0:
            raise DataError("cannot build a CDF from an empty sample")
        vals.setflags(write=False)
        return cls(sorted_values=vals, label=label)

    def __len__(self) -> int:
        return int(self.sorted_values.size)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold) under the empirical distribution."""
        return float(np.searchsorted(self.sorted_values, threshold, side="right")) / len(self)

    def fraction_above(self, threshold: float) -> float:
        """P(X > threshold) under the empirical distribution."""
        return 1.0 - self.fraction_below(threshold)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the sample, ``0 <= q <= 1``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.sorted_values, q))

    def median(self) -> float:
        """The sample median."""
        return self.quantile(0.5)

    def points(self, n: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` pairs suitable for plotting or printing."""
        if n < 2:
            raise ValueError(f"need at least 2 points, got {n}")
        probs = np.linspace(0.0, 1.0, n)
        xs = np.quantile(self.sorted_values, probs)
        return xs, probs

    def summary(self) -> str:
        """One-line summary with the quantiles the paper quotes."""
        q = self.quantile
        label = f"{self.label}: " if self.label else ""
        return (
            f"{label}n={len(self)} "
            f"p10={q(0.10):.3g} p50={q(0.50):.3g} p90={q(0.90):.3g} "
            f"min={self.sorted_values[0]:.3g} max={self.sorted_values[-1]:.3g}"
        )
