"""Named, reproducible random-number streams.

Every stochastic component in the package draws from its own named stream
derived from a single root seed. Two properties follow:

* a campaign is reproducible bit-for-bit given its seed, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing consumers (streams are independent, keyed by name).

Streams are derived with :class:`numpy.random.SeedSequence` spawned from a
hash of the stream name, which is the mechanism NumPy documents for
constructing independent generators.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A factory of independent, named :class:`numpy.random.Generator` s.

    Example::

        streams = RngStreams(seed=42)
        load_rng = streams.get("path3/load")
        probe_rng = streams.get("path3/probe-noise")

    Repeated calls with the same name return the *same* generator object,
    so a component can re-fetch its stream instead of threading it through
    every call.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this collection was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            # Key the child sequence on a stable hash of the name so the
            # stream does not depend on creation order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_key,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def child(self, prefix: str) -> "ScopedRngStreams":
        """Return a view that prefixes every stream name with ``prefix/``."""
        return ScopedRngStreams(self, prefix)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"


class PredrawnExponentials:
    """Batched standard-exponential draws, bit-identical to scalar calls.

    The packet simulator's Poisson sources draw one exponential per
    simulated packet — hundreds of thousands of scalar
    ``Generator.standard_exponential()`` calls per epoch, each paying
    the numpy call dispatch.  This helper pre-draws a vectorized batch
    and hands the values out one at a time.

    **Bit-identity contract.**  NumPy fills
    ``standard_exponential(n)`` by running the same ziggurat routine
    ``n`` times against the bit stream, so a batched fill consumes the
    generator's bits in exactly the order ``n`` sequential scalar calls
    would, producing identical values.  Two consequences:

    * the sequence of :meth:`next` values is bitwise equal to the
      scalar call sequence it replaces, for any ``batch_size``; and
    * :meth:`finalize` rewinds the generator to the state it would
      have after only the *consumed* draws — it restores the
      bit-generator state saved before the batch fill and replays just
      the consumed count — so a shared generator's later consumers see
      the same bits whether or not batching was on.

    The one thing batching cannot preserve is *interleaving*: if some
    other consumer draws from the same generator while a batch is
    outstanding, the scalar code would have given it different bits.
    Callers therefore only enable ``batch_size > 1`` when they own the
    generator exclusively for the batch's lifetime (see
    ``PacketEpochRunner``); the default of 1 is exactly the scalar
    call sequence.
    """

    __slots__ = ("_rng", "_batch", "_buf", "_pos", "_saved_state")

    def __init__(self, rng: np.random.Generator, batch_size: int = 1) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._rng = rng
        self._batch = batch_size
        self._buf: np.ndarray | None = None
        self._pos = 0
        self._saved_state: dict | None = None

    def next(self) -> float:
        """The next standard-exponential draw, as a Python float."""
        if self._batch == 1:
            # Scalar fast path: literally the call being replaced; no
            # buffer bookkeeping, nothing for finalize() to rewind.
            return self._rng.standard_exponential()
        buf = self._buf
        pos = self._pos
        if buf is None or pos >= len(buf):
            # Snapshot the state so finalize() can rewind to "only the
            # consumed draws happened" if the batch ends up partial.
            self._saved_state = self._rng.bit_generator.state
            buf = self._buf = self._rng.standard_exponential(self._batch)
            pos = 0
        self._pos = pos + 1
        return buf.item(pos)

    def finalize(self) -> None:
        """Resync the generator as if only the consumed draws happened.

        A no-op when the batch was fully consumed (or never filled).
        Call before any *other* consumer next touches a shared
        generator.
        """
        buf = self._buf
        if buf is not None and self._pos < len(buf):
            self._rng.bit_generator.state = self._saved_state
            self._rng.standard_exponential(self._pos)
        self._buf = None
        self._pos = 0
        self._saved_state = None


class ScopedRngStreams:
    """A view of :class:`RngStreams` under a fixed name prefix.

    Lets a subsystem hand each component a namespaced stream factory
    without the component knowing the full path.
    """

    def __init__(self, parent: RngStreams, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip("/")

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``prefix/name``."""
        return self._parent.get(f"{self._prefix}/{name}")

    def child(self, prefix: str) -> "ScopedRngStreams":
        """Return a further-nested scoped view."""
        return ScopedRngStreams(self._parent, f"{self._prefix}/{prefix}")

    def __repr__(self) -> str:
        return f"ScopedRngStreams(prefix={self._prefix!r})"
