"""Named, reproducible random-number streams.

Every stochastic component in the package draws from its own named stream
derived from a single root seed. Two properties follow:

* a campaign is reproducible bit-for-bit given its seed, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing consumers (streams are independent, keyed by name).

Streams are derived with :class:`numpy.random.SeedSequence` spawned from a
hash of the stream name, which is the mechanism NumPy documents for
constructing independent generators.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A factory of independent, named :class:`numpy.random.Generator` s.

    Example::

        streams = RngStreams(seed=42)
        load_rng = streams.get("path3/load")
        probe_rng = streams.get("path3/probe-noise")

    Repeated calls with the same name return the *same* generator object,
    so a component can re-fetch its stream instead of threading it through
    every call.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this collection was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            # Key the child sequence on a stable hash of the name so the
            # stream does not depend on creation order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_key,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def child(self, prefix: str) -> "ScopedRngStreams":
        """Return a view that prefixes every stream name with ``prefix/``."""
        return ScopedRngStreams(self, prefix)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"


class ScopedRngStreams:
    """A view of :class:`RngStreams` under a fixed name prefix.

    Lets a subsystem hand each component a namespaced stream factory
    without the component knowing the full path.
    """

    def __init__(self, parent: RngStreams, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip("/")

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``prefix/name``."""
        return self._parent.get(f"{self._prefix}/{name}")

    def child(self, prefix: str) -> "ScopedRngStreams":
        """Return a further-nested scoped view."""
        return ScopedRngStreams(self._parent, f"{self._prefix}/{prefix}")

    def __repr__(self) -> str:
        return f"ScopedRngStreams(prefix={self._prefix!r})"
