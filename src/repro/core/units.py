"""Unit helpers and conventions.

Conventions used throughout the package:

* time is in **seconds** (floats),
* data sizes are in **bytes** unless a name says otherwise,
* rates are in **bits per second** internally; the public API reports
  throughput in **Mbps** because that is how the paper reports it.

The helpers here exist so unit conversions are spelled out at call sites
(``mbps_to_bps(10)`` rather than ``10 * 1e6``), which makes mistakes
visible in review.
"""

from __future__ import annotations

from dataclasses import dataclass

BITS_PER_BYTE = 8

#: Size multipliers (decimal, as used by network equipment and the paper).
KILO = 1_000
MEGA = 1_000_000


def kbyte(n: float) -> int:
    """Return ``n`` kilobytes expressed in bytes (decimal kilobytes)."""
    return int(n * KILO)


def mbyte(n: float) -> int:
    """Return ``n`` megabytes expressed in bytes (decimal megabytes)."""
    return int(n * MEGA)


def kbit(n: float) -> float:
    """Return ``n`` kilobits expressed in bits."""
    return n * KILO


def mbit(n: float) -> float:
    """Return ``n`` megabits expressed in bits."""
    return n * MEGA


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * BITS_PER_BYTE


def bits_to_mbps(bits: float, seconds: float) -> float:
    """Average rate in Mbps for ``bits`` transferred over ``seconds``.

    Raises:
        ValueError: if ``seconds`` is not positive.
    """
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds!r}")
    return bits / seconds / MEGA


def mbps_to_bps(mbps: float) -> float:
    """Convert a rate in Mbps to bits per second."""
    return mbps * MEGA


@dataclass(frozen=True)
class Bandwidth:
    """A link or path bandwidth, stored in bits per second.

    A tiny value class so signatures can say ``Bandwidth`` instead of a
    bare float whose unit the reader has to guess.
    """

    bps: float

    def __post_init__(self) -> None:
        if self.bps < 0:
            raise ValueError(f"bandwidth must be non-negative, got {self.bps!r}")

    @classmethod
    def from_mbps(cls, mbps: float) -> "Bandwidth":
        """Build a :class:`Bandwidth` from a rate in Mbps."""
        return cls(bps=mbps_to_bps(mbps))

    @property
    def mbps(self) -> float:
        """The bandwidth expressed in Mbps."""
        return self.bps / MEGA

    def transmission_delay(self, n_bytes: int) -> float:
        """Seconds needed to serialize ``n_bytes`` onto this link."""
        if self.bps == 0:
            raise ValueError("cannot transmit on a zero-bandwidth link")
        return bytes_to_bits(n_bytes) / self.bps

    def __mul__(self, factor: float) -> "Bandwidth":
        return Bandwidth(bps=self.bps * factor)

    __rmul__ = __mul__
