"""Drop-tail FIFO queues with occupancy statistics.

The bottleneck buffer is the place where everything the paper studies
happens: queueing delay (RTT inflation), overflow loss, and the
interaction between the target flow and cross traffic.  The queue tracks
the counters the analysis needs (arrivals, drops, byte-occupancy time
integral for mean occupancy).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.simnet.packet import Packet


@dataclass(slots=True)
class QueueStats:
    """Counters accumulated by a :class:`DropTailQueue`.

    Slotted: the counters are bumped once per packet on the enqueue
    path, and slot access skips the per-instance ``__dict__``.

    Attributes:
        arrivals: packets offered to the queue.
        drops: packets rejected because the buffer was full.
        bytes_accepted: total bytes of accepted packets.
        occupancy_integral: time integral of byte occupancy, for
            computing mean occupancy over an interval.
    """

    arrivals: int = 0
    drops: int = 0
    bytes_accepted: int = 0
    occupancy_integral: float = 0.0

    @property
    def loss_rate(self) -> float:
        """Fraction of offered packets dropped (0 if nothing offered)."""
        return self.drops / self.arrivals if self.arrivals else 0.0


class DropTailQueue:
    """A FIFO queue bounded in bytes and, optionally, in packet slots.

    Args:
        capacity_bytes: maximum total bytes buffered; a packet that does
            not fit entirely is dropped (drop-tail).
        slot_capacity: when given, also bound the queue to this many
            packets regardless of their size.  Router line cards of the
            paper's era allocated fixed-size buffers per packet, so a
            41-byte ping contends for the same slot as a 1500-byte data
            packet — which is why probes observe overflow loss at all.
    """

    __slots__ = (
        "capacity_bytes",
        "slot_capacity",
        "_queue",
        "_occupancy_bytes",
        "_last_change_time",
        "stats",
        "__dict__",  # subclasses (RedQueue) extend freely
    )

    def __init__(self, capacity_bytes: int, slot_capacity: int | None = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if slot_capacity is not None and slot_capacity < 1:
            raise ValueError(f"slot_capacity must be >= 1, got {slot_capacity}")
        self.capacity_bytes = capacity_bytes
        self.slot_capacity = slot_capacity
        self._queue: deque[Packet] = deque()
        self._occupancy_bytes = 0
        self._last_change_time = 0.0
        self.stats = QueueStats()

    @property
    def occupancy_bytes(self) -> int:
        """Bytes currently buffered."""
        return self._occupancy_bytes

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def offer(self, packet: Packet, now: float) -> bool:
        """Try to enqueue ``packet`` at time ``now``.

        Returns:
            True if accepted, False if dropped (buffer full).
        """
        stats = self.stats
        occupancy = self._occupancy_bytes
        dt = now - self._last_change_time
        if dt > 0:
            stats.occupancy_integral += occupancy * dt
            self._last_change_time = now
        stats.arrivals += 1
        size = packet.size_bytes
        slot_full = (
            self.slot_capacity is not None and len(self._queue) >= self.slot_capacity
        )
        if slot_full or occupancy + size > self.capacity_bytes:
            stats.drops += 1
            return False
        self._queue.append(packet)
        self._occupancy_bytes = occupancy + size
        stats.bytes_accepted += size
        return True

    def pop(self, now: float) -> Packet:
        """Dequeue the head packet at time ``now``.

        Raises:
            IndexError: if the queue is empty.
        """
        dt = now - self._last_change_time
        if dt > 0:
            self.stats.occupancy_integral += self._occupancy_bytes * dt
            self._last_change_time = now
        packet = self._queue.popleft()
        self._occupancy_bytes -= packet.size_bytes
        return packet

    def mean_occupancy_bytes(self, interval: float) -> float:
        """Mean byte occupancy over the last ``interval`` seconds.

        Valid when the stats were reset at the start of the interval.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return self.stats.occupancy_integral / interval

    def reset_stats(self, now: float) -> None:
        """Zero the counters, starting a new measurement interval."""
        self.stats = QueueStats()
        self._last_change_time = now

    def _integrate(self, now: float) -> None:
        dt = now - self._last_change_time
        if dt > 0:
            self.stats.occupancy_integral += self._occupancy_bytes * dt
            self._last_change_time = now
