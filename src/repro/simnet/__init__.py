"""A small discrete-event packet-level network simulator.

``simnet`` provides the substrate the paper's measurements ran on — a
wide-area network path — at packet granularity:

* :class:`~repro.simnet.engine.Simulator` — the event loop.
* :class:`~repro.simnet.packet.Packet` — what flows through the network.
* :class:`~repro.simnet.queue.DropTailQueue` — finite FIFO buffering.
* :class:`~repro.simnet.link.Link` — a serializing transmitter with a
  propagation delay and an attached queue.
* :class:`~repro.simnet.path.DumbbellPath` — the two-directional path
  (bottleneck forward link + return link) every experiment uses, with
  endpoint agents dispatched by destination address.

The packet simulator validates the fluid model (``repro.fastpath``) that
runs the paper's full-size campaign; see DESIGN.md Section 5.
"""

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.packet import Packet, PacketKind
from repro.simnet.path import DumbbellPath, Endpoint
from repro.simnet.queue import DropTailQueue, QueueStats

__all__ = [
    "DropTailQueue",
    "DumbbellPath",
    "Endpoint",
    "Link",
    "Packet",
    "PacketKind",
    "QueueStats",
    "Simulator",
]
