"""The discrete-event simulation engine.

A classic heap-based event loop.  Events are callbacks scheduled at
absolute times; ties are broken by insertion order so the simulation is
deterministic.  Cancellation is supported through handles (lazy deletion:
cancelled events stay in the heap but are skipped), which is what TCP
retransmission timers need.

When telemetry is enabled (:mod:`repro.obs`), every :meth:`Simulator.run`
call adds its executed-event count to the ``simnet.events_processed``
counter — once per call, after the loop, so the per-event hot path stays
untouched.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import SimulationError
from repro.obs import get_telemetry


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """A handle to a scheduled event, usable to cancel it."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Event] = []
        self._counter = itertools.count()
        self._n_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostics)."""
        return self._n_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = _Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: stop once the next event is later than this time (the
                clock is advanced to ``until``).  ``None`` runs to
                exhaustion.
            max_events: safety valve — raise if more than this many
                events execute.

        Raises:
            SimulationError: if ``max_events`` is exceeded.
        """
        executed = 0
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._n_processed += 1
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
        if until is not None and self._now < until:
            self._now = until
        if executed:
            get_telemetry().counter("simnet.events_processed").inc(executed)

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
