"""The discrete-event simulation engine.

A classic heap-based event loop.  Events are callbacks scheduled at
absolute times; ties are broken by insertion order so the simulation is
deterministic.  Cancellation is supported through handles (lazy deletion:
cancelled events stay in the heap but are skipped), which is what TCP
retransmission timers need.

Performance notes (this is the packet path's innermost loop — ~10^5
events per measurement epoch):

* The event record is a ``list`` subclass laid out as
  ``[time, seq, callback, args, cancelled]`` and is pushed onto the
  heap *directly*: list comparison is element-wise at C level, so
  ``heappush``/``heappop`` order records by ``(time, seq)`` without
  ever dispatching to Python — and without a separate wrapper-tuple
  allocation per event.  The unique ``seq`` guarantees comparison
  never reaches the callback.  (The previous ``order=True`` dataclass
  built a comparison tuple in Python for every sift step, which
  dominated the loop.)
* The record *is* the handle — one allocation per event, constructed
  through the C-level ``list`` initializer.
* ``schedule`` accepts ``*args`` for the callback, so call sites can
  pass ``schedule(d, self.receiver, packet)`` instead of allocating a
  closure per packet.

When telemetry is enabled (:mod:`repro.obs`), every :meth:`Simulator.run`
call adds its executed-event count to the ``simnet.events_processed``
counter — once per call, after the loop, through a counter handle that
is re-resolved only when the registry is replaced (``drain``/``reset``),
so the per-event hot path never touches the registry.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from math import inf

from repro.core.errors import SimulationError
from repro.obs import get_telemetry

# Field indices of the EventHandle record.
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3
_CANCELLED = 4


class EventHandle(list):
    """A scheduled event; also the handle used to cancel it.

    A ``list`` subclass holding ``[time, seq, callback, args,
    cancelled]`` so the record can sit in the heap directly (see the
    module docstring).  Treat it as opaque: use :meth:`cancel` and the
    ``time``/``cancelled`` properties.
    """

    __slots__ = ()

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self[_CANCELLED] = True

    @property
    def cancelled(self) -> bool:
        return self[_CANCELLED]

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self[_TIME]

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "cancelled" if self[_CANCELLED] else "pending"
        return f"EventHandle(t={self[_TIME]:.6f} {self[_CALLBACK]!r} {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[EventHandle] = []
        self._next_seq = itertools.count().__next__
        self._n_processed = 0
        self._telemetry = get_telemetry()
        # Counter handle cache, keyed on registry identity: drain()
        # swaps in a fresh MetricsRegistry, which must invalidate the
        # cached handle or increments would land in a dead registry.
        self._counter_registry = None
        self._events_counter = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostics)."""
        return self._n_processed

    def schedule(
        self, delay: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        event = EventHandle((time, self._next_seq(), callback, args, False))
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        event = EventHandle((time, self._next_seq(), callback, args, False))
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: stop once the next event is later than this time (the
                clock is advanced to ``until``).  ``None`` runs to
                exhaustion.
            max_events: safety valve — raise *before* executing the
                event that would exceed the budget.

        Raises:
            SimulationError: if ``max_events`` would be exceeded.
        """
        heap = self._heap
        pop = heapq.heappop
        limit = inf if until is None else until
        budget = -1 if max_events is None else max_events
        executed = 0
        try:
            while heap:
                event = heap[0]
                time = event[0]
                if time > limit:
                    break
                pop(heap)
                if event[4]:  # cancelled: lazy deletion
                    continue
                if executed == budget:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                self._now = time
                args = event[3]
                if args:
                    event[2](*args)
                else:
                    event[2]()
                executed += 1
        finally:
            self._n_processed += executed
            if executed:
                telemetry = self._telemetry
                if telemetry.enabled:
                    metrics = telemetry.metrics
                    if metrics is not self._counter_registry:
                        self._counter_registry = metrics
                        self._events_counter = metrics.counter(
                            "simnet.events_processed"
                        )
                    self._events_counter.inc(executed)
        if until is not None and self._now < until:
            self._now = until

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        heap = self._heap
        while heap and heap[0][4]:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
