"""A link: drop-tail queue + serializing transmitter + propagation delay.

The link pulls packets from its queue one at a time, holds each for its
serialization time (``size / capacity``), then delivers it to the
downstream receiver after the propagation delay.  This is the standard
output-queued router port model.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.units import Bandwidth
from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet
from repro.simnet.queue import DropTailQueue

#: A packet consumer at the far end of a link.
Receiver = Callable[[Packet], None]


class Link:
    """A unidirectional link.

    Args:
        sim: the event loop.
        capacity: transmission rate.
        prop_delay_s: one-way propagation delay in seconds.
        queue: the attached drop-tail buffer.
        receiver: called with each packet when it arrives downstream.
        name: label for diagnostics.
    """

    __slots__ = (
        "sim",
        "capacity",
        "prop_delay_s",
        "queue",
        "receiver",
        "name",
        "_busy",
        "bytes_delivered",
    )

    def __init__(
        self,
        sim: Simulator,
        capacity: Bandwidth,
        prop_delay_s: float,
        queue: DropTailQueue,
        receiver: Receiver,
        name: str = "link",
    ) -> None:
        if prop_delay_s < 0:
            raise ValueError(f"prop_delay_s must be >= 0, got {prop_delay_s}")
        if capacity.bps <= 0:
            raise ValueError("link capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.prop_delay_s = prop_delay_s
        self.queue = queue
        self.receiver = receiver
        self.name = name
        self._busy = False
        self.bytes_delivered = 0

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link.

        Returns:
            True if the packet entered the buffer (it will eventually be
            delivered), False if it was dropped.
        """
        accepted = self.queue.offer(packet, self.sim.now)
        if accepted and not self._busy:
            self._start_transmission()
        return accepted

    def _start_transmission(self) -> None:
        packet = self.queue.pop(self.sim.now)
        self._busy = True
        tx_time = self.capacity.transmission_delay(packet.size_bytes)
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.bytes_delivered += packet.size_bytes
        # Propagation: the packet arrives downstream prop_delay later.
        self.sim.schedule(self.prop_delay_s, self.receiver, packet)
        if not self.queue.is_empty:
            self._start_transmission()
        else:
            self._busy = False

    def utilization(self, interval: float) -> float:
        """Fraction of ``interval`` spent transmitting (from delivered bytes).

        Valid when ``bytes_delivered`` was zeroed at the interval start.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return min(1.0, self.bytes_delivered * 8 / (self.capacity.bps * interval))
