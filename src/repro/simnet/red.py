"""Random Early Detection (RED) queue.

The paper's testbed bottlenecks were drop-tail, but RED deployment was
the era's live debate (and it changes exactly the quantities the paper
studies: with early random drops, probes and TCP sample the *same*
loss process, removing much of the Section 3.3 sampling mismatch).
This queue lets the packet simulator explore that counterfactual.

Implements the classic gentle-RED of Floyd & Jacobson: an EWMA of the
queue occupancy, linear drop probability between ``min_th`` and
``max_th``, rising to 1 at ``2 * max_th``.
"""

from __future__ import annotations

import numpy as np

from repro.simnet.packet import Packet
from repro.simnet.queue import DropTailQueue


class RedQueue(DropTailQueue):
    """A RED queue, drop decisions in packet-slot units.

    Args:
        capacity_bytes: hard byte bound (as in drop-tail).
        slot_capacity: hard packet-slot bound.
        min_th: average occupancy (packets) where early drops begin.
        max_th: average occupancy where the drop probability reaches
            ``max_p``; beyond ``2 * max_th`` everything is dropped
            (gentle RED ramps linearly in between).
        max_p: drop probability at ``max_th``.
        weight: EWMA weight of the average-queue estimator.
        rng: randomness for the drop decisions.
    """

    def __init__(
        self,
        capacity_bytes: int,
        slot_capacity: int,
        rng: np.random.Generator,
        min_th: float | None = None,
        max_th: float | None = None,
        max_p: float = 0.1,
        weight: float = 0.002,
    ) -> None:
        super().__init__(capacity_bytes, slot_capacity=slot_capacity)
        self.min_th = min_th if min_th is not None else slot_capacity / 6.0
        self.max_th = max_th if max_th is not None else slot_capacity / 2.0
        if not 0 < self.min_th < self.max_th:
            raise ValueError(
                f"need 0 < min_th < max_th, got {self.min_th}, {self.max_th}"
            )
        if not 0.0 < max_p <= 1.0:
            raise ValueError(f"max_p must be in (0, 1], got {max_p}")
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {weight}")
        self.max_p = max_p
        self.weight = weight
        self.rng = rng
        self.avg_queue = 0.0
        self.early_drops = 0

    def offer(self, packet: Packet, now: float) -> bool:
        self.avg_queue = (
            (1.0 - self.weight) * self.avg_queue + self.weight * len(self)
        )
        if self._early_drop():
            # Count the arrival and the drop in the base stats too.
            self._integrate(now)
            self.stats.arrivals += 1
            self.stats.drops += 1
            self.early_drops += 1
            return False
        return super().offer(packet, now)

    def _early_drop(self) -> bool:
        avg = self.avg_queue
        if avg < self.min_th:
            return False
        if avg < self.max_th:
            fraction = (avg - self.min_th) / (self.max_th - self.min_th)
            probability = fraction * self.max_p
        elif avg < 2.0 * self.max_th:
            # Gentle RED: ramp from max_p to 1 over (max_th, 2 max_th).
            fraction = (avg - self.max_th) / self.max_th
            probability = self.max_p + fraction * (1.0 - self.max_p)
        else:
            return True
        return bool(self.rng.random() < probability)
