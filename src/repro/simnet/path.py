"""The dumbbell path every experiment runs on.

A :class:`DumbbellPath` models one wide-area path the way the paper's
analysis does: a single bottleneck in the forward direction (capacity
``C``, finite drop-tail buffer ``B``, propagation delay), and a return
link that is fast and generously buffered (ACKs and probe replies rarely
queue).  Endpoints register by name; packets are dispatched to the
endpoint named in their ``dst`` field when they pop out of a link.

Cross traffic shares the forward bottleneck queue with the target flow
and the probes, which is precisely the interaction the paper studies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.core.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:
    import numpy as np
from repro.core.units import Bandwidth
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.packet import Packet
from repro.simnet.queue import DropTailQueue


class Endpoint(Protocol):
    """Anything that can receive packets at a path end."""

    def receive(self, packet: Packet) -> None:
        """Handle an arriving packet."""


class DumbbellPath:
    """A bidirectional path with a forward bottleneck.

    Args:
        sim: the event loop.
        capacity: bottleneck capacity (forward direction).
        buffer_bytes: forward drop-tail buffer size.
        one_way_delay_s: forward propagation delay; the reverse direction
            uses the same value, so the base RTT is twice this.
        reverse_capacity_factor: the return link's capacity as a multiple
            of the forward capacity (default 10x — effectively
            uncongested, as on real paths where ACK traffic is light).
        random_loss: probability that a forward packet is dropped
            independently of queue state (noisy DSL lines, lossy
            international links).  Requires ``rng`` when positive.
        rng: randomness source for the loss process (and RED).
        aqm: bottleneck queue discipline — ``"droptail"`` (the paper's
            testbed) or ``"red"`` (gentle RED; requires ``rng``).
    """

    #: Reverse buffer is ample: ACKs are small and should rarely drop.
    REVERSE_BUFFER_BYTES = 4_000_000

    def __init__(
        self,
        sim: Simulator,
        capacity: Bandwidth,
        buffer_bytes: int,
        one_way_delay_s: float,
        reverse_capacity_factor: float = 10.0,
        random_loss: float = 0.0,
        rng: "np.random.Generator | None" = None,
        aqm: str = "droptail",
    ) -> None:
        if reverse_capacity_factor <= 0:
            raise ConfigurationError("reverse_capacity_factor must be positive")
        if not 0.0 <= random_loss < 1.0:
            raise ConfigurationError(f"random_loss must be in [0, 1), got {random_loss}")
        if random_loss > 0 and rng is None:
            raise ConfigurationError("random_loss needs an rng")
        if aqm not in ("droptail", "red"):
            raise ConfigurationError(f"unknown aqm {aqm!r}")
        if aqm == "red" and rng is None:
            raise ConfigurationError("RED needs an rng")
        self.sim = sim
        self.capacity = capacity
        self.random_loss = random_loss
        self._rng = rng
        self._endpoints: dict[str, Endpoint] = {}

        # Slot-based buffering: every packet, probe or MTU-sized, takes
        # one slot — see DropTailQueue.
        slots = max(1, buffer_bytes // 1500)
        if aqm == "red":
            from repro.simnet.red import RedQueue

            self.forward_queue: DropTailQueue = RedQueue(
                buffer_bytes, slot_capacity=slots, rng=rng
            )
        else:
            self.forward_queue = DropTailQueue(buffer_bytes, slot_capacity=slots)
        self.forward_link = Link(
            sim,
            capacity,
            one_way_delay_s,
            self.forward_queue,
            self._deliver,
            name="forward",
        )
        self.reverse_queue = DropTailQueue(self.REVERSE_BUFFER_BYTES)
        self.reverse_link = Link(
            sim,
            capacity * reverse_capacity_factor,
            one_way_delay_s,
            self.reverse_queue,
            self._deliver,
            name="reverse",
        )

    @property
    def base_rtt_s(self) -> float:
        """Round-trip propagation delay, with no queueing."""
        return self.forward_link.prop_delay_s + self.reverse_link.prop_delay_s

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach an endpoint; packets with ``dst == name`` go to it."""
        if name in self._endpoints:
            raise ConfigurationError(f"endpoint {name!r} already registered")
        self._endpoints[name] = endpoint

    def send_forward(self, packet: Packet) -> bool:
        """Send a packet through the bottleneck (sender -> receiver side).

        Returns False if the packet was lost — either to the random-loss
        process or to a full bottleneck buffer.
        """
        if self.random_loss > 0 and self._rng.random() < self.random_loss:
            return False
        return self.forward_link.send(packet)

    def send_reverse(self, packet: Packet) -> bool:
        """Send a packet on the return direction (receiver -> sender side)."""
        return self.reverse_link.send(packet)

    def _deliver(self, packet: Packet) -> None:
        endpoint = self._endpoints.get(packet.dst)
        if endpoint is None:
            raise SimulationError(
                f"packet addressed to unknown endpoint {packet.dst!r}: {packet!r}"
            )
        endpoint.receive(packet)
