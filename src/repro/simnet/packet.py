"""Packets: the unit of transfer in the simulator.

Packets carry addressing (``src``/``dst`` endpoint names used by
:class:`~repro.simnet.path.DumbbellPath` dispatch), a kind tag, a
sequence number whose meaning belongs to the sending agent (TCP segment
number, probe id, ...), and a creation timestamp for delay measurement.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """Coarse packet classification used by endpoint dispatch and stats."""

    DATA = "data"
    ACK = "ack"
    PROBE = "probe"
    PROBE_REPLY = "probe-reply"


@dataclass
class Packet:
    """One packet.

    Attributes:
        src: name of the sending endpoint.
        dst: name of the destination endpoint.
        kind: coarse type tag.
        size_bytes: wire size, used for serialization delay and buffers.
        seq: sender-defined sequence number.
        flow: sender-defined flow label, letting several agents share an
            endpoint.
        created_at: simulation time the packet was created (delay
            measurements).
        uid: globally unique id (diagnostics).
    """

    src: str
    dst: str
    kind: PacketKind
    size_bytes: int
    seq: int = 0
    flow: str = ""
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")

    def __repr__(self) -> str:
        return (
            f"Packet({self.kind.value} {self.src}->{self.dst} "
            f"flow={self.flow!r} seq={self.seq} {self.size_bytes}B)"
        )
