"""Packets: the unit of transfer in the simulator.

Packets carry addressing (``src``/``dst`` endpoint names used by
:class:`~repro.simnet.path.DumbbellPath` dispatch), a kind tag, a
sequence number whose meaning belongs to the sending agent (TCP segment
number, probe id, ...), and a creation timestamp for delay measurement.
"""

from __future__ import annotations

import enum
import itertools

_next_packet_id = itertools.count().__next__


class PacketKind(enum.Enum):
    """Coarse packet classification used by endpoint dispatch and stats."""

    DATA = "data"
    ACK = "ack"
    PROBE = "probe"
    PROBE_REPLY = "probe-reply"


class Packet:
    """One packet.

    A ``__slots__`` class rather than a dataclass: packets are the most
    allocated object in the packet-level simulator (one per segment,
    ACK, probe, and cross-traffic arrival), and slots cut both the
    per-instance memory and the attribute-access cost on the
    enqueue/dequeue path.

    Attributes:
        src: name of the sending endpoint.
        dst: name of the destination endpoint.
        kind: coarse type tag.
        size_bytes: wire size, used for serialization delay and buffers.
        seq: sender-defined sequence number.
        flow: sender-defined flow label, letting several agents share an
            endpoint.
        created_at: simulation time the packet was created (delay
            measurements).
        uid: globally unique id (diagnostics).
    """

    __slots__ = (
        "src",
        "dst",
        "kind",
        "size_bytes",
        "seq",
        "flow",
        "created_at",
        "uid",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        kind: PacketKind,
        size_bytes: int,
        seq: int = 0,
        flow: str = "",
        created_at: float = 0.0,
        uid: int | None = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size_bytes = size_bytes
        self.seq = seq
        self.flow = flow
        self.created_at = created_at
        self.uid = _next_packet_id() if uid is None else uid

    def __repr__(self) -> str:
        return (
            f"Packet({self.kind.value} {self.src}->{self.dst} "
            f"flow={self.flow!r} seq={self.seq} {self.size_bytes}B)"
        )
