"""Cross-traffic sources sharing the bottleneck with the target flow.

Three source types cover the paper's cross-traffic taxonomy
(Section 3.4 — the "congestion responsiveness" of cross traffic decides
whether avail-bw under- or over-estimates TCP throughput):

* :class:`PoissonSource` — inelastic background traffic: packets with
  exponential inter-arrivals at a configurable mean rate.  The rate can
  be changed at runtime, which is how the fluid-model-style level shifts
  are injected into packet-level experiments.
* :class:`ParetoOnOffSource` — bursty inelastic traffic: heavy-tailed ON
  periods at a peak rate separated by exponential OFF periods, the
  classic self-similar-traffic building block.
* :class:`ElasticCrossFlow` — a persistent TCP Reno flow, the elastic
  cross traffic that yields bandwidth to (and takes it from) the target
  flow.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.rng import PredrawnExponentials
from repro.core.units import mbps_to_bps
from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet, PacketKind
from repro.simnet.path import DumbbellPath
from repro.tcp.reno import RenoSender
from repro.tcp.sink import TcpSink

#: Wire size of cross-traffic packets (full-size MTU frames).
CROSS_PACKET_BYTES = 1500

_source_ids = itertools.count()


class CrossTrafficSink:
    """A terminal endpoint that discards whatever it receives."""

    __slots__ = ("packets_received", "bytes_received")

    def __init__(self) -> None:
        self.packets_received = 0
        self.bytes_received = 0

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size_bytes


class PoissonSource:
    """Inelastic cross traffic with Poisson packet arrivals.

    Args:
        sim: the event loop.
        path: the shared path (traffic uses the forward bottleneck).
        sink_name: address of a registered :class:`CrossTrafficSink`.
        rate_mbps: mean offered rate; adjustable via :meth:`set_rate`.
        rng: randomness for the inter-arrival draws.
        batch_size: how many inter-arrival draws to pre-draw from
            ``rng`` in one vectorized numpy call.  Any value produces
            the bit-identical arrival sequence (see
            :class:`~repro.core.rng.PredrawnExponentials`); values > 1
            are only safe when no other consumer draws from ``rng``
            while the source is running — :meth:`stop` resyncs the
            generator past exactly the consumed draws.
    """

    __slots__ = (
        "sim",
        "path",
        "sink_name",
        "rng",
        "name",
        "_rate_bps",
        "_running",
        "_seq",
        "packets_sent",
        "_draws",
    )

    def __init__(
        self,
        sim: Simulator,
        path: DumbbellPath,
        sink_name: str,
        rate_mbps: float,
        rng: np.random.Generator,
        batch_size: int = 1,
    ) -> None:
        if rate_mbps < 0:
            raise ValueError(f"rate_mbps must be >= 0, got {rate_mbps}")
        self.sim = sim
        self.path = path
        self.sink_name = sink_name
        self.rng = rng
        self.name = f"poisson{next(_source_ids)}"
        self._rate_bps = mbps_to_bps(rate_mbps)
        self._running = False
        self._seq = 0
        self.packets_sent = 0
        # Draws are held as *standard* exponentials and scaled by the
        # current mean gap at consumption time, so set_rate() keeps
        # taking effect at the next arrival even mid-batch.
        self._draws = PredrawnExponentials(rng, batch_size)

    def set_rate(self, rate_mbps: float) -> None:
        """Change the offered rate (takes effect at the next arrival)."""
        if rate_mbps < 0:
            raise ValueError(f"rate_mbps must be >= 0, got {rate_mbps}")
        self._rate_bps = mbps_to_bps(rate_mbps)

    def start(self) -> None:
        """Begin emitting packets."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop emitting packets (pending arrival is skipped).

        Resyncs a shared generator past exactly the draws consumed, so
        whoever draws from it next sees the same bits as under scalar
        (unbatched) operation.
        """
        self._running = False
        self._draws.finalize()

    def _schedule_next(self) -> None:
        if not self._running:
            return
        if self._rate_bps <= 0:
            # Idle: poll again shortly in case the rate is raised.
            self.sim.schedule(0.1, self._schedule_next)
            return
        mean_gap = CROSS_PACKET_BYTES * 8 / self._rate_bps
        self.sim.schedule(self._draws.next() * mean_gap, self._emit)

    def _emit(self) -> None:
        if not self._running:
            return
        name = self.name
        packet = Packet(
            name,
            self.sink_name,
            PacketKind.DATA,
            CROSS_PACKET_BYTES,
            self._seq,
            name,
            self.sim.now,
        )
        self._seq += 1
        self.packets_sent += 1
        self.path.send_forward(packet)
        self._schedule_next()


class ParetoOnOffSource:
    """Bursty inelastic traffic: Pareto ON periods, exponential OFF.

    Args:
        sim: the event loop.
        path: the shared path.
        sink_name: address of a registered sink.
        peak_rate_mbps: CBR rate during ON periods.
        mean_on_s: mean ON duration (Pareto with the given shape).
        mean_off_s: mean OFF duration (exponential).
        shape: Pareto tail index; 1.5 gives the heavy tails used in
            self-similar traffic models.
        rng: randomness source.
    """

    def __init__(
        self,
        sim: Simulator,
        path: DumbbellPath,
        sink_name: str,
        peak_rate_mbps: float,
        mean_on_s: float = 1.0,
        mean_off_s: float = 2.0,
        shape: float = 1.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if peak_rate_mbps <= 0:
            raise ValueError(f"peak_rate_mbps must be positive, got {peak_rate_mbps}")
        if shape <= 1.0:
            raise ValueError(f"shape must exceed 1 for a finite mean, got {shape}")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("mean_on_s and mean_off_s must be positive")
        self.sim = sim
        self.path = path
        self.sink_name = sink_name
        self.peak_rate_bps = mbps_to_bps(peak_rate_mbps)
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.shape = shape
        self.rng = rng if rng is not None else np.random.default_rng()
        self.name = f"pareto{next(_source_ids)}"
        self._running = False
        self._on = False
        self._on_ends_at = 0.0
        self._seq = 0
        self.packets_sent = 0

    def start(self) -> None:
        """Begin the ON/OFF cycle (starts OFF)."""
        if self._running:
            return
        self._running = True
        self._begin_off()

    def stop(self) -> None:
        self._running = False

    def _pareto_on_duration(self) -> float:
        # Pareto with mean = xm * shape / (shape - 1)  =>  xm from mean.
        xm = self.mean_on_s * (self.shape - 1.0) / self.shape
        return float(xm * (1.0 + self.rng.pareto(self.shape)))

    def _begin_off(self) -> None:
        if not self._running:
            return
        self._on = False
        self.sim.schedule(self.rng.exponential(self.mean_off_s), self._begin_on)

    def _begin_on(self) -> None:
        if not self._running:
            return
        self._on = True
        self._on_ends_at = self.sim.now + self._pareto_on_duration()
        self._emit()

    def _emit(self) -> None:
        if not self._running or not self._on:
            return
        if self.sim.now >= self._on_ends_at:
            self._begin_off()
            return
        packet = Packet(
            src=self.name,
            dst=self.sink_name,
            kind=PacketKind.DATA,
            size_bytes=CROSS_PACKET_BYTES,
            seq=self._seq,
            flow=self.name,
            created_at=self.sim.now,
        )
        self._seq += 1
        self.packets_sent += 1
        self.path.send_forward(packet)
        self.sim.schedule(CROSS_PACKET_BYTES * 8 / self.peak_rate_bps, self._emit)


class ElasticCrossFlow:
    """A persistent TCP Reno cross flow (elastic background traffic)."""

    def __init__(
        self,
        sim: Simulator,
        path: DumbbellPath,
        mss_bytes: int = 1460,
        max_window_bytes: int = 1_000_000,
    ) -> None:
        uid = next(_source_ids)
        flow = f"elastic{uid}"
        src = f"{flow}.snd"
        dst = f"{flow}.rcv"
        self.sink = TcpSink(sim, path, name=dst, peer=src, flow=flow)
        self.sender = RenoSender(
            sim,
            path,
            name=src,
            peer=dst,
            flow=flow,
            mss_bytes=mss_bytes,
            max_window_segments=max_window_bytes / mss_bytes,
        )
        path.register(src, self.sender)
        path.register(dst, self.sink)

    def start(self) -> None:
        """Begin the persistent transfer."""
        self.sender.start()

    def stop(self) -> None:
        self.sender.stop()
