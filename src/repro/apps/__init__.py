"""The measurement tools and traffic sources of the paper's testbed.

* :class:`~repro.apps.iperf.BulkTransferApp` — the IPerf-like target
  transfer: a TCP Reno bulk flow run for a fixed duration with a
  configurable socket-buffer (maximum window) limit.
* :class:`~repro.apps.pinger.Pinger` /
  :class:`~repro.apps.pinger.PingResponder` — the homespun ping utility:
  41-byte probes every 100 ms measuring RTT and loss rate.
* :func:`~repro.apps.pathload.measure_availbw` — a SLoPS-style iterative
  available-bandwidth estimator (pathload).
* :mod:`repro.apps.cross` — cross-traffic sources: Poisson packet
  arrivals, Pareto on/off bursts, and persistent elastic TCP flows.
"""

from repro.apps.cross import (
    CrossTrafficSink,
    ElasticCrossFlow,
    ParetoOnOffSource,
    PoissonSource,
)
from repro.apps.iperf import BulkTransferApp, TransferResult
from repro.apps.pathload import PathloadResult, measure_availbw
from repro.apps.pinger import PingResponder, Pinger, PingResult

__all__ = [
    "BulkTransferApp",
    "CrossTrafficSink",
    "ElasticCrossFlow",
    "ParetoOnOffSource",
    "PathloadResult",
    "PingResponder",
    "PingResult",
    "Pinger",
    "PoissonSource",
    "TransferResult",
    "measure_availbw",
]
