"""The IPerf-like target transfer application.

Runs a bulk TCP Reno flow for a fixed duration and reports the achieved
throughput — delivered bytes at the receiver over the transfer duration,
which is what IPerf reports and what the paper's ``R`` denotes.  The
maximum window (socket buffer) is the knob the paper turns between 1 MB
(congestion-limited) and 20 KB (window-limited).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.units import bits_to_mbps, bytes_to_bits
from repro.simnet.engine import Simulator
from repro.simnet.path import DumbbellPath
from repro.tcp.reno import RenoSender
from repro.tcp.sink import TcpSink

_transfer_ids = itertools.count()


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one bulk transfer.

    Attributes:
        throughput_mbps: delivered payload over the duration, in Mbps.
        duration_s: measured interval length.
        bytes_delivered: payload bytes that reached the receiver in order.
        retransmissions: sender retransmission count.
        timeouts: sender RTO count.
        mean_rtt_s: mean sender-side RTT sample, or None.
        interval_throughputs: per-sub-interval throughput in Mbps when
            checkpoints were requested (Section 4.2.7's 30/60/120 s cuts).
    """

    throughput_mbps: float
    duration_s: float
    bytes_delivered: int
    retransmissions: int
    timeouts: int
    mean_rtt_s: float | None
    interval_throughputs: tuple[float, ...] = ()


class BulkTransferApp:
    """A fixed-duration bulk TCP transfer on a path.

    Args:
        sim: the event loop.
        path: the path to transfer over.
        max_window_bytes: socket-buffer limit (the paper's ``W``).
        mss_bytes: TCP segment size.
        ack_every: receiver delayed-ACK factor (the models' ``b``).

    The sender and sink endpoints register themselves on the path using
    unique names, so several transfers can coexist.
    """

    def __init__(
        self,
        sim: Simulator,
        path: DumbbellPath,
        max_window_bytes: int = 1_000_000,
        mss_bytes: int = 1460,
        ack_every: int = 2,
        transfer_bytes: int | None = None,
    ) -> None:
        uid = next(_transfer_ids)
        flow = f"bulk{uid}"
        src = f"{flow}.snd"
        dst = f"{flow}.rcv"
        self.sim = sim
        self.mss_bytes = mss_bytes
        self._limit_segments = (
            None
            if transfer_bytes is None
            else max(1, -(-transfer_bytes // mss_bytes))  # ceil division
        )
        self.sink = TcpSink(sim, path, name=dst, peer=src, flow=flow, ack_every=ack_every)
        self.sender = RenoSender(
            sim,
            path,
            name=src,
            peer=dst,
            flow=flow,
            mss_bytes=mss_bytes,
            max_window_segments=max_window_bytes / mss_bytes,
            data_limit_segments=self._limit_segments,
        )
        path.register(src, self.sender)
        path.register(dst, self.sink)
        self._checkpoints: list[tuple[float, int]] = []

    def run(
        self,
        duration_s: float,
        start_delay_s: float = 0.0,
        checkpoint_times_s: tuple[float, ...] = (),
    ) -> TransferResult:
        """Schedule the transfer and run the simulator through it.

        Args:
            duration_s: transfer length (the paper uses 50 s or 120 s).
            start_delay_s: delay before the transfer begins.
            checkpoint_times_s: offsets from the start at which cumulative
                throughput snapshots are taken (e.g. ``(30, 60, 120)``).

        Returns:
            The transfer outcome.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        start_time = self.sim.now + start_delay_s
        bytes_at_start: list[int] = []

        def begin() -> None:
            bytes_at_start.append(self.sink.bytes_delivered)
            self.sender.start()

        self.sim.schedule(start_delay_s, begin)
        for offset in checkpoint_times_s:
            if not 0 < offset <= duration_s:
                raise ValueError(
                    f"checkpoint {offset} outside transfer duration {duration_s}"
                )
            self.sim.schedule_at(
                start_time + offset,
                lambda off=offset: self._checkpoints.append(
                    (off, self.sink.bytes_delivered)
                ),
            )

        self.sim.run(until=start_time + duration_s)
        self.sender.stop()


        delivered = self.sink.bytes_delivered - bytes_at_start[0]
        intervals = tuple(
            bits_to_mbps(bytes_to_bits(nbytes - bytes_at_start[0]), off)
            for off, nbytes in sorted(self._checkpoints)
        )
        return TransferResult(
            throughput_mbps=bits_to_mbps(bytes_to_bits(delivered), duration_s),
            duration_s=duration_s,
            bytes_delivered=delivered,
            retransmissions=self.sender.stats.retransmissions,
            timeouts=self.sender.stats.timeouts,
            mean_rtt_s=self.sender.stats.mean_rtt_s,
            interval_throughputs=intervals,
        )

    def run_to_completion(
        self, timeout_s: float = 600.0
    ) -> TransferResult:
        """Run a fixed-size transfer until every segment is delivered.

        Requires the app to have been built with ``transfer_bytes``.
        The reported duration is the time from the first transmission to
        the delivery of the last segment — what a short-transfer latency
        model (Cardwell et al.) predicts.

        Raises:
            ValueError: if the app has no size limit, or the transfer
                does not complete within ``timeout_s`` (a dead path).
        """
        if self._limit_segments is None:
            raise ValueError("run_to_completion needs transfer_bytes")
        start_time = self.sim.now
        deadline = start_time + timeout_s
        self.sender.start()
        # Advance in per-RTT-scale slices until everything arrived.
        while self.sink.segments_delivered < self._limit_segments:
            if self.sim.now >= deadline:
                self.sender.stop()
                raise ValueError(
                    f"transfer incomplete after {timeout_s}s "
                    f"({self.sink.segments_delivered}/{self._limit_segments})"
                )
            next_event = self.sim.peek_time()
            if next_event is None:
                self.sender.stop()
                raise ValueError("simulation stalled before completion")
            self.sim.run(until=min(next_event + 0.05, deadline))
        self.sender.stop()
        duration = self.sim.now - start_time
        delivered = self.sink.bytes_delivered
        return TransferResult(
            throughput_mbps=bits_to_mbps(bytes_to_bits(delivered), duration),
            duration_s=duration,
            bytes_delivered=delivered,
            retransmissions=self.sender.stats.retransmissions,
            timeouts=self.sender.stats.timeouts,
            mean_rtt_s=self.sender.stats.mean_rtt_s,
        )
