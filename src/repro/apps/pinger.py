"""The paper's homespun ping utility.

A 41-byte probe every 100 ms; the responder echoes each probe back over
the reverse direction.  The prober reports the mean RTT and the loss
rate over the measurement interval — the paper's ``T_hat``/``p_hat``
(before the target flow) and ``T_tilde``/``p_tilde`` (during it).

Probe *replies* can in principle be lost too; on the paper's paths the
reverse direction is uncongested, and in this simulator the reverse link
is over-provisioned, so observed losses are forward-path losses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet, PacketKind
from repro.simnet.path import DumbbellPath

#: The paper's probing parameters.
PROBE_SIZE_BYTES = 41
PROBE_PERIOD_S = 0.1

#: A probe unanswered this long counts as lost.
PROBE_TIMEOUT_S = 2.0

_pinger_ids = itertools.count()


@dataclass(frozen=True)
class PingResult:
    """Summary of one probing interval.

    Attributes:
        rtt_mean_s: mean RTT of answered probes (None if none answered).
        rtt_median_s: median RTT of answered probes.
        loss_rate: unanswered probes / probes sent.
        probes_sent: number of probes emitted.
        rtt_samples_s: the raw per-probe RTTs.
    """

    rtt_mean_s: float | None
    rtt_median_s: float | None
    loss_rate: float
    probes_sent: int
    rtt_samples_s: tuple[float, ...]


class PingResponder:
    """Echo endpoint: bounces probes back to their sender."""

    __slots__ = ("sim", "path", "name")

    def __init__(self, sim: Simulator, path: DumbbellPath, name: str) -> None:
        self.sim = sim
        self.path = path
        self.name = name

    def receive(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.PROBE:
            return
        # Positional construction; created_at preserves the original
        # send time so the prober reads the RTT off the reply.
        reply = Packet(
            self.name,
            packet.src,
            PacketKind.PROBE_REPLY,
            packet.size_bytes,
            packet.seq,
            packet.flow,
            packet.created_at,
        )
        self.path.send_reverse(reply)


class Pinger:
    """Periodic prober measuring RTT and loss on a path.

    Args:
        sim: the event loop.
        path: path to probe (forward direction to the responder).
        responder_name: address of the :class:`PingResponder`.
        period_s: inter-probe gap; the paper uses 100 ms.
        probe_size_bytes: probe wire size; the paper uses 41 bytes.
    """

    __slots__ = (
        "sim",
        "path",
        "name",
        "responder_name",
        "period_s",
        "probe_size_bytes",
        "_next_seq",
        "_probes_sent",
        "_rtts",
        "_running",
    )

    def __init__(
        self,
        sim: Simulator,
        path: DumbbellPath,
        responder_name: str,
        period_s: float = PROBE_PERIOD_S,
        probe_size_bytes: int = PROBE_SIZE_BYTES,
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        uid = next(_pinger_ids)
        self.sim = sim
        self.path = path
        self.name = f"ping{uid}"
        self.responder_name = responder_name
        self.period_s = period_s
        self.probe_size_bytes = probe_size_bytes
        self._next_seq = 0
        self._probes_sent = 0
        self._rtts: list[float] = []
        self._running = False
        path.register(self.name, self)

    def receive(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.PROBE_REPLY or packet.flow != self.name:
            return
        rtt = self.sim.now - packet.created_at
        if rtt <= PROBE_TIMEOUT_S:
            self._rtts.append(rtt)

    def start(self, duration_s: float) -> None:
        """Begin a probing interval of ``duration_s`` seconds.

        Non-blocking: probes are emitted as the caller drives the
        simulator.  Call :meth:`collect` after the interval (plus the
        probe timeout) has elapsed.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        self._rtts = []
        self._probes_sent = 0
        self._running = True
        # Fixed probe count (duration / period), immune to float drift in
        # the accumulated schedule times — the paper's 60 s interval at
        # 10 Hz is exactly 600 probes.
        probe_budget = int(round(duration_s / self.period_s))

        # Hoist per-probe lookups out of the closure; the probe loop
        # runs inside the simulator's hot path.
        sim = self.sim
        schedule = sim.schedule
        send_forward = self.path.send_forward
        period = self.period_s
        name = self.name
        responder = self.responder_name
        size = self.probe_size_bytes
        probe_kind = PacketKind.PROBE

        def send_probe() -> None:
            if not self._running or self._probes_sent >= probe_budget:
                return
            probe = Packet(
                name, responder, probe_kind, size, self._next_seq, name, sim.now
            )
            self._next_seq += 1
            self._probes_sent += 1
            send_forward(probe)
            schedule(period, send_probe)

        send_probe()

    def collect(self) -> PingResult:
        """Stop probing and summarize the answered probes."""
        self._running = False
        sent = self._probes_sent
        answered = len(self._rtts)
        rtts = np.asarray(self._rtts)
        return PingResult(
            rtt_mean_s=float(rtts.mean()) if answered else None,
            rtt_median_s=float(np.median(rtts)) if answered else None,
            loss_rate=(sent - answered) / sent if sent else 0.0,
            probes_sent=sent,
            rtt_samples_s=tuple(self._rtts),
        )

    def measure(self, duration_s: float) -> PingResult:
        """Probe for ``duration_s`` seconds, driving the simulator.

        Convenience wrapper: runs the simulator through the probing
        interval plus the probe timeout so late replies are counted.
        """
        self.start(duration_s)
        self.sim.run(until=self.sim.now + duration_s + PROBE_TIMEOUT_S)
        return self.collect()
