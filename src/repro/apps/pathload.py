"""A SLoPS-style available-bandwidth estimator (pathload).

Pathload (Jain & Dovrolis) estimates the available bandwidth of a path
by Self-Loading Periodic Streams: it sends a train of equal-size packets
at a chosen rate and checks whether their one-way delays exhibit an
increasing trend.  If the train rate exceeds the available bandwidth the
bottleneck queue builds up during the train and delays increase;
otherwise they do not.  A binary search over the rate converges to the
avail-bw region.

The estimator here follows that structure: Pairwise Comparison Test
(PCT) on the one-way delays of each train, binary search with a
configurable resolution, and an idle gap between trains so one train's
queue build-up does not contaminate the next.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet, PacketKind
from repro.simnet.path import DumbbellPath

#: Pathload's stream parameters (packets per train, packet size).
TRAIN_LENGTH = 100
TRAIN_PACKET_BYTES = 800

#: PCT threshold: above this fraction of increasing steps, the one-way
#: delays are trending upward (pathload uses 0.66; the midpoint of its
#: increasing/non-increasing bands is a robust single threshold).
PCT_INCREASING_THRESHOLD = 0.6

#: Idle gap between trains, letting the queue drain.
INTER_TRAIN_GAP_S = 0.5

_pathload_ids = itertools.count()


@dataclass(frozen=True)
class PathloadResult:
    """Outcome of one avail-bw measurement.

    Attributes:
        availbw_mbps: the estimate (midpoint of the final search bracket).
        low_mbps: final lower bracket.
        high_mbps: final upper bracket.
        iterations: trains sent.
        duration_s: wall-clock (simulated) measurement time.
    """

    availbw_mbps: float
    low_mbps: float
    high_mbps: float
    iterations: int
    duration_s: float


class _TrainReceiver:
    """Records one-way delays of train packets."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.owds: list[float] = []
        self.train_id = -1

    def arm(self, train_id: int) -> None:
        self.owds = []
        self.train_id = train_id

    def receive(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.PROBE or packet.seq // 1000 != self.train_id:
            return
        self.owds.append(self.sim.now - packet.created_at)


#: Number of median-filtered groups the train is split into for PCT.
PCT_GROUPS = 10


def _pct_metric(owds: list[float]) -> float:
    """PCT over median-filtered groups of one-way delays.

    Raw pairwise comparisons are dominated by per-packet queue drain
    between probes, so pathload median-filters: the train is split into
    groups, and the fraction of increasing steps between consecutive
    group medians is the metric.  A self-loading train drives the group
    medians up monotonically (PCT near 1); below the avail-bw the medians
    wander (PCT near 0.5).
    """
    if len(owds) < PCT_GROUPS:
        return 0.0
    group_size = len(owds) // PCT_GROUPS
    medians = []
    for g in range(PCT_GROUPS):
        group = sorted(owds[g * group_size : (g + 1) * group_size])
        medians.append(group[len(group) // 2])
    increases = sum(1 for a, b in zip(medians, medians[1:]) if b > a)
    return increases / (len(medians) - 1)


def measure_availbw(
    sim: Simulator,
    path: DumbbellPath,
    max_rate_mbps: float,
    resolution_mbps: float = 0.5,
    max_iterations: int = 12,
) -> PathloadResult:
    """Estimate the path's available bandwidth by iterative probing.

    Drives the simulator (trains are sent and received inside this call);
    any cross traffic already running on the path keeps flowing, which is
    what loads the bottleneck in the first place.

    Args:
        sim: the event loop.
        path: the path to measure.
        max_rate_mbps: upper bound for the rate search (e.g. a known or
            assumed path capacity).
        resolution_mbps: stop when the bracket is narrower than this.
        max_iterations: hard cap on trains.

    Returns:
        The avail-bw estimate and the search diagnostics.
    """
    if max_rate_mbps <= 0:
        raise ValueError(f"max_rate_mbps must be positive, got {max_rate_mbps}")
    if resolution_mbps <= 0:
        raise ValueError(f"resolution_mbps must be positive, got {resolution_mbps}")

    uid = next(_pathload_ids)
    receiver = _TrainReceiver(sim, name=f"pathload{uid}.rcv")
    sender_name = f"pathload{uid}.snd"
    path.register(receiver.name, receiver)

    start_time = sim.now
    low, high = 0.0, max_rate_mbps
    iterations = 0

    for train_id in range(max_iterations):
        if high - low <= resolution_mbps:
            break
        rate_mbps = (low + high) / 2.0
        receiver.arm(train_id)
        gap_s = TRAIN_PACKET_BYTES * 8 / (rate_mbps * 1e6)
        for k in range(TRAIN_LENGTH):
            packet = Packet(
                src=sender_name,
                dst=receiver.name,
                kind=PacketKind.PROBE,
                size_bytes=TRAIN_PACKET_BYTES,
                seq=train_id * 1000 + k,
                flow=sender_name,
                created_at=sim.now + k * gap_s,
            )
            sim.schedule(k * gap_s, path.send_forward, packet)
        train_duration = TRAIN_LENGTH * gap_s
        sim.run(until=sim.now + train_duration + INTER_TRAIN_GAP_S)
        iterations += 1

        if _pct_metric(receiver.owds) > PCT_INCREASING_THRESHOLD:
            high = rate_mbps  # rate exceeds avail-bw: delays trended up
        else:
            low = rate_mbps

    return PathloadResult(
        availbw_mbps=(low + high) / 2.0,
        low_mbps=low,
        high_mbps=high,
        iterations=iterations,
        duration_s=sim.now - start_time,
    )
