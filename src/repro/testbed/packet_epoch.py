"""One measurement epoch at packet granularity (the paper's Fig. 1).

:class:`PacketEpochRunner` executes the epoch timeline on the
discrete-event packet simulator:

1. a pathload avail-bw measurement,
2. 60 s of pre-transfer probing (600 pings at 10 Hz),
3. the target transfer, with concurrent probing for the during-flow
   RTT/loss estimates,

against the same :class:`~repro.paths.config.PathConfig` the fluid model
consumes — the cross traffic runs at the configured utilization as a
Poisson aggregate plus optional elastic (TCP) flows, and DSL-style
random loss is injected at the path level.

This runner is ~10^5 simulation events per epoch, so it powers the
validation tests and the packet-level example, not the full campaign
(that is what ``repro.fastpath`` is for; see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.apps.cross import CrossTrafficSink, ElasticCrossFlow, PoissonSource
from repro.apps.iperf import BulkTransferApp
from repro.apps.pathload import measure_availbw
from repro.apps.pinger import PingResponder, Pinger
from repro.core.units import Bandwidth
from repro.formulas.params import TcpParameters
from repro.obs import get_telemetry
from repro.obs.spans import record_epoch_spans
from repro.paths.config import PathConfig
from repro.paths.records import EpochMeasurement, EpochTruth
from repro.simnet.engine import Simulator
from repro.simnet.path import DumbbellPath

#: Warm-up before measurements so the cross traffic reaches steady state.
WARMUP_S = 5.0

#: The paper's pre-transfer probing interval.
PRE_PROBE_DURATION_S = 60.0

#: Vectorized pre-draw depth for the Poisson cross-traffic source.
#: Batching is bit-identical to scalar draws *only* while the source is
#: the epoch's sole consumer of the shared generator, so it is enabled
#: just for the common configuration where that holds: no per-packet
#: random-loss draws (``random_loss == 0``) and a drop-tail bottleneck
#: (RED draws per-arrival drop decisions from the same generator).
POISSON_BATCH = 512


class PacketEpochRunner:
    """Runs measurement epochs on the packet simulator.

    Each epoch gets a fresh simulator (epochs are ~3 minutes apart; the
    queues drain in between) while the utilization evolves across epochs
    through the injected values.

    Args:
        config: the path to emulate.
        rng: randomness for cross traffic and the loss process.
        aqm: bottleneck queue discipline ("droptail" or "red") —
            drop-tail matches the paper's testbed; RED is the
            counterfactual explored by ``bench_red_counterfactual.py``.
    """

    def __init__(
        self,
        config: PathConfig,
        rng: np.random.Generator,
        aqm: str = "droptail",
    ) -> None:
        self.config = config
        self.rng = rng
        self.aqm = aqm
        n_elastic = int(round(config.elasticity * min(config.n_cross_flows, 4)))
        self._n_elastic = n_elastic

    def run_epoch(
        self,
        utilization: float,
        tcp: TcpParameters | None = None,
        transfer_duration_s: float = 50.0,
        pre_probe_duration_s: float = PRE_PROBE_DURATION_S,
        path_id: str | None = None,
        trace_index: int = 0,
        epoch_index: int = 0,
    ) -> EpochMeasurement:
        """Execute one epoch at the given cross-traffic utilization.

        Args:
            utilization: offered cross load as a fraction of capacity
                (inelastic aggregate; elastic flows come on top per the
                path's elasticity).
            tcp: target transfer parameters.
            transfer_duration_s: target transfer length.
            pre_probe_duration_s: pre-transfer ping interval (60 s in
                the paper; reducible for faster tests).
        """
        if not 0.0 <= utilization < 1.0:
            raise ValueError(f"utilization must be in [0, 1), got {utilization}")
        tcp = tcp or TcpParameters.congestion_limited()
        cfg = self.config

        telemetry = get_telemetry()
        clock = telemetry.phase_clock()
        sim = Simulator()
        path = DumbbellPath(
            sim,
            Bandwidth.from_mbps(cfg.capacity_mbps),
            buffer_bytes=cfg.buffer_bytes,
            one_way_delay_s=cfg.base_rtt_s / 2.0,
            random_loss=cfg.random_loss,
            rng=self.rng,
            aqm=self.aqm,
        )
        cross_sink = CrossTrafficSink()
        path.register("cross-sink", cross_sink)
        # If the elastic share rounds to zero flows, fold it back into
        # the inelastic aggregate so the offered load stays as configured.
        elastic_share = cfg.elasticity if self._n_elastic else 0.0
        inelastic_rate = utilization * (1.0 - elastic_share) * cfg.capacity_mbps
        batch_size = (
            POISSON_BATCH
            if cfg.random_loss == 0 and self.aqm == "droptail"
            else 1
        )
        source = PoissonSource(
            sim,
            path,
            "cross-sink",
            rate_mbps=inelastic_rate,
            rng=self.rng,
            batch_size=batch_size,
        )
        source.start()
        # Elastic cross flows are remotely limited (other bottlenecks,
        # receiver windows): cap each flow's window so the aggregate
        # offers the configured elastic share of the load — they yield
        # under congestion but do not saturate the path on their own.
        elastic_flows = []
        # The stops must also run when the epoch aborts mid-flight
        # (``max_events`` overrun, injected fault, any exception):
        # ``source.stop()`` is what rewinds the shared generator past
        # exactly the consumed pre-drawn exponentials, and a retry that
        # skipped it would see a desynced RNG and silently produce a
        # different trace.  Both stops are idempotent.
        try:
            if self._n_elastic:
                elastic_rate_each = (
                    utilization * cfg.elasticity * cfg.capacity_mbps / self._n_elastic
                )
                window_bytes = max(
                    2920, int(elastic_rate_each * 1e6 * cfg.base_rtt_s * 1.5 / 8)
                )
                elastic_flows = [
                    ElasticCrossFlow(sim, path, max_window_bytes=window_bytes)
                    for _ in range(self._n_elastic)
                ]
            for flow in elastic_flows:
                flow.start()
            responder = PingResponder(sim, path, "pingd")
            path.register("pingd", responder)

            sim.run(until=WARMUP_S)
            clock.lap("setup")

            # 1. Avail-bw measurement (drives the simulator itself).
            pathload = measure_availbw(
                sim, path, max_rate_mbps=cfg.capacity_mbps * 1.2
            )
            clock.lap("pathload")

            # 2. Pre-transfer probing.
            pre_pinger = Pinger(sim, path, "pingd")
            pre = pre_pinger.measure(pre_probe_duration_s)
            clock.lap("ping")

            # 3. The target transfer with concurrent probing.
            during_pinger = Pinger(sim, path, "pingd")
            during_pinger.start(transfer_duration_s)
            app = BulkTransferApp(
                sim,
                path,
                max_window_bytes=tcp.max_window_bytes,
                mss_bytes=tcp.mss_bytes,
                ack_every=tcp.ack_every,
            )
            transfer = app.run(duration_s=transfer_duration_s)
            during = during_pinger.collect()
            clock.lap("iperf")
        finally:
            for flow in elastic_flows:
                flow.stop()
            source.stop()

        if clock.enabled:
            queue_stats = path.forward_queue.stats
            telemetry.counter("simnet.queue_drops").inc(queue_stats.drops)
            telemetry.counter("tcp.retransmits").inc(
                transfer.retransmissions
            )
            telemetry.counter("tcp.timeouts").inc(transfer.timeouts)
            telemetry.record_epoch(
                "packet_epoch",
                path_id or cfg.path_id,
                trace_index,
                epoch_index,
                clock.phases,
                events_processed=sim.events_processed,
                queue_drops=queue_stats.drops,
                queue_arrivals=queue_stats.arrivals,
                retransmits=transfer.retransmissions,
                timeouts=transfer.timeouts,
                utilization=round(utilization, 6),
            )
            # Under an open unit span, the laps also become a
            # packet_epoch span with phase children.
            record_epoch_spans(
                telemetry,
                "packet_epoch",
                path_id or cfg.path_id,
                trace_index,
                epoch_index,
                clock.phases,
            )

        that_s = pre.rtt_mean_s if pre.rtt_mean_s is not None else cfg.base_rtt_s
        ttilde_s = (
            during.rtt_mean_s if during.rtt_mean_s is not None else that_s
        )
        return EpochMeasurement(
            path_id=path_id or cfg.path_id,
            trace_index=trace_index,
            epoch_index=epoch_index,
            start_time_s=0.0,
            ahat_mbps=max(pathload.availbw_mbps, 0.05),
            phat=pre.loss_rate,
            that_s=that_s,
            throughput_mbps=max(transfer.throughput_mbps, 1e-3),
            ptilde=during.loss_rate,
            ttilde_s=ttilde_s,
            truth=EpochTruth(
                utilization_pre=utilization,
                utilization_during=utilization,
                loss_event_rate=(
                    transfer.timeouts + app.sender.stats.fast_retransmits
                )
                / max(1, app.sender.stats.segments_sent),
                regime="packet-sim",
                outlier=False,
            ),
        )


class PacketTraceRunner:
    """A multi-epoch trace on the packet simulator.

    Drives the same :class:`~repro.fastpath.loadmodel.CrossLoadProcess`
    the fluid model uses, but executes every epoch at packet granularity
    — a miniature version of the paper's campaign used to validate the
    fluid model end to end (see ``benchmarks/bench_validation_packet.py``).

    Args:
        config: the path to emulate.
        rng: randomness shared by the load process and the epochs.
        regime_mean: optional starting regime mean for the load process
            (pin it to compare against a fluid trace at the same level).
    """

    def __init__(
        self,
        config: PathConfig,
        rng: np.random.Generator,
        regime_mean: float | None = None,
    ) -> None:
        from repro.fastpath.loadmodel import CrossLoadProcess

        self.config = config
        self.rng = rng
        self.load = CrossLoadProcess(config, rng, regime_mean)
        self._epoch_runner = PacketEpochRunner(config, rng)

    def run_trace(
        self,
        n_epochs: int,
        trace_index: int = 0,
        tcp: TcpParameters | None = None,
        transfer_duration_s: float = 20.0,
        pre_probe_duration_s: float = 20.0,
        epoch_interval_s: float = 170.0,
    ) -> "Trace":
        """Collect ``n_epochs`` packet-level epochs under evolving load."""
        from repro.paths.records import Trace

        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        trace = Trace(path_id=self.config.path_id, trace_index=trace_index)
        time_s = 0.0
        for epoch_index in range(n_epochs):
            time_s += epoch_interval_s
            load = self.load.advance(epoch_interval_s)
            epoch = self._epoch_runner.run_epoch(
                utilization=load.util_pre,
                tcp=tcp,
                transfer_duration_s=transfer_duration_s,
                pre_probe_duration_s=pre_probe_duration_s,
                trace_index=trace_index,
                epoch_index=epoch_index,
            )
            trace.append(
                replace(epoch, start_time_s=time_s)
            )
        return trace
