"""Per-trace checkpointing for fault-tolerant campaigns.

A campaign's unit of independence is the (path, trace) pair, and that
is also its unit of durability: every finished trace is persisted to a
:class:`CheckpointStore` the moment it completes, so a crash — an
OOM-killed worker, a power loss, an operator ^C — forfeits at most the
traces still in flight.  ``repro-campaign --resume`` (or
``Campaign.run(resume=True)``) loads the checkpointed traces back and
only simulates the missing ones; because each trace draws from its own
named RNG stream, the reassembled dataset is bit-identical to an
uninterrupted run.

Layout::

    <root>/<run_key>/<path_id>.t<trace_index>.csv

``run_key`` is the campaign's content fingerprint (the same
:func:`~repro.testbed.cache.campaign_cache_key` the dataset cache
uses), so checkpoints can never leak between campaigns with different
catalogs, seeds, settings, or code versions.  Each entry is a
single-trace dataset in the normal CSV format — inspectable and
deletable by hand.  Writes are atomic (temp file + ``os.replace``); a
corrupt or truncated entry is quarantined (renamed ``*.corrupt``) and
treated as absent, so a torn write can only cost the one trace it
belongs to.

The store root defaults to ``~/.cache/repro/checkpoints`` and is
overridden with ``REPRO_CHECKPOINT_DIR`` (or the CLI's
``--checkpoint-dir``).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.obs import get_telemetry
from repro.paths.records import Dataset, Trace
from repro.testbed.io import load_dataset, save_dataset

__all__ = [
    "ENV_CHECKPOINT_DIR",
    "CheckpointStore",
    "default_checkpoint_dir",
]

#: Environment variable overriding the checkpoint location.
ENV_CHECKPOINT_DIR = "REPRO_CHECKPOINT_DIR"


def default_checkpoint_dir() -> Path:
    """``$REPRO_CHECKPOINT_DIR`` or ``~/.cache/repro/checkpoints``."""
    env = os.environ.get(ENV_CHECKPOINT_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "checkpoints"


class CheckpointStore:
    """A directory of per-trace checkpoints grouped by campaign run key.

    Args:
        root: store directory; ``None`` uses :func:`default_checkpoint_dir`
            (which honours ``REPRO_CHECKPOINT_DIR``).
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = (
            Path(root).expanduser() if root is not None else default_checkpoint_dir()
        )

    def run_dir(self, run_key: str) -> Path:
        """The directory holding one campaign's checkpoints."""
        return self.root / run_key

    def trace_path(self, run_key: str, path_id: str, trace_index: int) -> Path:
        """Where the checkpoint of one (path, trace) pair lives."""
        return self.run_dir(run_key) / f"{path_id}.t{trace_index}.csv"

    def store_trace(self, run_key: str, trace: Trace) -> Path:
        """Atomically persist one finished trace; returns the entry path.

        Uses the same temp-file + ``os.replace`` pattern as the dataset
        cache, so a crash mid-write never leaves a half-written entry
        under the final name.
        """
        run_dir = self.run_dir(run_key)
        run_dir.mkdir(parents=True, exist_ok=True)
        path = self.trace_path(run_key, trace.path_id, trace.trace_index)
        dataset = Dataset(label="checkpoint", traces=[trace])
        fd, tmp_name = tempfile.mkstemp(
            dir=run_dir, prefix=f".{trace.path_id}-", suffix=".tmp"
        )
        os.close(fd)
        try:
            save_dataset(dataset, tmp_name)
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):  # pragma: no cover - error path
                os.unlink(tmp_name)
        telemetry = get_telemetry()
        telemetry.counter("checkpoint.stored").inc()
        return path

    def load_trace(self, run_key: str, path_id: str, trace_index: int) -> Trace | None:
        """Load one checkpointed trace, or ``None`` when absent/corrupt.

        A malformed entry is quarantined (renamed ``*.corrupt``) so the
        campaign re-simulates the trace and the bad file survives for
        post-mortem inspection instead of being silently overwritten.
        """
        path = self.trace_path(run_key, path_id, trace_index)
        if not path.is_file():
            return None
        telemetry = get_telemetry()
        try:
            dataset = load_dataset(path)
            (trace,) = dataset.traces
            if trace.path_id != path_id or trace.trace_index != trace_index:
                raise ValueError(
                    f"checkpoint {path} holds trace "
                    f"({trace.path_id}, {trace.trace_index})"
                )
        except Exception:
            # Any parse/shape failure — DataError, OSError, csv errors,
            # a multi-trace file — means the entry cannot be trusted.
            telemetry.counter("checkpoint.corrupt").inc()
            telemetry.emit("checkpoint", outcome="corrupt", path=str(path))
            _quarantine(path)
            return None
        telemetry.counter("checkpoint.loaded").inc()
        return trace

    def completed(self, run_key: str) -> set[tuple[str, int]]:
        """The ``(path_id, trace_index)`` pairs checkpointed for a run.

        Derived from the entry filenames; entries that later fail to
        load are handled (quarantined) by :meth:`load_trace`.
        """
        run_dir = self.run_dir(run_key)
        if not run_dir.is_dir():
            return set()
        done: set[tuple[str, int]] = set()
        for entry in run_dir.glob("*.csv"):
            stem = entry.name[: -len(".csv")]
            path_id, sep, index = stem.rpartition(".t")
            if not sep or not index.isdigit():
                continue
            done.add((path_id, int(index)))
        return done

    def discard(self, run_key: str) -> None:
        """Delete one run's checkpoints (called after a completed run)."""
        run_dir = self.run_dir(run_key)
        if not run_dir.is_dir():
            return
        for entry in run_dir.iterdir():
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        try:
            run_dir.rmdir()
        except OSError:  # pragma: no cover - concurrent cleanup
            pass


def _quarantine(path: Path) -> None:
    """Move a corrupt file aside as ``<name>.corrupt`` (best effort)."""
    try:
        os.replace(path, path.with_name(path.name + ".corrupt"))
    except OSError:  # pragma: no cover - file vanished or unwritable dir
        pass
