"""CSV serialization of datasets.

One row per epoch, with the hidden truth columns included (prefixed
``truth_``) so saved campaigns remain fully analysable.  The format is
deliberately flat CSV: easy to load into any analysis tool.

Format history:

* v1 had no ``truth_present`` column; loaders inferred truth-presence
  from ``truth_regime`` being non-empty, which silently dropped truth
  records whose regime was the empty string.  v1 files still load.
* v2 (current) records truth-presence explicitly in ``truth_present``,
  so ``load_dataset(save_dataset(ds))`` preserves every truth record.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.errors import DataError
from repro.paths.records import Dataset, EpochMeasurement, EpochTruth, Trace

#: Bumped when the on-disk layout changes; part of the dataset cache key.
FORMAT_VERSION = 2

_COLUMNS = [
    "path_id",
    "trace_index",
    "epoch_index",
    "start_time_s",
    "ahat_mbps",
    "phat",
    "that_s",
    "throughput_mbps",
    "ptilde",
    "ttilde_s",
    "smallw_throughput_mbps",
    "duration_throughputs_mbps",
    "truth_present",
    "truth_utilization_pre",
    "truth_utilization_during",
    "truth_loss_event_rate",
    "truth_regime",
    "truth_outlier",
]

#: The v1 layout, accepted on load for files saved by older releases.
_LEGACY_COLUMNS = [c for c in _COLUMNS if c != "truth_present"]


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to CSV at ``path``."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# dataset", dataset.label])
        writer.writerow(_COLUMNS)
        for epoch in dataset.epochs():
            writer.writerow(_epoch_row(epoch))


def _epoch_row(epoch: EpochMeasurement) -> list[str]:
    truth = epoch.truth
    return [
        epoch.path_id,
        str(epoch.trace_index),
        str(epoch.epoch_index),
        repr(epoch.start_time_s),
        repr(epoch.ahat_mbps),
        repr(epoch.phat),
        repr(epoch.that_s),
        repr(epoch.throughput_mbps),
        repr(epoch.ptilde),
        repr(epoch.ttilde_s),
        "" if epoch.smallw_throughput_mbps is None else repr(epoch.smallw_throughput_mbps),
        ";".join(repr(v) for v in epoch.duration_throughputs_mbps),
        "" if truth is None else "1",
        "" if truth is None else repr(truth.utilization_pre),
        "" if truth is None else repr(truth.utilization_during),
        "" if truth is None else repr(truth.loss_event_rate),
        "" if truth is None else truth.regime,
        "" if truth is None else str(truth.outlier),
    ]


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Accepts both the current format and the legacy (v1) one without a
    ``truth_present`` column.

    Raises:
        DataError: on malformed files.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise DataError(f"{path} is empty") from exc
        if len(header) != 2 or header[0] != "# dataset":
            raise DataError(f"{path} missing dataset header row")
        label = header[1]
        columns = next(reader, None)
        if columns == _COLUMNS:
            legacy = False
        elif columns == _LEGACY_COLUMNS:
            legacy = True
        else:
            raise DataError(f"{path} has unexpected columns: {columns}")

        dataset = Dataset(label=label)
        traces: dict[tuple[str, int], Trace] = {}
        for row in reader:
            epoch = _parse_row(row, path, legacy)
            key = (epoch.path_id, epoch.trace_index)
            if key not in traces:
                traces[key] = Trace(path_id=epoch.path_id, trace_index=epoch.trace_index)
                dataset.traces.append(traces[key])
            traces[key].append(epoch)
    return dataset


def _parse_row(row: list[str], path: Path, legacy: bool) -> EpochMeasurement:
    expected = _LEGACY_COLUMNS if legacy else _COLUMNS
    if len(row) != len(expected):
        raise DataError(f"{path}: row has {len(row)} fields, expected {len(expected)}")
    if legacy:
        (
            path_id, trace_index, epoch_index, start_time_s,
            ahat, phat, that, throughput, ptilde, ttilde,
            smallw, durations, t_upre, t_udur, t_loss, t_regime, t_outlier,
        ) = row
        # v1 files could only signal truth-presence through the regime.
        t_present = "1" if t_regime else ""
    else:
        (
            path_id, trace_index, epoch_index, start_time_s,
            ahat, phat, that, throughput, ptilde, ttilde,
            smallw, durations, t_present, t_upre, t_udur, t_loss,
            t_regime, t_outlier,
        ) = row
    truth = None
    if t_present:
        truth = EpochTruth(
            utilization_pre=float(t_upre),
            utilization_during=float(t_udur),
            loss_event_rate=float(t_loss),
            regime=t_regime,
            outlier=t_outlier == "True",
        )
    return EpochMeasurement(
        path_id=path_id,
        trace_index=int(trace_index),
        epoch_index=int(epoch_index),
        start_time_s=float(start_time_s),
        ahat_mbps=float(ahat),
        phat=float(phat),
        that_s=float(that),
        throughput_mbps=float(throughput),
        ptilde=float(ptilde),
        ttilde_s=float(ttilde),
        smallw_throughput_mbps=float(smallw) if smallw else None,
        duration_throughputs_mbps=tuple(
            float(v) for v in durations.split(";") if v
        ),
        truth=truth,
    )
