"""Content-addressed on-disk dataset cache.

A campaign's output is fully determined by (catalog, seed, label, TCP
parameters, settings) plus the code that simulates it.  The cache maps a
:func:`~repro.core.cachekey.stable_fingerprint` of exactly those inputs
to a saved CSV (the same format as :func:`repro.testbed.io.save_dataset`),
so benchmarks and the ``repro-campaign`` CLI can reuse a previously
simulated campaign instead of re-running it.

The cache directory defaults to ``~/.cache/repro/datasets`` and is
overridden with the ``REPRO_CACHE_DIR`` environment variable (or the
CLI's ``--cache-dir``).  Entries are plain CSV files named after their
key — safe to inspect, copy, or delete by hand; a corrupt or truncated
entry is treated as a miss and re-simulated.
"""

from __future__ import annotations

import csv
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro._version import __version__
from repro.core.cachekey import stable_fingerprint
from repro.core.errors import DataError
from repro.obs import get_telemetry
from repro.paths.records import Dataset
from repro.testbed.io import FORMAT_VERSION, load_dataset, save_dataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.testbed.campaign import Campaign, CampaignSettings
    from repro.testbed.executor import ProgressCallback

#: Environment variable overriding the cache location.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/datasets``."""
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "datasets"


def campaign_cache_key(campaign: "Campaign", settings: "CampaignSettings") -> str:
    """The cache key for one campaign execution.

    Covers everything that shapes the dataset: the full path catalog
    (every field of every :class:`~repro.paths.config.PathConfig`), the
    root seed, the label, both TCP parameter sets, the campaign
    settings, and the code/format version so stale entries from older
    releases are never served.
    """
    return stable_fingerprint(
        {
            "catalog": campaign.catalog,
            "seed": campaign.streams.seed,
            "label": campaign.label,
            "tcp": campaign.tcp,
            "small_tcp": campaign.small_tcp,
            "settings": settings,
            "code_version": __version__,
            "format_version": FORMAT_VERSION,
        }
    )


class DatasetCache:
    """A directory of datasets addressed by content key.

    Args:
        root: cache directory; ``None`` uses :func:`default_cache_dir`
            (which honours ``REPRO_CACHE_DIR``).
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """The file a dataset with ``key`` is (or would be) stored at."""
        return self.root / f"{key}.csv"

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (it may still be corrupt)."""
        return self.path_for(key).is_file()

    def load(self, key: str) -> Dataset | None:
        """Return the cached dataset for ``key``, or ``None`` on a miss.

        A malformed entry counts as a miss rather than an error — not
        just a clean :class:`DataError` from the loader, but any of the
        ways a truncated, binary-garbage, or permission-mangled file can
        fail to parse (``OSError``, ``UnicodeDecodeError``,
        ``csv.Error``).  The bad file is quarantined (renamed
        ``*.corrupt``) so it is kept for inspection and cannot shadow
        the fresh entry the caller is about to store, and a
        ``cache.corrupt`` counter/event records the incident.
        """
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            return load_dataset(path)
        except (DataError, OSError, UnicodeDecodeError, csv.Error):
            telemetry = get_telemetry()
            telemetry.counter("cache.corrupt").inc()
            telemetry.emit("cache", outcome="corrupt", key=key)
            try:
                os.replace(path, path.with_name(path.name + ".corrupt"))
            except OSError:  # pragma: no cover - vanished or unwritable
                pass
            return None

    def store(self, key: str, dataset: Dataset) -> Path:
        """Save ``dataset`` under ``key``; returns the entry's path.

        The write is atomic (temp file + rename), so a concurrent reader
        never observes a half-written entry.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        os.close(fd)
        try:
            save_dataset(dataset, tmp_name)
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):  # pragma: no cover - error path
                os.unlink(tmp_name)
        return path


def run_cached(
    campaign: "Campaign",
    settings: "CampaignSettings",
    n_workers: int = 1,
    cache: DatasetCache | None = None,
    progress: "ProgressCallback | None" = None,
    *,
    retry=None,
    checkpoint=None,
    resume: bool = False,
    chunk_size: int = 1,
) -> tuple[Dataset, bool]:
    """Run a campaign through the cache.

    Returns ``(dataset, hit)``: on a hit the saved dataset is loaded and
    no simulation happens (the progress callback is not invoked); on a
    miss the campaign runs (honouring ``n_workers``/``progress``/
    ``chunk_size`` and the robustness options
    ``retry``/``checkpoint``/``resume``, all keyed by the same content
    fingerprint as the cache entry) and the result is stored before
    being returned.  ``chunk_size`` never affects the cache key: any
    value produces the bit-identical dataset.
    """
    cache = cache or DatasetCache()
    key = campaign_cache_key(campaign, settings)
    telemetry = get_telemetry()
    with telemetry.timer("cache.load_s"):
        cached = cache.load(key)
    if cached is not None:
        telemetry.counter("cache.hits").inc()
        telemetry.emit("cache", outcome="hit", key=key)
        return cached, True
    telemetry.counter("cache.misses").inc()
    telemetry.emit("cache", outcome="miss", key=key)
    dataset = campaign.run(
        settings,
        n_workers=n_workers,
        progress=progress,
        retry=retry,
        checkpoint=checkpoint,
        run_key=key,
        resume=resume,
        chunk_size=chunk_size,
    )
    with telemetry.timer("cache.store_s"):
        cache.store(key, dataset)
    return dataset, False
