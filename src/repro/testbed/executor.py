"""Parallel campaign execution over (path, trace) work units.

The campaign's unit of independence is the (path, trace) pair: each one
draws from its own named RNG stream
(``RngStreams.get(f"{path_id}/trace{i}")``), so a trace simulated alone
in a worker process is bit-identical to the same trace simulated inside
a serial campaign (see ``tests/testbed/test_campaign.py::
test_subset_reproducibility``).  The executor exploits that: it fans
traces out over a :class:`~concurrent.futures.ProcessPoolExecutor` and
reassembles the results in catalog order, so the parallel dataset is
equal to the serial one regardless of scheduling.

Progress is reported per finished trace through an optional callback
receiving :class:`CampaignProgress` snapshots — the CLI renders these
with :func:`repro.obs.render.progress_line`.  Every snapshot is also
published to the metrics registry (``campaign.traces_done`` /
``campaign.epochs_done`` gauges), so progress displays and telemetry
derive from the same numbers and cannot drift apart.  Rendering
progress by printing inside the callback is deprecated: keep callbacks
side-effect-light and let the obs layer own the formatting.

Telemetry collected inside worker processes (per-epoch phase timers,
structured events) is drained per job and merged back into the parent's
collector in job order, so a parallel campaign's telemetry matches the
serial one's.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.errors import ConfigurationError
from repro.obs import get_telemetry
from repro.paths.records import Dataset, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.testbed.campaign import Campaign, CampaignSettings


@dataclass(frozen=True)
class CampaignProgress:
    """A progress snapshot emitted after every completed trace.

    Attributes:
        traces_done: traces finished so far.
        traces_total: traces the campaign will run in total.
        epochs_done: epochs contained in the finished traces.
        epochs_total: epochs the campaign will simulate in total.
        elapsed_s: wall-clock seconds since the campaign started.
    """

    traces_done: int
    traces_total: int
    epochs_done: int
    epochs_total: int
    elapsed_s: float

    @property
    def epochs_per_s(self) -> float:
        """Simulation throughput so far (0.0 before any time elapsed)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.epochs_done / self.elapsed_s

    @property
    def eta_s(self) -> float:
        """Estimated seconds to completion at the current rate."""
        rate = self.epochs_per_s
        if rate <= 0.0:
            return float("inf")
        return (self.epochs_total - self.epochs_done) / rate

    @property
    def done(self) -> bool:
        """Whether every trace has finished."""
        return self.traces_done >= self.traces_total


ProgressCallback = Callable[[CampaignProgress], None]


def resolve_workers(n_workers: int) -> int:
    """Normalize a worker-count request.

    ``0`` (or any non-positive value) means "use all CPUs".

    Raises:
        ConfigurationError: for non-integer values.
    """
    if not isinstance(n_workers, int) or isinstance(n_workers, bool):
        raise ConfigurationError(
            f"n_workers must be an int, got {type(n_workers).__name__}"
        )
    if n_workers <= 0:
        return os.cpu_count() or 1
    return n_workers


def _run_trace_job(
    config,  # PathConfig
    trace_index: int,
    seed: int,
    label: str,
    tcp,  # TcpParameters
    small_tcp,  # TcpParameters
    settings,  # CampaignSettings
) -> tuple[Trace, dict[str, Any]]:
    """Worker entry point: simulate one (path, trace) pair.

    Rebuilds a single-path campaign in the worker process; the named RNG
    streams guarantee the result matches the serial campaign's copy.
    Returns the trace plus the telemetry the job collected, drained so a
    reused pool worker starts the next job clean.
    """
    from repro.testbed.campaign import Campaign

    telemetry = get_telemetry()
    telemetry.drain()  # leftovers from a crashed prior job, if any
    campaign = Campaign(
        [config], seed=seed, label=label, tcp=tcp, small_tcp=small_tcp
    )
    with telemetry.timer("campaign.trace_s"):
        trace = campaign.run_trace(config, trace_index, settings)
    return trace, telemetry.drain()


def run_campaign(
    campaign: "Campaign",
    settings: "CampaignSettings",
    n_workers: int = 1,
    progress: ProgressCallback | None = None,
) -> Dataset:
    """Execute ``campaign`` with ``settings``, optionally in parallel.

    Args:
        campaign: the campaign to run.
        settings: campaign knobs (traces per path, epochs per trace, ...).
        n_workers: worker processes; 1 runs serially in-process, 0 uses
            all CPUs.
        progress: called after every finished trace with a
            :class:`CampaignProgress` snapshot.

    Returns:
        The dataset, with traces in catalog x trace-index order — the
        same order (and the same bits) as a serial ``Campaign.run``.
    """
    n_workers = resolve_workers(n_workers)
    jobs = [
        (config, trace_index)
        for config in campaign.catalog
        for trace_index in range(settings.n_traces)
    ]
    epochs_total = len(jobs) * settings.epochs_per_trace
    started = time.perf_counter()
    traces: list[Trace | None] = [None] * len(jobs)
    telemetry = get_telemetry()

    def report(done_count: int) -> None:
        snapshot = CampaignProgress(
            traces_done=done_count,
            traces_total=len(jobs),
            epochs_done=done_count * settings.epochs_per_trace,
            epochs_total=epochs_total,
            elapsed_s=time.perf_counter() - started,
        )
        # Progress and telemetry derive from the same snapshot, so the
        # live display and the recorded gauges cannot disagree.
        telemetry.gauge("campaign.traces_done").set(snapshot.traces_done)
        telemetry.gauge("campaign.traces_total").set(snapshot.traces_total)
        telemetry.gauge("campaign.epochs_done").set(snapshot.epochs_done)
        telemetry.gauge("campaign.epochs_total").set(snapshot.epochs_total)
        if progress is not None:
            progress(snapshot)

    if n_workers == 1 or len(jobs) == 1:
        for index, (config, trace_index) in enumerate(jobs):
            with telemetry.timer("campaign.trace_s"):
                traces[index] = campaign.run_trace(config, trace_index, settings)
            report(index + 1)
    else:
        seed = campaign.streams.seed
        snapshots: list[dict[str, Any] | None] = [None] * len(jobs)
        with ProcessPoolExecutor(max_workers=min(n_workers, len(jobs))) as pool:
            pending = {
                pool.submit(
                    _run_trace_job,
                    config,
                    trace_index,
                    seed,
                    campaign.label,
                    campaign.tcp,
                    campaign.small_tcp,
                    settings,
                ): index
                for index, (config, trace_index) in enumerate(jobs)
            }
            done_count = 0
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = pending.pop(future)
                    traces[index], snapshots[index] = future.result()
                    done_count += 1
                    report(done_count)
        # Merge in job order (not completion order) so the merged
        # telemetry — in particular the events.jsonl line order — is
        # independent of scheduling.
        for snapshot in snapshots:
            if snapshot is not None:
                telemetry.merge(snapshot)

    dataset = Dataset(label=campaign.label)
    for trace in traces:
        assert trace is not None  # every job either completed or raised
        dataset.traces.append(trace)
    return dataset
