"""Fault-tolerant parallel campaign execution over (path, trace) units.

The campaign's unit of independence is the (path, trace) pair: each one
draws from its own named RNG stream
(``RngStreams.get(f"{path_id}/trace{i}")``), so a trace simulated alone
in a worker process is bit-identical to the same trace simulated inside
a serial campaign (see ``tests/testbed/test_campaign.py::
test_subset_reproducibility``).  The executor exploits that twice over:

* **parallelism** — traces fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and reassemble in
  catalog order, so the parallel dataset equals the serial one
  regardless of scheduling;
* **fault tolerance** — every finished trace is checkpointed to a
  :class:`~repro.testbed.checkpoint.CheckpointStore` (when one is
  given), a failed or hung job is retried with capped exponential
  backoff (:class:`RetryPolicy`), a crashed worker
  (``BrokenProcessPool``) triggers a pool rebuild, repeated rebuild
  failures degrade gracefully to serial in-process execution, and
  ``resume=True`` skips already-checkpointed traces — reassembling a
  dataset bit-identical to an uninterrupted run.

When a job fails permanently (retries exhausted), outstanding jobs are
cancelled and an :class:`~repro.core.errors.ExecutionError` naming the
failing ``(path_id, trace_index)`` is raised with the worker exception
as its ``__cause__``; a terminal ``campaign.aborted`` event is emitted
and the ``campaign.*`` progress gauges — which are reset at entry so an
aborted run can never leak stale progress into the next one — keep
whatever progress was truthfully made.

Progress is reported per finished trace through an optional callback
receiving :class:`CampaignProgress` snapshots — the CLI renders these
with :func:`repro.obs.render.progress_line`.  Every snapshot is also
published to the metrics registry (``campaign.traces_done`` /
``campaign.epochs_done`` gauges), so progress displays and telemetry
derive from the same numbers and cannot drift apart.  Rendering
progress by printing inside the callback is deprecated: keep callbacks
side-effect-light and let the obs layer own the formatting.

Telemetry collected inside worker processes (per-epoch phase timers,
structured events) is drained per job and merged back into the parent's
collector in job order, so a parallel campaign's telemetry matches the
serial one's.  Failed attempts' partial telemetry is discarded with the
attempt; only the successful attempt of each job is merged.  The serial
path gives every attempt the same isolation — a fresh single-path
campaign (fresh RNG streams) and a drained telemetry collector — so a
serially retried trace is bit-identical to, and reports the same
telemetry as, an uninterrupted run.  Retries,
failures, rebuilds, and resumed traces are themselves counted
(``campaign.retries`` / ``campaign.job_failures`` /
``campaign.pool_rebuilds`` / ``campaign.traces_resumed``) and surface
in the run manifest.

Crash injection (tests and the ``make resume-smoke`` target) is driven
by two environment variables — see :func:`maybe_inject_fault`.
"""

from __future__ import annotations

import os
import time
from collections import deque
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.errors import ConfigurationError, ExecutionError
from repro.fastpath.vector import fluid_vector_enabled
from repro.obs import get_telemetry
from repro.obs.spans import reparent_spans
from repro.paths.records import Dataset, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.testbed.campaign import Campaign, CampaignSettings
    from repro.testbed.checkpoint import CheckpointStore


@dataclass(frozen=True)
class CampaignProgress:
    """A progress snapshot emitted after every completed trace.

    Attributes:
        traces_done: traces finished so far (checkpoint-resumed traces
            count as done from the start).
        traces_total: traces the campaign will run in total.
        epochs_done: epochs contained in the finished traces.
        epochs_total: epochs the campaign will simulate in total.
        elapsed_s: wall-clock seconds since the campaign started.
    """

    traces_done: int
    traces_total: int
    epochs_done: int
    epochs_total: int
    elapsed_s: float

    @property
    def epochs_per_s(self) -> float:
        """Simulation throughput so far (0.0 before any time elapsed)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.epochs_done / self.elapsed_s

    @property
    def eta_s(self) -> float:
        """Estimated seconds to completion at the current rate."""
        rate = self.epochs_per_s
        if rate <= 0.0:
            return float("inf")
        return (self.epochs_total - self.epochs_done) / rate

    @property
    def done(self) -> bool:
        """Whether every trace has finished."""
        return self.traces_done >= self.traces_total


ProgressCallback = Callable[[CampaignProgress], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to failing, crashing, or hung jobs.

    Attributes:
        max_retries: extra attempts granted to one job after its first
            failure; ``0`` aborts on the first failure.
        backoff_s: sleep before the first retry; each further retry of
            the same job doubles it.
        backoff_cap_s: upper bound on any single backoff sleep.
        job_timeout_s: wall-clock budget for one parallel job measured
            from dispatch to the pool.  The executor caps in-flight
            submissions at the worker count, so a dispatched job starts
            (nearly) immediately and the budget covers running time,
            not queue wait — a queued job's clock has not started.  A
            job over budget is treated as hung: its workers are
            terminated, the pool is rebuilt, and the job is retried.
            ``None`` disables the watchdog.  Serial execution ignores
            it (there is no second process to enforce it from).
        max_pool_rebuilds: pool rebuilds tolerated (after worker
            crashes or timeouts) before the executor gives up on
            process parallelism and degrades to serial in-process
            execution of the remaining jobs.
    """

    max_retries: int = 2
    backoff_s: float = 0.5
    backoff_cap_s: float = 8.0
    job_timeout_s: float | None = None
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ConfigurationError(
                f"job_timeout_s must be positive, got {self.job_timeout_s}"
            )
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        if attempt < 1:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_s * (2.0 ** (attempt - 1)))


def resolve_workers(n_workers: int) -> int:
    """Normalize a worker-count request.

    ``0`` (or any non-positive value) means "use all CPUs".

    Raises:
        ConfigurationError: for non-integer values.
    """
    if not isinstance(n_workers, int) or isinstance(n_workers, bool):
        raise ConfigurationError(
            f"n_workers must be an int, got {type(n_workers).__name__}"
        )
    if n_workers <= 0:
        return os.cpu_count() or 1
    return n_workers


#: Crash-injection spec: ``"<path_id>/<trace>:<mode>[:<count>]"`` entries
#: separated by ``;``.  A target of ``*`` matches every job.  Modes:
#: ``raise`` (the job raises), ``exit`` (the process dies via
#: ``os._exit`` — a worker crash in parallel mode, a hard kill in serial
#: mode), ``hang`` (the job sleeps 60 s, tripping the job timeout), and
#: ``nap`` (not a fault: the job sleeps ``<count>`` seconds — a float —
#: on every attempt, for tests that need jobs of a known duration).
#: With ``REPRO_FAULT_DIR`` set, each crash entry triggers at most
#: ``count`` times across all processes (claimed through ``O_EXCL``
#: marker files); without it, the entry triggers every time.
ENV_FAULT_SPEC = "REPRO_FAULT_SPEC"

#: Directory for cross-process fault trigger accounting (see above).
ENV_FAULT_DIR = "REPRO_FAULT_DIR"

#: How long an injected ``hang`` fault sleeps.
_HANG_FAULT_S = 60.0


def maybe_inject_fault(path_id: str, trace_index: int) -> None:
    """Crash-injection hook, run at the start of every job attempt.

    A no-op unless ``REPRO_FAULT_SPEC`` is set; exists so tests and the
    ``make resume-smoke`` target can exercise the retry, pool-rebuild,
    timeout, and resume paths against real worker processes.
    """
    spec = os.environ.get(ENV_FAULT_SPEC, "").strip()
    if not spec:
        return
    target = f"{path_id}/{trace_index}"
    fault_dir = os.environ.get(ENV_FAULT_DIR, "").strip()
    for entry in spec.split(";"):
        parts = entry.strip().split(":")
        if len(parts) < 2 or parts[0] not in (target, "*"):
            continue
        mode = parts[1]
        if mode == "nap":
            # A deterministic slowdown, not a fault: every attempt
            # sleeps, so tests can give jobs a known duration.
            time.sleep(float(parts[2]) if len(parts) > 2 else 0.1)
            return
        count = int(parts[2]) if len(parts) > 2 else 1
        if fault_dir and not _claim_fault_token(fault_dir, target, mode, count):
            continue
        if mode == "raise":
            raise RuntimeError(f"injected fault for job {target}")
        if mode == "exit":
            os._exit(17)
        if mode == "hang":
            time.sleep(_HANG_FAULT_S)
            return
        raise ConfigurationError(f"unknown fault mode {mode!r} in {entry!r}")


def _claim_fault_token(fault_dir: str, target: str, mode: str, count: int) -> bool:
    """Atomically claim one of ``count`` trigger tokens for a fault."""
    os.makedirs(fault_dir, exist_ok=True)
    safe = target.replace("/", "-")
    for n in range(count):
        marker = os.path.join(fault_dir, f"{safe}.{mode}.{n}")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            continue
    return False


#: Campaign parameters shipped once per worker process by
#: :func:`_init_worker` instead of being pickled into every job:
#: ``(catalog, seed, label, tcp, small_tcp, settings)``.
_WORKER_STATE: tuple | None = None


def _init_worker(catalog, seed, label, tcp, small_tcp, settings) -> None:
    """Pool initializer: receive the campaign parameters one time.

    Runs once in each worker process when the pool spawns it.  Jobs
    afterwards carry only ``(catalog_index, trace_index)`` pairs, so
    dispatching a job no longer pickles the catalog, TCP parameter
    sets, and settings over and over.
    """
    global _WORKER_STATE
    _WORKER_STATE = (catalog, seed, label, tcp, small_tcp, settings)


class ChunkUnitError(ExecutionError):
    """One unit of a multi-unit chunk failed in a worker.

    Identifies the failing ``(path_id, trace_index)`` so the parent can
    attribute the attempt to the right job; the original worker
    exception is summarized in ``cause_repr`` (the live exception
    object cannot cross the process boundary as a ``__cause__``).

    All constructor arguments are passed to ``Exception.__init__`` so
    the instance pickles cleanly back to the parent.
    """

    def __init__(self, path_id: str, trace_index: int, cause_repr: str) -> None:
        super().__init__(path_id, trace_index, cause_repr)
        self.path_id = path_id
        self.trace_index = trace_index
        self.cause_repr = cause_repr

    def __str__(self) -> str:
        return (
            f"chunk unit (path {self.path_id!r}, trace {self.trace_index}) "
            f"failed: {self.cause_repr}"
        )


def _run_chunk_job(units: tuple) -> list[tuple[Trace, dict[str, Any]]]:
    """Worker entry point: simulate a chunk of (path, trace) units.

    ``units`` is a tuple of ``(catalog_index, trace_index)`` pairs
    resolved against the catalog installed by :func:`_init_worker`.
    Each unit rebuilds a fresh single-path campaign; the named RNG
    streams guarantee every trace matches the serial campaign's copy
    regardless of which worker ran it or how units were chunked.

    Returns one ``(trace, telemetry_snapshot)`` per unit, in order.
    Telemetry is drained per unit, so the parent can merge snapshots in
    job order whatever the chunking.  A failing unit in a multi-unit
    chunk is wrapped in :class:`ChunkUnitError` to identify it; a
    single-unit chunk lets the original exception propagate unchanged.
    """
    from repro.testbed.campaign import Campaign

    assert _WORKER_STATE is not None, "pool initializer did not run"
    catalog, seed, label, tcp, small_tcp, settings = _WORKER_STATE
    telemetry = get_telemetry()
    results = []
    for catalog_index, trace_index in units:
        config = catalog[catalog_index]
        telemetry.drain()  # leftovers from a crashed/failed prior unit
        try:
            # The unit span starts a fresh trace here (workers inherit
            # no span context); the parent re-parents it under the
            # campaign span at merge time.  The sample key matches the
            # serial path's, so both sample identical units.
            with telemetry.span(
                "trace",
                sample_key=f"{config.path_id}/{trace_index}",
                path=config.path_id,
                trace=trace_index,
            ):
                maybe_inject_fault(config.path_id, trace_index)
                campaign = Campaign(
                    [config], seed=seed, label=label, tcp=tcp, small_tcp=small_tcp
                )
                with telemetry.timer("campaign.trace_s"):
                    trace = campaign.run_trace(config, trace_index, settings)
        except Exception as exc:
            if len(units) == 1:
                raise
            raise ChunkUnitError(config.path_id, trace_index, repr(exc)) from exc
        results.append((trace, telemetry.drain()))
    return results


class _CampaignRun:
    """State and helpers shared by the serial and parallel paths of one
    :func:`run_campaign` invocation."""

    def __init__(
        self,
        campaign: "Campaign",
        settings: "CampaignSettings",
        retry: RetryPolicy,
        progress: ProgressCallback | None,
        checkpoint: "CheckpointStore | None",
        run_key: str | None,
        chunk_size: int = 1,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.campaign = campaign
        self.settings = settings
        self.retry = retry
        self.progress = progress
        self.checkpoint = checkpoint
        self.run_key = run_key or ""
        self.chunk_size = chunk_size
        self.telemetry = get_telemetry()
        self.jobs = [
            (config, trace_index)
            for config in campaign.catalog
            for trace_index in range(settings.n_traces)
        ]
        #: The worker-side identity of ``jobs[i]``: indices into the
        #: catalog shipped once per worker by the pool initializer.
        self.units = [
            (catalog_index, trace_index)
            for catalog_index in range(len(campaign.catalog))
            for trace_index in range(settings.n_traces)
        ]
        self.epochs_total = len(self.jobs) * settings.epochs_per_trace
        self.traces: list[Trace | None] = [None] * len(self.jobs)
        self.snapshots: list[dict[str, Any] | None] = [None] * len(self.jobs)
        self.attempts: dict[int, int] = {}
        self.done_count = 0
        self.started = time.perf_counter()

    # -- progress ------------------------------------------------------

    def reset_gauges(self) -> None:
        """Zero the campaign progress gauges at run entry.

        Without this, an aborted run's last gauge values survive into
        the next in-process run (and its manifest), so ``repro-obs
        compare`` would read stale progress.
        """
        telemetry = self.telemetry
        telemetry.gauge("campaign.traces_done").set(0)
        telemetry.gauge("campaign.epochs_done").set(0)
        telemetry.gauge("campaign.traces_total").set(len(self.jobs))
        telemetry.gauge("campaign.epochs_total").set(self.epochs_total)

    def report(self) -> None:
        snapshot = CampaignProgress(
            traces_done=self.done_count,
            traces_total=len(self.jobs),
            epochs_done=self.done_count * self.settings.epochs_per_trace,
            epochs_total=self.epochs_total,
            elapsed_s=time.perf_counter() - self.started,
        )
        # Progress and telemetry derive from the same snapshot, so the
        # live display and the recorded gauges cannot disagree.
        telemetry = self.telemetry
        telemetry.gauge("campaign.traces_done").set(snapshot.traces_done)
        telemetry.gauge("campaign.traces_total").set(snapshot.traces_total)
        telemetry.gauge("campaign.epochs_done").set(snapshot.epochs_done)
        telemetry.gauge("campaign.epochs_total").set(snapshot.epochs_total)
        if self.progress is not None:
            self.progress(snapshot)

    # -- checkpoint / resume -------------------------------------------

    def resume_completed(self) -> None:
        """Load checkpointed traces; leaves the rest for execution."""
        if self.checkpoint is None:
            return
        resumed = 0
        for index, (config, trace_index) in enumerate(self.jobs):
            trace = self.checkpoint.load_trace(
                self.run_key, config.path_id, trace_index
            )
            if trace is None or len(trace) != self.settings.epochs_per_trace:
                continue
            self.traces[index] = trace
            resumed += 1
        if resumed:
            self.telemetry.counter("campaign.traces_resumed").inc(resumed)
            self.telemetry.emit(
                "campaign.resumed", traces=resumed, total=len(self.jobs)
            )
            self.done_count = resumed
            self.report()

    def complete(self, index: int, trace: Trace) -> None:
        """Record one finished trace: checkpoint it, bump progress."""
        self.traces[index] = trace
        if self.checkpoint is not None:
            self.checkpoint.store_trace(self.run_key, trace)
        self.done_count += 1
        self.report()

    # -- failure accounting --------------------------------------------

    def record_failure(self, index: int, kind: str, error: str) -> int:
        """Count one failed attempt; returns the new attempt number."""
        attempt = self.attempts.get(index, 0) + 1
        self.attempts[index] = attempt
        config, trace_index = self.jobs[index]
        self.telemetry.counter("campaign.job_failures").inc()
        self.telemetry.emit(
            "campaign.job_failure",
            path=config.path_id,
            trace=trace_index,
            attempt=attempt,
            failure=kind,
            error=error,
        )
        return attempt

    def retry_or_abort(self, index: int, kind: str, exc: BaseException | None) -> None:
        """After a failed attempt: sleep for the backoff, or abort.

        Raises:
            ExecutionError: when the job has exhausted its retries.
        """
        attempt = self.record_failure(index, kind, repr(exc) if exc else kind)
        config, trace_index = self.jobs[index]
        if attempt > self.retry.max_retries:
            self.abort(index, kind, exc)
        backoff = self.retry.backoff_for(attempt)
        self.telemetry.counter("campaign.retries").inc()
        self.telemetry.emit(
            "campaign.retry",
            path=config.path_id,
            trace=trace_index,
            attempt=attempt,
            backoff_s=backoff,
        )
        if backoff > 0:
            time.sleep(backoff)

    def abort(self, index: int, kind: str, exc: BaseException | None) -> None:
        """Emit the terminal ``campaign.aborted`` event and raise."""
        config, trace_index = self.jobs[index]
        attempts = self.attempts.get(index, 0)
        self.telemetry.emit(
            "campaign.aborted",
            path=config.path_id,
            trace=trace_index,
            attempts=attempts,
            failure=kind,
            traces_done=self.done_count,
        )
        raise ExecutionError(
            f"campaign job (path {config.path_id!r}, trace {trace_index}) "
            f"failed permanently after {attempts} attempt(s) [{kind}]"
            + (f": {exc!r}" if exc is not None else "")
        ) from exc

    # -- execution paths -----------------------------------------------

    def run_serial(self, indices: list[int]) -> None:
        """Run jobs in-process, with the same retry/backoff semantics.

        Mirrors the worker path (:func:`_run_trace_job`) on both axes of
        attempt isolation:

        * **RNG** — every attempt rebuilds a fresh single-path campaign,
          because ``RngStreams.get`` caches generators per campaign
          instance: retrying through the parent campaign would resume
          from the RNG state the failed attempt already consumed,
          silently producing a different trace than an uninterrupted
          run.  A fresh campaign re-derives the ``path/traceN`` stream
          from the seed, so the retried trace is bit-identical.
        * **telemetry** — each attempt collects into a drained
          collector and is merged back only on success, so a failed
          attempt's partial timers/events are discarded exactly as a
          crashed worker's are.
        """
        from repro.testbed.campaign import Campaign

        campaign, settings = self.campaign, self.settings
        seed = campaign.streams.seed
        for index in indices:
            config, trace_index = self.jobs[index]
            while True:
                held = self.telemetry.drain()
                try:
                    # The unit span nests under the campaign span (the
                    # context survives the drain above); its event lands
                    # in the attempt's collector, so a failed attempt's
                    # span is discarded with the rest — exactly one
                    # span survives per completed unit, as with workers.
                    with self.telemetry.span(
                        "trace",
                        sample_key=f"{config.path_id}/{trace_index}",
                        path=config.path_id,
                        trace=trace_index,
                    ):
                        maybe_inject_fault(config.path_id, trace_index)
                        attempt_campaign = Campaign(
                            [config],
                            seed=seed,
                            label=campaign.label,
                            tcp=campaign.tcp,
                            small_tcp=campaign.small_tcp,
                        )
                        with self.telemetry.timer("campaign.trace_s"):
                            trace = attempt_campaign.run_trace(
                                config, trace_index, settings
                            )
                except ExecutionError:
                    self.telemetry.drain()
                    self.telemetry.merge(held)
                    raise
                except Exception as exc:
                    # Discard the failed attempt's partial telemetry,
                    # restore what the campaign had collected before it.
                    self.telemetry.drain()
                    self.telemetry.merge(held)
                    self.retry_or_abort(index, "error", exc)
                else:
                    snapshot = self.telemetry.drain()
                    self.telemetry.merge(held)
                    self.telemetry.merge(snapshot)
                    break
            self.complete(index, trace)

    def _pool_init(self) -> tuple:
        """The ``(initializer, initargs)`` every pool is built with.

        Ships the campaign parameters (catalog, seed, label, TCP
        parameter sets, settings) once per worker process; jobs then
        carry only ``(catalog_index, trace_index)`` pairs.
        """
        campaign = self.campaign
        return _init_worker, (
            campaign.catalog,
            campaign.streams.seed,
            campaign.label,
            campaign.tcp,
            campaign.small_tcp,
            self.settings,
        )

    def _job_index(self, error: ChunkUnitError, chunk: list[int]) -> int:
        """Map a worker-side unit failure back to its job index."""
        for index in chunk:
            config, trace_index = self.jobs[index]
            if (
                config.path_id == error.path_id
                and trace_index == error.trace_index
            ):
                return index
        return chunk[0]  # stale identity; blame the chunk head

    def run_parallel(self, indices: list[int], n_workers: int) -> None:
        """Run jobs in a worker pool, surviving crashes and hangs.

        Jobs are dispatched in chunks of up to ``chunk_size`` units per
        future (default 1), against workers that received the campaign
        parameters once at pool start.  In-flight submissions are
        capped at the pool's worker count, so a submitted chunk is
        picked up by a free worker (nearly) immediately:
        ``dispatched_at`` approximates the chunk's actual start, and
        the job timeout measures running time rather than queue wait
        (one budget per dispatched *chunk*, so scale ``job_timeout_s``
        with ``chunk_size``).  Retries and not-yet-dispatched jobs sit
        in ``queue`` and are submitted only at the top of the loop,
        where a ``BrokenProcessPool`` raised by ``submit`` itself
        routes into the same rebuild machinery as a crash surfaced by a
        future.

        A failing unit inside a multi-unit chunk takes the attempt
        blame (identified via :class:`ChunkUnitError`); the whole chunk
        is requeued, which is correct — every unit rebuilds its
        campaign from the seed — just mildly wasteful, which is the
        chunking trade-off.
        """
        retry = self.retry
        chunk_size = self.chunk_size
        initializer, initargs = self._pool_init()

        rebuilds = 0
        cap = min(n_workers, len(indices))
        pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=cap, initializer=initializer, initargs=initargs
        )
        queue: deque[int] = deque(indices)
        pending: dict[Any, list[int]] = {}
        dispatched_at: dict[Any, float] = {}

        def pending_indices() -> list[int]:
            return [index for chunk in pending.values() for index in chunk]

        def replace_pool(resubmit: list[int]) -> bool:
            """Install a fresh pool for ``resubmit``; ``False`` = degrade."""
            nonlocal pool, rebuilds, cap, queue, pending, dispatched_at
            pool, rebuilds = self._rebuild_pool(rebuilds, n_workers, len(resubmit))
            pending = {}
            dispatched_at = {}
            if pool is None:
                return False
            cap = min(n_workers, len(resubmit))
            queue = deque(resubmit)
            return True

        try:
            while pending or queue:
                # Top up in-flight chunks to the worker count.
                submit_broke_pool = False
                while queue and len(pending) < cap:
                    chunk = [
                        queue.popleft()
                        for _ in range(min(chunk_size, len(queue)))
                    ]
                    try:
                        future = pool.submit(
                            _run_chunk_job,
                            tuple(self.units[index] for index in chunk),
                        )
                    except BrokenProcessPool:
                        queue.extendleft(reversed(chunk))
                        submit_broke_pool = True
                        break
                    pending[future] = chunk
                    dispatched_at[future] = time.perf_counter()
                if submit_broke_pool and not pending:
                    # Nothing in flight to surface the crash through
                    # ``future.result()``; rebuild directly.  No job
                    # takes attempt-count blame (none was running), and
                    # the rebuild cap bounds a pool that keeps breaking.
                    resubmit = sorted(queue)
                    pool.shutdown(wait=False, cancel_futures=True)
                    if not replace_pool(resubmit):
                        self._degrade_to_serial(resubmit)
                        return
                    continue
                # With futures still pending after a failed submit, fall
                # through: those futures are dead too, and wait()
                # surfaces BrokenProcessPool via the crash branch below.
                poll_s = None
                if retry.job_timeout_s is not None and dispatched_at:
                    # Wake often enough to notice the earliest deadline.
                    oldest = min(dispatched_at.values())
                    poll_s = max(
                        0.05,
                        retry.job_timeout_s - (time.perf_counter() - oldest),
                    )
                finished, _ = wait(
                    set(pending), timeout=poll_s, return_when=FIRST_COMPLETED
                )
                if not finished:
                    # Only in-flight (dispatched) chunks can expire; a
                    # queued job's clock has not started.
                    expired = [
                        future
                        for future in pending
                        if time.perf_counter() - dispatched_at[future]
                        >= (retry.job_timeout_s or float("inf"))
                    ]
                    if not expired:
                        continue
                    # A hung worker cannot be cancelled through the
                    # futures API; terminate the pool and rebuild it.
                    try:
                        for future in expired:
                            # The chunk head takes the blame: which unit
                            # hung is unknowable from outside.
                            self.retry_or_abort(
                                pending[future][0], "timeout", None
                            )
                    except ExecutionError:
                        _terminate_pool(pool)
                        raise
                    resubmit = sorted([*pending_indices(), *queue])
                    _terminate_pool(pool)
                    if not replace_pool(resubmit):
                        self._degrade_to_serial(resubmit)
                        return
                    continue
                pool_broken = False
                for future in finished:
                    chunk = pending.pop(future)
                    dispatched_at.pop(future, None)
                    try:
                        results = future.result()
                    except BrokenProcessPool:
                        # Every pending future on this pool is dead; the
                        # first chunk surfaced takes the blame (the true
                        # culprit is unknowable), the rebuild cap bounds
                        # the damage either way.
                        self.retry_or_abort(chunk[0], "worker_crash", None)
                        resubmit = sorted({*chunk, *pending_indices(), *queue})
                        pool.shutdown(wait=False, cancel_futures=True)
                        if not replace_pool(resubmit):
                            self._degrade_to_serial(resubmit)
                            return
                        pool_broken = True
                        break
                    except ChunkUnitError as exc:
                        try:
                            self.retry_or_abort(
                                self._job_index(exc, chunk), "error", exc
                            )
                        except ExecutionError:
                            pool.shutdown(wait=False, cancel_futures=True)
                            raise
                        queue.extend(chunk)
                    except ExecutionError:
                        raise
                    except Exception as exc:
                        try:
                            self.retry_or_abort(chunk[0], "error", exc)
                        except ExecutionError:
                            # Cancel jobs still queued so a dead campaign
                            # does not keep burning CPU behind the raise.
                            pool.shutdown(wait=False, cancel_futures=True)
                            raise
                        # Defer the resubmission to the top of the loop:
                        # submitting here could raise BrokenProcessPool
                        # past the rebuild machinery.
                        queue.extend(chunk)
                    else:
                        for index, (trace, snapshot) in zip(chunk, results):
                            self.snapshots[index] = snapshot
                            self.complete(index, trace)
                if pool_broken:
                    continue
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _rebuild_pool(
        self, rebuilds: int, n_workers: int, n_jobs: int
    ) -> tuple[ProcessPoolExecutor | None, int]:
        """Build a replacement pool, or ``None`` to degrade to serial."""
        rebuilds += 1
        self.telemetry.counter("campaign.pool_rebuilds").inc()
        if rebuilds > self.retry.max_pool_rebuilds:
            return None, rebuilds
        initializer, initargs = self._pool_init()
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(n_workers, max(n_jobs, 1)),
                initializer=initializer,
                initargs=initargs,
            )
        except OSError:  # pragma: no cover - fork failure (fd/memory limits)
            return None, rebuilds
        self.telemetry.emit("campaign.pool_rebuild", rebuild=rebuilds)
        return pool, rebuilds

    def _degrade_to_serial(self, indices: list[int]) -> None:
        """Last resort: finish the remaining jobs in-process."""
        self.telemetry.counter("campaign.degraded").inc()
        self.telemetry.emit(
            "campaign.degraded", remaining=len(indices), reason="pool_rebuild_limit"
        )
        self.run_serial(indices)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool whose workers may be hung.

    ``shutdown`` alone would block behind (or leak) a hung worker;
    terminating the processes is the only way to reclaim them.  Worker
    handles live in a private attribute, so degrade to a plain shutdown
    if the interpreter does not expose it.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_campaign(
    campaign: "Campaign",
    settings: "CampaignSettings",
    n_workers: int = 1,
    progress: ProgressCallback | None = None,
    *,
    retry: RetryPolicy | None = None,
    checkpoint: "CheckpointStore | None" = None,
    run_key: str | None = None,
    resume: bool = False,
    chunk_size: int | None = None,
) -> Dataset:
    """Execute ``campaign`` with ``settings``, optionally in parallel.

    Args:
        campaign: the campaign to run.
        settings: campaign knobs (traces per path, epochs per trace, ...).
        n_workers: worker processes; 1 runs serially in-process, 0 uses
            all CPUs.
        progress: called after every finished trace with a
            :class:`CampaignProgress` snapshot.
        retry: retry/backoff/timeout policy (default: a
            :class:`RetryPolicy` with two retries and no job timeout).
        chunk_size: (path, trace) units dispatched per parallel job.
            ``None`` (the default) resolves to ``settings.n_traces`` —
            one job per path — on the vectorized fluid engine (its
            per-trace wall time is small enough that per-unit dispatch
            overhead would dominate) and to 1 on the scalar engine,
            keeping per-unit retry/timeout granularity.  Explicit
            values override; the result is bit-identical for every
            chunk size.  Serial execution ignores it.
        checkpoint: when given, every finished trace is persisted here
            under ``run_key``, and the store is cleared once the
            campaign completes.
        run_key: checkpoint namespace; defaults to the campaign's
            content fingerprint
            (:func:`~repro.testbed.cache.campaign_cache_key`), so
            checkpoints never cross campaigns.
        resume: skip (path, trace) pairs already checkpointed under
            ``run_key``, loading their traces from disk instead of
            re-simulating.  Requires ``checkpoint``.

    Returns:
        The dataset, with traces in catalog x trace-index order — the
        same order (and the same bits) as an uninterrupted serial
        ``Campaign.run``, whether traces were simulated here, retried,
        or resumed from checkpoints.

    Raises:
        ExecutionError: when a job fails permanently; outstanding jobs
            are cancelled and the failing ``(path_id, trace_index)`` is
            named in the message.
    """
    n_workers = resolve_workers(n_workers)
    retry = retry or RetryPolicy()
    if chunk_size is None:
        chunk_size = settings.n_traces if fluid_vector_enabled() else 1
    if checkpoint is not None and run_key is None:
        from repro.testbed.cache import campaign_cache_key

        run_key = campaign_cache_key(campaign, settings)

    run = _CampaignRun(
        campaign, settings, retry, progress, checkpoint, run_key, chunk_size
    )
    run.reset_gauges()
    if resume:
        run.resume_completed()
    remaining = [i for i, trace in enumerate(run.traces) if trace is None]
    run.telemetry.counter("campaign.traces_attempted").inc(len(remaining))

    if remaining:
        # The campaign span is the root of the run's trace; unit spans
        # hang under it — directly (serial: the context is ambient) or
        # via re-parenting (parallel: workers' spans come back as roots
        # of private traces).  Tags must not depend on worker count or
        # chunking, or the parity guarantee (parallel tree == serial
        # tree) would break.
        with run.telemetry.span(
            "campaign",
            label=campaign.label,
            paths=len(campaign.catalog),
            traces=settings.n_traces,
            epochs=settings.epochs_per_trace,
        ) as campaign_span:
            if n_workers == 1 or len(remaining) == 1:
                run.run_serial(remaining)
            else:
                run.run_parallel(remaining, n_workers)
            # Merge worker telemetry in job order (not completion order)
            # so the merged events.jsonl line order is independent of
            # scheduling.  Resumed/serial traces contribute no snapshot.
            trace_id = getattr(campaign_span, "trace_id", None)
            for snapshot in run.snapshots:
                if snapshot is not None:
                    if trace_id is not None:
                        reparent_spans(
                            snapshot.get("events", ()),
                            trace_id,
                            campaign_span.span_id,
                        )
                    run.telemetry.merge(snapshot)

    dataset = Dataset(label=campaign.label)
    for trace in run.traces:
        assert trace is not None  # every job completed, resumed, or raised
        dataset.traces.append(trace)
    if checkpoint is not None:
        # The campaign is whole; the crash-recovery copies are done.
        checkpoint.discard(run.run_key)
    return dataset
