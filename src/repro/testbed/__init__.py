"""The RON-like testbed emulation (paper Section 4.1).

* :mod:`repro.testbed.campaign` — the epoch/trace/campaign runner that
  reproduces the paper's measurement structure (150 epochs per trace,
  7 traces per path).
* :mod:`repro.testbed.io` — CSV serialization of datasets.

Path catalogs and measurement records live in :mod:`repro.paths` and are
re-exported here for convenience.
"""

from repro.paths.config import PathConfig, march_2006_catalog, may_2004_catalog
from repro.paths.records import Dataset, EpochMeasurement, Trace
from repro.testbed.campaign import Campaign

__all__ = [
    "Campaign",
    "Dataset",
    "EpochMeasurement",
    "PathConfig",
    "Trace",
    "march_2006_catalog",
    "may_2004_catalog",
]
