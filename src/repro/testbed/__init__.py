"""The RON-like testbed emulation (paper Section 4.1).

* :mod:`repro.testbed.campaign` — the epoch/trace/campaign runner that
  reproduces the paper's measurement structure (150 epochs per trace,
  7 traces per path).
* :mod:`repro.testbed.executor` — fault-tolerant parallel (path, trace)
  fan-out: per-trace progress, retry with capped backoff, job timeouts,
  pool rebuilds; bit-identical to serial execution.
* :mod:`repro.testbed.checkpoint` — per-trace checkpointing so a
  crashed campaign can be resumed without losing completed work.
* :mod:`repro.testbed.cache` — content-addressed on-disk dataset cache.
* :mod:`repro.testbed.io` — CSV serialization of datasets.

Path catalogs and measurement records live in :mod:`repro.paths` and are
re-exported here for convenience.
"""

from repro.paths.config import PathConfig, march_2006_catalog, may_2004_catalog
from repro.paths.records import Dataset, EpochMeasurement, Trace
from repro.testbed.cache import DatasetCache, campaign_cache_key, run_cached
from repro.testbed.campaign import Campaign
from repro.testbed.checkpoint import CheckpointStore
from repro.testbed.executor import CampaignProgress, RetryPolicy, run_campaign

__all__ = [
    "Campaign",
    "CampaignProgress",
    "CheckpointStore",
    "Dataset",
    "DatasetCache",
    "EpochMeasurement",
    "PathConfig",
    "RetryPolicy",
    "Trace",
    "campaign_cache_key",
    "march_2006_catalog",
    "may_2004_catalog",
    "run_cached",
    "run_campaign",
]
