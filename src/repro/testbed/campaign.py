"""The measurement campaign runner (paper Section 4.1).

Reproduces the paper's structure: on each path, several traces of
back-to-back epochs; each epoch produces the full measurement tuple.
The paper's first set is 35 paths x 7 traces x 150 epochs at 2-3 minute
intervals; the second set is 24 paths with 120 s transfers and
30/60/120 s checkpoints.

Each (path, trace) pair gets its own named RNG stream, so any subset of
the campaign reproduces identically regardless of execution order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.rng import RngStreams
from repro.fastpath.pathsim import FluidPathSimulator
from repro.fastpath.sites import FluidSites
from repro.fastpath.vector import fluid_vector_enabled, run_fluid_trace
from repro.formulas.params import TcpParameters
from repro.paths.config import PathConfig
from repro.paths.records import Dataset, Trace

#: Epoch spacing: the paper reports 2-3 minutes between transfers.
EPOCH_INTERVAL_RANGE_S = (150.0, 190.0)

#: Traces on the same path were collected at different times; six hours
#: of trace duration plus a gap puts them in different load regimes.
TRACE_GAP_S = 8 * 3600.0


@dataclass(frozen=True)
class CampaignSettings:
    """Knobs of a campaign run.

    Attributes:
        n_traces: traces per path (the paper: 7).
        epochs_per_trace: epochs per trace (the paper: 150).
        transfer_duration_s: target transfer length (50 s or 120 s).
        run_small_window: also run the W = 20 KB companion transfer.
        checkpoint_fractions: sub-duration cuts, as fractions of the
            transfer duration (Fig. 11 uses (0.25, 0.5, 1.0) on 120 s).
    """

    n_traces: int = 7
    epochs_per_trace: int = 150
    transfer_duration_s: float = 50.0
    run_small_window: bool = True
    checkpoint_fractions: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.n_traces < 1:
            raise ConfigurationError(f"n_traces must be >= 1, got {self.n_traces}")
        if self.epochs_per_trace < 1:
            raise ConfigurationError(
                f"epochs_per_trace must be >= 1, got {self.epochs_per_trace}"
            )
        if self.transfer_duration_s <= 0:
            raise ConfigurationError("transfer_duration_s must be positive")


class Campaign:
    """Runs the measurement campaign over a path catalog.

    Args:
        catalog: the paths to measure.
        seed: root seed for all randomness.
        label: dataset label ("may-2004").
        tcp: main transfer parameters (default: the paper's W = 1 MB).
        small_tcp: companion transfer parameters (default: W = 20 KB).
    """

    def __init__(
        self,
        catalog: list[PathConfig],
        seed: int = 0,
        label: str = "campaign",
        tcp: TcpParameters | None = None,
        small_tcp: TcpParameters | None = None,
    ) -> None:
        if not catalog:
            raise ConfigurationError("catalog must contain at least one path")
        self.catalog = list(catalog)
        self.streams = RngStreams(seed)
        self.label = label
        self.tcp = tcp or TcpParameters.congestion_limited()
        self.small_tcp = small_tcp or TcpParameters.window_limited()

    def run(
        self,
        settings: CampaignSettings | None = None,
        n_workers: int = 1,
        progress=None,
        *,
        retry=None,
        checkpoint=None,
        run_key: str | None = None,
        resume: bool = False,
        chunk_size: int | None = None,
    ) -> Dataset:
        """Execute the campaign and return the collected dataset.

        Args:
            settings: campaign knobs (defaults to the paper's).
            n_workers: worker processes for the (path, trace) work
                units; 1 runs serially, 0 uses all CPUs.  Because each
                trace draws from its own named RNG stream, the result is
                bit-identical for every worker count.
            progress: optional callback receiving a
                :class:`repro.testbed.executor.CampaignProgress`
                snapshot after each finished trace.
            retry: a :class:`repro.testbed.executor.RetryPolicy`
                governing retry/backoff/timeout behaviour for failing
                jobs (default: two retries, no job timeout).
            checkpoint: a
                :class:`repro.testbed.checkpoint.CheckpointStore`; when
                given, every finished trace is persisted so a crashed
                run can be resumed.
            run_key: checkpoint namespace override (defaults to the
                campaign's content fingerprint).
            resume: skip traces already checkpointed under ``run_key``;
                the result is bit-identical to an uninterrupted run.
            chunk_size: (path, trace) units per parallel job; larger
                chunks amortize dispatch overhead for short traces.
                ``None`` (the default) picks one job per *path* on the
                vectorized fluid engine and per-trace jobs on the
                scalar engine.  Bit-identical for every value; ignored
                when serial.
        """
        from repro.testbed.executor import run_campaign

        settings = settings or CampaignSettings()
        return run_campaign(
            self,
            settings,
            n_workers=n_workers,
            progress=progress,
            retry=retry,
            checkpoint=checkpoint,
            run_key=run_key,
            resume=resume,
            chunk_size=chunk_size,
        )

    def run_trace(
        self,
        config: PathConfig,
        trace_index: int,
        settings: CampaignSettings | None = None,
    ) -> Trace:
        """Collect one trace on one path.

        Runs on the vectorized fluid engine by default; setting
        ``REPRO_FLUID_VECTOR=0`` switches to the scalar reference loop.
        The two engines consume the same named site streams
        (``{path}/trace{i}/fluid/{site}``) and produce byte-identical
        traces (``make vector-parity``).
        """
        settings = settings or CampaignSettings()
        sites = FluidSites.from_streams(self.streams, config.path_id, trace_index)
        small = self.small_tcp if settings.run_small_window else None
        time_s = trace_index * TRACE_GAP_S
        if fluid_vector_enabled():
            dt_s = sites.dt.uniform(
                *EPOCH_INTERVAL_RANGE_S, settings.epochs_per_trace
            )
            return run_fluid_trace(
                config,
                sites,
                trace_index,
                dt_s,
                tcp=self.tcp,
                small_tcp=small,
                checkpoint_fractions=settings.checkpoint_fractions,
                transfer_duration_s=settings.transfer_duration_s,
                start_time_s=time_s,
            )
        simulator = FluidPathSimulator(config, sites, start_time_s=time_s)
        trace = Trace(path_id=config.path_id, trace_index=trace_index)
        for epoch_index in range(settings.epochs_per_trace):
            dt_s = float(sites.dt.uniform(*EPOCH_INTERVAL_RANGE_S))
            time_s += dt_s
            trace.append(
                simulator.run_epoch(
                    path_id=config.path_id,
                    trace_index=trace_index,
                    epoch_index=epoch_index,
                    start_time_s=time_s,
                    dt_s=dt_s,
                    tcp=self.tcp,
                    small_tcp=small,
                    checkpoint_fractions=settings.checkpoint_fractions,
                    transfer_duration_s=settings.transfer_duration_s,
                )
            )
        return trace


def run_may_2004(
    seed: int = 0,
    n_traces: int = 7,
    epochs_per_trace: int = 150,
    run_small_window: bool = True,
) -> Dataset:
    """Convenience: the first measurement set at the requested scale."""
    from repro.paths.config import may_2004_catalog

    campaign = Campaign(may_2004_catalog(), seed=seed, label="may-2004")
    return campaign.run(
        CampaignSettings(
            n_traces=n_traces,
            epochs_per_trace=epochs_per_trace,
            run_small_window=run_small_window,
        )
    )


def run_march_2006(
    seed: int = 1,
    n_traces: int = 3,
    epochs_per_trace: int = 150,
) -> Dataset:
    """Convenience: the second set — 120 s transfers, 30/60/120 s cuts."""
    from repro.paths.config import march_2006_catalog

    campaign = Campaign(march_2006_catalog(), seed=seed, label="march-2006")
    return campaign.run(
        CampaignSettings(
            n_traces=n_traces,
            epochs_per_trace=epochs_per_trace,
            transfer_duration_s=120.0,
            run_small_window=False,
            checkpoint_fractions=(0.25, 0.5, 1.0),
        )
    )
