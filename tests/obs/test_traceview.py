"""Trace rendering: tree rebuild, timelines, critical path, Chrome export."""

import json

from repro.obs.traceview import (
    build_traces,
    critical_path,
    critical_path_table,
    render_critical_path,
    render_timeline,
    to_chrome_trace,
    validate_chrome_trace,
)


def span(trace_id, span_id, parent_id, name, ts, dur_s, **tags):
    return {
        "kind": "span",
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "ts": ts,
        "dur_s": dur_s,
        **tags,
    }


def campaign_events():
    """A two-unit campaign trace, events in leaf-first recorded order."""
    return [
        span("T", "e1", "u1", "epoch", 10.0, 0.2, epoch=0),
        span("T", "e2", "u1", "epoch", 10.2, 0.3, epoch=1),
        span("T", "u1", "c", "trace", 10.0, 0.5, path="p01"),
        span("T", "e3", "u2", "epoch", 10.5, 0.4, epoch=0),
        span("T", "u2", "c", "trace", 10.5, 0.4, path="p02"),
        span("T", "c", None, "campaign", 10.0, 1.0, label="may2004"),
    ]


class TestBuildTraces:
    def test_rebuilds_tree_from_flat_events(self):
        traces = build_traces(campaign_events())
        assert list(traces) == ["T"]
        (root,) = traces["T"]
        assert root.name == "campaign"
        assert [c.name for c in root.children] == ["trace", "trace"]
        assert [c.tags["path"] for c in root.children] == ["p01", "p02"]
        assert [e.name for e in root.children[0].children] == ["epoch", "epoch"]

    def test_children_sorted_by_start_time(self):
        events = [
            span("T", "b", "r", "late", 5.0, 0.1),
            span("T", "a", "r", "early", 1.0, 0.1),
            span("T", "r", None, "root", 1.0, 5.0),
        ]
        (root,) = build_traces(events)["T"]
        assert [c.name for c in root.children] == ["early", "late"]

    def test_orphan_becomes_root_not_discarded(self):
        events = [span("T", "x", "gone-parent", "orphan", 1.0, 0.1)]
        (root,) = build_traces(events)["T"]
        assert root.name == "orphan"

    def test_non_span_events_ignored(self):
        events = [{"kind": "epoch", "path": "p01"}, {"kind": "metric"}]
        assert build_traces(events) == {}

    def test_traces_keep_first_seen_order(self):
        events = [
            span("B", "b1", None, "rb", 2.0, 0.1),
            span("A", "a1", None, "ra", 1.0, 0.1),
        ]
        assert list(build_traces(events)) == ["B", "A"]

    def test_tags_exclude_core_fields(self):
        (root,) = build_traces(
            [span("T", "s", None, "n", 1.0, 0.1, run="r001", path="p01")]
        )["T"]
        assert root.tags == {"path": "p01"}  # run is bookkeeping, not a tag


class TestTimeline:
    def test_renders_indented_tree_with_tags(self):
        text = render_timeline(campaign_events())
        lines = text.splitlines()
        assert lines[0].startswith("trace T  (6 span(s)")
        assert "  campaign  1.000s  label=may2004" in lines
        assert "    trace  500.000ms  path=p01" in lines
        assert "      epoch  200.000ms  epoch=0" in lines

    def test_trace_filter(self):
        events = campaign_events() + [span("U", "z", None, "other", 0.0, 0.1)]
        assert "other" not in render_timeline(events, trace="T")
        assert "campaign" not in render_timeline(events, trace="U")
        assert "no spans for trace 'Z'" in render_timeline(events, trace="Z")

    def test_empty_events(self):
        assert render_timeline([]) == "no spans recorded\n"

    def test_elision_of_wide_fanout(self):
        events = [span("T", "r", None, "root", 0.0, 10.0)]
        events += [
            span("T", f"c{i}", "r", f"child{i}", float(i), 0.5)
            for i in range(15)
        ]
        text = render_timeline(events, max_children=10)
        assert "... (+5 more)" in text
        assert "child9" in text and "child10" not in text
        assert "child14" in render_timeline(events, max_children=0)


class TestCriticalPath:
    def test_descends_longest_child(self):
        traces = build_traces(campaign_events())
        chain = critical_path(traces["T"])
        # campaign(1.0) -> trace p01 (0.5) -> epoch 1 (0.3)
        assert [n.name for n in chain] == ["campaign", "trace", "epoch"]
        assert chain[1].tags["path"] == "p01"
        assert chain[2].tags["epoch"] == 1

    def test_empty_roots(self):
        assert critical_path([]) == []

    def test_table_exclusive_times(self):
        table = critical_path_table(build_traces(campaign_events()))
        rows = {r["name"]: r for r in table}
        assert rows["campaign"]["exclusive_s"] == 0.5  # 1.0 - 0.5
        assert rows["trace"]["exclusive_s"] == 0.2  # 0.5 - 0.3
        assert rows["epoch"]["exclusive_s"] == 0.3  # leaf keeps it all
        # Sorted by exclusive descending.
        assert [r["name"] for r in table] == ["campaign", "epoch", "trace"]

    def test_render_table(self):
        text = render_critical_path(campaign_events())
        assert "critical path across 1 trace(s):" in text
        assert "exclusive" in text
        assert "campaign" in text
        assert render_critical_path([]) == "no spans recorded\n"


class TestChromeTrace:
    def test_export_is_valid_and_normalized(self):
        doc = to_chrome_trace(campaign_events())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 6
        root = [e for e in spans if e["name"] == "campaign"][0]
        assert root["ts"] == 0.0  # normalized to earliest root
        assert root["dur"] == 1e6
        assert root["args"] == {"label": "may2004"}

    def test_units_subtrees_get_own_threads(self):
        doc = to_chrome_trace(campaign_events())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        units = [e for e in spans if e["name"] == "trace"]
        assert len({e["tid"] for e in units}) == 2
        names = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(names) == 2
        # Epochs inherit their unit's track.
        for unit in units:
            epochs = [
                e for e in spans
                if e["name"] == "epoch" and e["tid"] == unit["tid"]
            ]
            assert epochs

    def test_one_pid_per_trace_with_process_names(self):
        events = campaign_events() + [span("U", "z", None, "other", 0.0, 0.1)]
        doc = to_chrome_trace(events)
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert pids == {1, 2}
        procs = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert procs == ["trace T", "trace U"]

    def test_document_round_trips_through_json(self):
        doc = to_chrome_trace(campaign_events())
        assert json.loads(json.dumps(doc)) == doc

    def test_empty_events(self):
        doc = to_chrome_trace([])
        assert doc["traceEvents"] == []
        assert validate_chrome_trace(doc) == []


class TestValidate:
    def test_flags_structural_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Q", "pid": 1, "tid": 0, "name": "x"},
                    {"ph": "X", "pid": 1, "name": "y", "ts": -1, "dur": 2},
                    "not-an-object",
                ]
            }
        )
        assert any("unexpected ph" in p for p in problems)
        assert any("missing 'tid'" in p for p in problems)
        assert any(".ts must be" in p for p in problems)
        assert any("not an object" in p for p in problems)
