"""Run manifests: write -> load round-trip, resolution, rendering."""

import json

import pytest

from repro.core.errors import DataError
from repro.obs.recorder import (
    ANALYSIS_CORE_COUNTERS,
    MANIFEST_VERSION,
    RunRecorder,
    analysis_sidecar_paths,
    load_manifest,
    read_events,
    resolve_manifest,
    sidecar_paths,
    write_manifest,
)
from repro.obs.render import compare_report, slowest_report, summary_report
from repro.obs.telemetry import ENV_OBS, Telemetry


@pytest.fixture
def tele(monkeypatch):
    monkeypatch.delenv(ENV_OBS, raising=False)
    return Telemetry()


def make_recorder(tele, **kwargs):
    defaults = dict(
        label="may2004",
        seed=7,
        catalog_hash="cafe" * 16,
        cache_key="feed" * 16,
        settings={"n_traces": 2, "epochs_per_trace": 5},
        workers=3,
        run_id="testrun000001",
        telemetry=tele,
    )
    defaults.update(kwargs)
    return RunRecorder(**defaults)


def record_small_run(tele):
    recorder = make_recorder(tele).start()
    tele.record_epoch("epoch", "p01", 0, 0, {"ping": 0.01, "iperf": 0.03},
                      regime="congestion")
    tele.record_epoch("epoch", "p01", 0, 1, {"ping": 0.02, "iperf": 0.30},
                      regime="window")
    tele.counter("cache.misses").inc()
    recorder.finish(cache_hit=False, n_paths=1, n_traces=1, n_epochs=2)
    return recorder


class TestSidecarPaths:
    def test_csv_dataset(self, tmp_path):
        manifest, events = sidecar_paths(tmp_path / "may.csv")
        assert manifest.name == "may.manifest.json"
        assert events.name == "may.events.jsonl"

    def test_suffixless_dataset(self, tmp_path):
        manifest, events = sidecar_paths(tmp_path / "run1")
        assert manifest.name == "run1.manifest.json"
        assert events.name == "run1.events.jsonl"


class TestRoundTrip:
    def test_write_then_load(self, tele, tmp_path):
        recorder = record_small_run(tele)
        dataset = tmp_path / "ds.csv"
        manifest_path, events_path = recorder.write(dataset)
        assert manifest_path.is_file() and events_path.is_file()

        manifest = load_manifest(manifest_path)
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["run_id"] == "testrun000001"
        assert manifest["label"] == "may2004"
        assert manifest["seed"] == 7
        assert manifest["catalog_hash"] == "cafe" * 16
        assert manifest["counts"] == {"paths": 1, "traces": 1, "epochs": 2}
        assert manifest["cache"] == {"hit": False}
        assert manifest["events"]["count"] == 2
        assert manifest["events"]["by_kind"] == {"epoch": 2}

        counters = {c["name"]: c["value"] for c in manifest["counters"]}
        assert counters["epochs.simulated"] == 2
        assert counters["cache.misses"] == 1
        # Core counters are always present, even at zero.
        assert counters["cache.hits"] == 0
        assert counters["simnet.events_processed"] == 0

        timers = {
            (t["name"], tuple(sorted(t["tags"].items()))): t
            for t in manifest["timers"]
        }
        ping = timers[("epoch.phase_s", (("phase", "ping"),))]
        assert ping["count"] == 2
        assert ping["p50"] == pytest.approx(0.01)
        assert ping["max"] == pytest.approx(0.02)

    def test_events_jsonl_round_trip(self, tele, tmp_path):
        recorder = record_small_run(tele)
        manifest_path, _ = recorder.write(tmp_path / "ds.csv")
        events = read_events(manifest_path)
        assert len(events) == 2
        assert events[0]["kind"] == "epoch"
        assert events[0]["run"] == "testrun000001"
        assert events[1]["regime"] == "window"

    def test_write_before_finish_raises(self, tele, tmp_path):
        with pytest.raises(DataError):
            make_recorder(tele).start().write(tmp_path / "ds.csv")

    def test_finish_records_wall_time(self, tele):
        recorder = record_small_run(tele)
        assert recorder.manifest["wall_time_s"] >= 0.0

    def test_start_clears_previous_run(self, tele):
        tele.counter("stale").inc(99)
        recorder = make_recorder(tele).start()
        manifest = recorder.finish()
        names = {c["name"] for c in manifest["counters"]}
        assert "stale" not in names

    def test_write_is_atomic_no_temp_leftovers(self, tele, tmp_path):
        recorder = record_small_run(tele)
        recorder.write(tmp_path / "ds.csv")
        assert not list(tmp_path.glob("*.tmp")) and not list(
            tmp_path.glob(".*.tmp")
        )

    def test_rewrite_replaces_sidecars_whole(self, tele, tmp_path):
        """A second write atomically replaces both sidecars: the reader
        sees either the old pair or the new pair, never a torn file."""
        recorder = record_small_run(tele)
        manifest_path, events_path = recorder.write(tmp_path / "ds.csv")
        first = manifest_path.read_text()
        recorder.write(tmp_path / "ds.csv")
        assert load_manifest(manifest_path)["run_id"] == "testrun000001"
        assert manifest_path.read_text() == first
        assert len(read_events(manifest_path)) == 2
        assert events_path.read_text().count("\n") == 2


class TestLoadValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="no manifest"):
            load_manifest(tmp_path / "nope.manifest.json")

    def test_not_json(self, tmp_path):
        bad = tmp_path / "x.manifest.json"
        bad.write_text("{not json")
        with pytest.raises(DataError, match="not valid JSON"):
            load_manifest(bad)

    def test_json_but_not_a_manifest(self, tmp_path):
        bad = tmp_path / "x.manifest.json"
        bad.write_text(json.dumps({"hello": 1}))
        with pytest.raises(DataError, match="manifest_version"):
            load_manifest(bad)

    def test_future_version_rejected(self, tmp_path):
        bad = tmp_path / "x.manifest.json"
        bad.write_text(json.dumps({"manifest_version": MANIFEST_VERSION + 1}))
        with pytest.raises(DataError, match="newer"):
            load_manifest(bad)

    def test_pre_v1_version_rejected_with_one_liner(self, tmp_path):
        bad = tmp_path / "x.manifest.json"
        bad.write_text(json.dumps({"manifest_version": 0}))
        with pytest.raises(DataError, match="integer >= 1"):
            load_manifest(bad)

    def test_non_integer_version_rejected_not_traceback(self, tmp_path):
        # Historically a string version crashed with a raw TypeError on
        # the `version > MANIFEST_VERSION` comparison.
        for bogus in ("2", 1.5, None, True):
            bad = tmp_path / "x.manifest.json"
            bad.write_text(json.dumps({"manifest_version": bogus}))
            with pytest.raises(DataError, match="invalid manifest_version"):
                load_manifest(bad)

    def test_v1_manifest_defaults_to_campaign_kind(self, tmp_path):
        old = tmp_path / "x.manifest.json"
        old.write_text(json.dumps({"manifest_version": 1, "run_id": "r1"}))
        assert load_manifest(old)["kind"] == "campaign"

    def test_quarantined_sidecar_rejected(self, tmp_path):
        quarantined = tmp_path / "x.manifest.json.corrupt"
        quarantined.write_text("{torn")
        with pytest.raises(DataError, match="quarantined"):
            load_manifest(quarantined)


class TestResolve:
    def test_from_dataset_path(self, tele, tmp_path):
        recorder = record_small_run(tele)
        dataset = tmp_path / "ds.csv"
        manifest_path, _ = recorder.write(dataset)
        assert resolve_manifest(dataset) == manifest_path
        assert resolve_manifest(manifest_path) == manifest_path

    def test_from_directory_with_one_manifest(self, tele, tmp_path):
        recorder = record_small_run(tele)
        manifest_path, _ = recorder.write(tmp_path / "ds.csv")
        assert resolve_manifest(tmp_path) == manifest_path

    def test_ambiguous_directory(self, tele, tmp_path):
        record_small_run(tele).write(tmp_path / "a.csv")
        record_small_run(tele).write(tmp_path / "b.csv")
        with pytest.raises(DataError, match="multiple"):
            resolve_manifest(tmp_path)

    def test_nothing_found(self, tmp_path):
        with pytest.raises(DataError, match="no manifest"):
            resolve_manifest(tmp_path / "ghost.csv")

    def test_quarantined_path_argument(self, tmp_path):
        corrupt = tmp_path / "ds.manifest.json.corrupt"
        corrupt.write_text("{torn")
        with pytest.raises(DataError, match="quarantined"):
            resolve_manifest(corrupt)

    def test_dataset_whose_manifest_was_quarantined(self, tmp_path):
        (tmp_path / "ds.csv").write_text("data")
        (tmp_path / "ds.manifest.json.corrupt").write_text("{torn")
        with pytest.raises(DataError, match="quarantined as corrupt"):
            resolve_manifest(tmp_path / "ds.csv")

    def test_directory_with_only_quarantined_sidecars(self, tmp_path):
        (tmp_path / "ds.manifest.json.corrupt").write_text("{torn")
        with pytest.raises(DataError) as excinfo:
            resolve_manifest(tmp_path)
        assert "ds.manifest.json.corrupt" in str(excinfo.value)


class TestAnalysisKind:
    def test_unknown_kind_rejected(self, tele):
        with pytest.raises(DataError, match="unknown run kind"):
            make_recorder(tele, kind="mystery")

    def test_analysis_core_counters_present_even_at_zero(self, tele):
        recorder = make_recorder(tele, kind="analysis").start()
        manifest = recorder.finish()
        assert manifest["kind"] == "analysis"
        names = {entry["name"] for entry in manifest["counters"]}
        assert set(ANALYSIS_CORE_COUNTERS) <= names
        assert "epochs.simulated" not in names  # campaign contract only

    def test_campaign_kind_keeps_campaign_contract(self, tele):
        manifest = record_small_run(tele).manifest
        names = {entry["name"] for entry in manifest["counters"]}
        assert "epochs.simulated" in names
        assert "hb.level_shifts" not in names

    def test_extras_merge_but_core_fields_win(self, tele):
        recorder = make_recorder(tele, kind="analysis").start()
        manifest = recorder.finish(
            extras={"analysis": {"figures": [2, 19]}, "run_id": "spoofed"}
        )
        assert manifest["analysis"] == {"figures": [2, 19]}
        assert manifest["run_id"] == "testrun000001"

    def test_analysis_sidecar_paths_do_not_clobber_campaign(self, tmp_path):
        dataset = tmp_path / "may.csv"
        manifest_path, events_path = analysis_sidecar_paths(dataset)
        assert manifest_path.name == "may.analysis.manifest.json"
        assert events_path.name == "may.analysis.events.jsonl"
        assert manifest_path != sidecar_paths(dataset)[0]
        # Still `*.manifest.json`, so resolve/summary find it.
        assert manifest_path.name.endswith(".manifest.json")

    def test_analysis_manifest_round_trip(self, tele, tmp_path):
        recorder = make_recorder(tele, kind="analysis").start()
        tele.emit("figure", figure=2, status="ok", wall_s=0.1)
        recorder.finish(extras={"analysis": {"dataset": "may.csv"}})
        manifest_path, events_path = analysis_sidecar_paths(tmp_path / "may.csv")
        write_manifest(recorder.manifest, recorder.events,
                       manifest_path, events_path)
        loaded = load_manifest(resolve_manifest(manifest_path))
        assert loaded["kind"] == "analysis"
        assert loaded["analysis"]["dataset"] == "may.csv"
        events = read_events(manifest_path)
        assert [e["kind"] for e in events] == ["figure"]


class TestRendering:
    def test_summary_report_mentions_the_essentials(self, tele, tmp_path):
        recorder = record_small_run(tele)
        manifest_path, _ = recorder.write(tmp_path / "ds.csv")
        report = summary_report(load_manifest(manifest_path))
        assert "testrun000001" in report
        assert "may2004" in report
        assert "2 epochs" in report
        assert "epoch.phase_s{phase=ping}" in report
        assert "cache.misses" in report
        assert "epoch=2" in report  # event tally

    def test_slowest_ranks_by_elapsed(self, tele, tmp_path):
        recorder = record_small_run(tele)
        manifest_path, _ = recorder.write(tmp_path / "ds.csv")
        report = slowest_report(read_events(manifest_path), n=1)
        lines = report.splitlines()
        assert len(lines) == 2  # header + 1 row
        assert "epoch" in lines[0]
        # Epoch 1 (0.32 s) is slower than epoch 0 (0.04 s).
        assert lines[1].split()[2] == "1"

    def test_slowest_with_no_epochs(self):
        assert "no epoch events" in slowest_report([], n=5)

    def test_compare_reports_deltas(self, tele):
        manifest_a = record_small_run(tele).manifest
        recorder_b = make_recorder(tele, run_id="testrun000002").start()
        tele.record_epoch("epoch", "p01", 0, 0, {"ping": 0.01, "iperf": 0.03})
        recorder_b.finish(n_epochs=1)
        report = compare_report(manifest_a, recorder_b.manifest)
        assert "testrun000001" in report and "testrun000002" in report
        assert "same catalog" in report
        assert "epochs.simulated" in report
        assert "-50.0%" in report  # 2 epochs -> 1 epoch

    def test_compare_zero_baseline_counter_renders_new(self, tele):
        # A counter at 0 in A and >0 in B must render "new", not divide
        # by zero; 0 -> 0 renders "=".
        manifest_a = make_recorder(tele).start().finish()  # all cores at 0
        recorder_b = make_recorder(tele, run_id="testrun000002").start()
        tele.counter("cache.hits").inc(3)
        recorder_b.finish()
        report = compare_report(manifest_a, recorder_b.manifest)
        line = next(l for l in report.splitlines() if "cache.hits" in l)
        assert line.rstrip().endswith("new")
        line = next(l for l in report.splitlines() if "cache.misses" in l)
        assert line.rstrip().endswith("=")

    def test_compare_counter_dropping_to_zero_renders_minus_100(self, tele):
        # The other direction: >0 in A, 0 in B is a real -100% change.
        recorder_a = make_recorder(tele).start()
        tele.counter("cache.hits").inc(4)
        manifest_a = recorder_a.finish()
        manifest_b = make_recorder(tele, run_id="testrun000002").start().finish()
        report = compare_report(manifest_a, manifest_b)
        line = next(l for l in report.splitlines() if "cache.hits" in l)
        assert "-100.0%" in line

    def test_compare_timer_missing_from_one_side_is_na(self, tele):
        recorder_a = make_recorder(tele).start()
        tele.timer("predict.wall_s", predictor="fb").observe(0.2)
        manifest_a = recorder_a.finish()
        manifest_b = make_recorder(tele, run_id="testrun000002").start().finish()
        report = compare_report(manifest_a, manifest_b)
        line = next(l for l in report.splitlines() if "predict.wall_s" in l)
        assert "n/a" in line and "-" in line.split()
        # ...and symmetrically when only B has the series.
        report = compare_report(manifest_b, manifest_a)
        line = next(l for l in report.splitlines() if "predict.wall_s" in l)
        assert "n/a" in line


class TestEventsSizeCap:
    """The ``*.events.jsonl`` sidecar is byte-capped like the access log."""

    def write_run(self, tele, tmp_path, name="may.csv"):
        recorder = record_small_run(tele)
        dataset = tmp_path / name
        dataset.write_text("csv\n")
        recorder.write(dataset)
        return dataset

    def test_uncapped_run_records_zero_dropped(self, tele, tmp_path):
        dataset = self.write_run(tele, tmp_path)
        manifest = load_manifest(dataset.with_name("may.manifest.json"))
        assert manifest["events"]["dropped"] == 0
        assert manifest["events"]["written"] == manifest["events"]["count"]
        names = [c["name"] for c in manifest["counters"]]
        assert "events.dropped" not in names

    def test_cap_keeps_head_and_counts_tail(self, tele, tmp_path, monkeypatch):
        # The floor is 4096 bytes, so record enough epochs to overflow it.
        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "4096")
        tele2 = Telemetry()
        recorder = make_recorder(tele2).start()
        for epoch in range(60):
            tele2.record_epoch("epoch", "p01", 0, epoch, {"iperf": 0.03})
        recorder.finish(cache_hit=False, n_paths=1, n_traces=1, n_epochs=60)
        capped = tmp_path / "capped.csv"
        capped.write_text("csv\n")
        recorder.write(capped)
        manifest = load_manifest(capped.with_name("capped.manifest.json"))
        written = manifest["events"]["written"]
        dropped = manifest["events"]["dropped"]
        assert dropped > 0
        assert written + dropped == manifest["events"]["count"]
        kept = capped.with_name("capped.events.jsonl").read_text()
        assert len(kept.splitlines()) == written
        dropped_counters = [
            c for c in manifest["counters"] if c["name"] == "events.dropped"
        ]
        assert [c["value"] for c in dropped_counters] == [dropped]

    def test_floor_and_garbage_tolerance(self, monkeypatch):
        from repro.obs.recorder import _events_max_bytes

        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "10")
        assert _events_max_bytes() == 4096  # floored
        monkeypatch.setenv("REPRO_EVENTS_MAX_BYTES", "banana")
        assert _events_max_bytes() == 64 * 1024 * 1024
        monkeypatch.delenv("REPRO_EVENTS_MAX_BYTES")
        assert _events_max_bytes() == 64 * 1024 * 1024


class TestReadEventsSkips:
    """Malformed / torn trailing lines load partially, like
    ``ShardedStateStore.restore``: skip, count, keep going."""

    def write_run(self, tele, tmp_path):
        recorder = record_small_run(tele)
        dataset = tmp_path / "may.csv"
        dataset.write_text("csv\n")
        recorder.write(dataset)
        return dataset.with_name("may.manifest.json")

    def damage(self, manifest_path, *lines):
        events_file = manifest_path.with_suffix(".json").with_name(
            "may.events.jsonl"
        )
        with open(events_file, "a") as handle:
            for line in lines:
                handle.write(line)
        return events_file

    def test_torn_trailing_line_skipped_and_counted(self, tele, tmp_path):
        from repro.obs.telemetry import get_telemetry

        manifest_path = self.write_run(tele, tmp_path)
        intact = read_events(manifest_path)
        self.damage(manifest_path, '{"kind": "epo')  # crash mid-append
        singleton = get_telemetry()
        singleton.drain()
        events = read_events(manifest_path)
        assert events == intact
        assert singleton.metrics.counter("events.skipped_lines").value == 1
        skip_notes = [
            e for e in singleton.events if e.get("kind") == "events.skipped"
        ]
        assert len(skip_notes) == 1
        assert skip_notes[0]["lines"] == 1
        assert skip_notes[0]["first_line"] == len(intact) + 1
        singleton.drain()

    def test_interior_garbage_and_non_objects_skipped(self, tele, tmp_path):
        from repro.obs.telemetry import get_telemetry

        manifest_path = self.write_run(tele, tmp_path)
        intact = read_events(manifest_path)
        self.damage(
            manifest_path,
            "not json at all\n",
            '["a", "list"]\n',
            '{"kind": "tail", "ok": true}\n',
        )
        singleton = get_telemetry()
        singleton.drain()
        events = read_events(manifest_path)
        assert events[: len(intact)] == intact
        assert events[-1] == {"kind": "tail", "ok": True}
        assert singleton.metrics.counter("events.skipped_lines").value == 2
        singleton.drain()

    def test_blank_lines_ignored_silently(self, tele, tmp_path):
        from repro.obs.telemetry import get_telemetry

        manifest_path = self.write_run(tele, tmp_path)
        intact = read_events(manifest_path)
        self.damage(manifest_path, "\n", "   \n")
        singleton = get_telemetry()
        singleton.drain()
        assert read_events(manifest_path) == intact
        assert singleton.metrics.counter("events.skipped_lines").value == 0
        singleton.drain()
