"""The metrics registry: counter/gauge/timer math, tags, merging."""

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_TIMER,
    TIMER_MAX_SAMPLES,
    MetricsRegistry,
    SampleBuffer,
    percentile,
)


class TestPercentile:
    def test_nearest_rank_on_known_sample(self):
        sample = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(sample, 50.0) == 50.0
        assert percentile(sample, 95.0) == 95.0
        assert percentile(sample, 99.0) == 99.0
        assert percentile(sample, 100.0) == 100.0
        assert percentile(sample, 0.0) == 1.0

    def test_small_samples(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 99.0) == 7.0
        assert percentile([1.0, 2.0], 50.0) == 1.0
        assert percentile([1.0, 2.0], 95.0) == 2.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)

    def test_single_sample_is_every_quantile(self):
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile([3.5], q) == 3.5

    def test_extreme_quantiles_hit_the_ends(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert percentile(sample, 0.0) == 1.0
        assert percentile(sample, 1.0) == 1.0
        assert percentile(sample, 100.0) == 4.0

    def test_rejects_unsorted_input(self):
        with pytest.raises(ValueError, match="sorted"):
            percentile([2.0, 1.0, 3.0], 50.0)

    def test_duplicates_are_sorted_and_accepted(self):
        assert percentile([1.0, 1.0, 1.0, 2.0], 50.0) == 1.0


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_tags_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("events", phase="a").inc(2)
        registry.counter("events", phase="b").inc(3)
        assert registry.counter("events", phase="a").value == 2
        assert registry.counter("events", phase="b").value == 3

    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("x", k="v") is registry.counter("x", k="v")
        assert registry.counter("x", k="v") is not registry.counter("x", k="w")


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("done")
        gauge.set(3)
        gauge.set(7)
        assert gauge.value == 7.0


class TestTimer:
    def test_observe_and_stats(self):
        registry = MetricsRegistry()
        timer = registry.timer("phase_s", phase="iperf")
        for value in (0.3, 0.1, 0.2):
            timer.observe(value)
        stats = timer.stats()
        assert stats["count"] == 3
        assert stats["sum"] == pytest.approx(0.6)
        assert stats["min"] == 0.1
        assert stats["max"] == 0.3
        assert stats["p50"] == 0.2
        assert stats["p95"] == 0.3

    def test_percentiles_on_hundred_samples(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        for v in range(100, 0, -1):  # insertion order must not matter
            timer.observe(v / 1000.0)
        assert timer.quantile(50.0) == pytest.approx(0.050)
        assert timer.quantile(95.0) == pytest.approx(0.095)
        assert timer.quantile(99.0) == pytest.approx(0.099)

    def test_empty_timer_stats_are_zeros(self):
        stats = MetricsRegistry().timer("t").stats()
        assert stats == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_context_manager_records_a_sample(self):
        registry = MetricsRegistry()
        with registry.timer("block_s"):
            pass
        assert registry.timer("block_s").count == 1
        assert registry.timer("block_s").samples[0] >= 0.0


class TestSampleBuffer:
    def test_plain_list_below_cap(self):
        buffer = SampleBuffer(maxlen=4)
        buffer.extend([0.1, 0.2])
        assert buffer == [0.1, 0.2]
        assert buffer.dropped == 0
        assert isinstance(buffer, list)

    def test_ring_overwrites_oldest_at_cap(self):
        buffer = SampleBuffer(maxlen=4)
        buffer.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert len(buffer) == 4
        assert buffer.dropped == 2
        assert sorted(buffer) == [3.0, 4.0, 5.0, 6.0]
        # The ring wraps: cursor returns to the start after maxlen drops.
        buffer.extend([7.0, 8.0])
        assert sorted(buffer) == [5.0, 6.0, 7.0, 8.0]

    def test_rejects_bad_maxlen(self):
        with pytest.raises(ValueError):
            SampleBuffer(maxlen=0)

    def test_default_cap(self):
        assert SampleBuffer().maxlen == TIMER_MAX_SAMPLES

    def test_timer_is_bounded(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        assert timer.samples.maxlen == TIMER_MAX_SAMPLES

    def test_bounded_timer_quantiles_track_recent_samples(self):
        timer = MetricsRegistry().timer("t")
        timer.samples = SampleBuffer(maxlen=100)
        for v in range(1000):
            timer.observe(float(v))
        assert timer.count == 100
        assert timer.samples.dropped == 900
        # Only the most recent 100 observations are in the quantile base.
        assert timer.quantile(0.0) >= 900.0
        assert timer.quantile(100.0) == 999.0

    def test_small_sample_stats_unchanged_by_bound(self):
        # Below the cap the buffer is an exact plain list: the regression
        # guard that bounding did not change quantiles for normal runs.
        timer = MetricsRegistry().timer("t")
        for value in (0.3, 0.1, 0.2):
            timer.observe(value)
        assert timer.samples == [0.3, 0.1, 0.2]
        assert timer.stats()["p50"] == 0.2

    def test_merge_respects_cap(self):
        parent = MetricsRegistry()
        parent.timer("t").samples = SampleBuffer(maxlen=8)
        worker = MetricsRegistry()
        for v in range(20):
            worker.timer("t").observe(float(v))
        parent.merge(worker.snapshot())
        assert parent.timer("t").count == 8
        assert parent.timer("t").samples.dropped == 12


class TestDiscardGauges:
    def test_discards_by_tag_subset(self):
        registry = MetricsRegistry()
        registry.gauge("predict.rel_error", path="a", predictor="ma10").set(1)
        registry.gauge("predict.rel_error", path="a", predictor="ewma").set(2)
        registry.gauge("predict.rel_error", path="b", predictor="ma10").set(3)
        registry.gauge("other", path="a").set(4)
        assert registry.discard_gauges("predict.rel_error", path="a") == 2
        remaining = registry.snapshot()["gauges"]
        assert {(g["name"], g["tags"].get("path")) for g in remaining} == {
            ("predict.rel_error", "b"),
            ("other", "a"),
        }

    def test_no_match_is_a_noop(self):
        registry = MetricsRegistry()
        registry.gauge("g", path="a").set(1)
        assert registry.discard_gauges("g", path="zz") == 0
        assert registry.discard_gauges("nope") == 0
        assert len(registry.snapshot()["gauges"]) == 1


class TestSnapshotMerge:
    def test_roundtrip(self):
        a = MetricsRegistry()
        a.counter("hits").inc(2)
        a.gauge("done").set(5)
        a.timer("t", phase="x").observe(0.25)

        b = MetricsRegistry()
        b.merge(a.snapshot())
        assert b.counter("hits").value == 2
        assert b.gauge("done").value == 5.0
        assert b.timer("t", phase="x").samples == [0.25]

    def test_merge_accumulates_counters_and_samples(self):
        parent = MetricsRegistry()
        parent.counter("hits").inc(1)
        parent.timer("t").observe(0.1)
        worker = MetricsRegistry()
        worker.counter("hits").inc(4)
        worker.timer("t").observe(0.2)
        parent.merge(worker.snapshot())
        assert parent.counter("hits").value == 5
        assert sorted(parent.timer("t").samples) == [0.1, 0.2]

    def test_merge_with_overlapping_tag_sets(self):
        # Series identity is name + the full tag set: a bare series, a
        # partially-tagged one, and a fully-tagged one must stay distinct
        # through a merge even though they share name and tag values.
        parent = MetricsRegistry()
        parent.counter("predictions.made").inc(1)
        parent.counter("predictions.made", predictor="fb").inc(2)
        parent.counter("predictions.made", predictor="fb", regime="lossy").inc(3)
        worker = MetricsRegistry()
        worker.counter("predictions.made", predictor="fb", regime="lossy").inc(4)
        worker.counter("predictions.made", regime="lossy").inc(5)
        worker.timer("predict.wall_s", predictor="fb").observe(0.5)

        parent.merge(worker.snapshot())
        assert parent.counter("predictions.made").value == 1
        assert parent.counter("predictions.made", predictor="fb").value == 2
        assert (
            parent.counter("predictions.made", predictor="fb", regime="lossy")
            .value == 7
        )
        assert parent.counter("predictions.made", regime="lossy").value == 5
        assert parent.timer("predict.wall_s", predictor="fb").samples == [0.5]

    def test_tag_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        registry.counter("c", b="2", a="1").inc()
        assert registry.counter("c", a="1", b="2").value == 2

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        assert [c["name"] for c in snapshot["counters"]] == ["a", "b"]
        import json

        json.dumps(snapshot)  # JSON-able, no custom objects

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.is_empty()


class TestNullInstruments:
    def test_null_counter_discards(self):
        NULL_COUNTER.inc(100)
        assert NULL_COUNTER.value == 0

    def test_null_timer_discards(self):
        with NULL_TIMER:
            pass
        NULL_TIMER.observe(1.0)
        assert NULL_TIMER.count == 0
