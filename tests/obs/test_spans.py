"""The span subsystem: context, sampling, caps, synthesis, re-parenting."""

import pytest

from repro.obs import spans as spans_mod
from repro.obs.spans import (
    ENV_TRACE_MAX_SPANS,
    ENV_TRACE_SAMPLE,
    NULL_SPAN,
    record_epoch_spans,
    record_request_spans,
    reparent_spans,
    sample_decision,
    span_ring_snapshot,
    start_span,
    trace_sample_rate,
)
from repro.obs.telemetry import ENV_OBS, get_telemetry


@pytest.fixture()
def tele(monkeypatch):
    """The live singleton, drained around the test, tracing env clean."""
    monkeypatch.delenv(ENV_OBS, raising=False)
    monkeypatch.delenv(ENV_TRACE_SAMPLE, raising=False)
    monkeypatch.delenv(ENV_TRACE_MAX_SPANS, raising=False)
    instance = get_telemetry()
    instance.drain()
    yield instance
    instance.drain()


def span_events(tele):
    return [e for e in tele.events if e.get("kind") == "span"]


class TestSpanBasics:
    def test_root_span_records_event(self, tele):
        with tele.span("campaign", label="may2004"):
            pass
        (event,) = span_events(tele)
        assert event["name"] == "campaign"
        assert event["label"] == "may2004"
        assert event["parent_id"] is None
        assert event["trace_id"]
        assert event["span_id"]
        assert event["dur_s"] >= 0.0
        assert event["ts"] > 0.0
        assert tele.span_events == 1

    def test_nested_spans_share_trace_and_link_parent(self, tele):
        with tele.span("outer") as outer:
            with tele.span("inner"):
                pass
        inner, out = sorted(span_events(tele), key=lambda e: e["name"])
        assert inner["trace_id"] == out["trace_id"] == outer.trace_id
        assert inner["parent_id"] == out["span_id"]
        assert out["parent_id"] is None

    def test_children_recorded_before_parent(self, tele):
        # Spans complete inside-out, so the event order is leaf-first;
        # consumers rebuild structure from ids, not order.
        with tele.span("outer"):
            with tele.span("inner"):
                pass
        names = [e["name"] for e in span_events(tele)]
        assert names == ["inner", "outer"]

    def test_exception_tags_error_and_propagates(self, tele):
        with pytest.raises(ValueError):
            with tele.span("job"):
                raise ValueError("boom")
        (event,) = span_events(tele)
        assert event["error"] == "ValueError"

    def test_context_restored_after_exception(self, tele):
        with pytest.raises(RuntimeError):
            with tele.span("a"):
                raise RuntimeError
        with tele.span("b"):
            pass
        b = [e for e in span_events(tele) if e["name"] == "b"][0]
        assert b["parent_id"] is None  # "a" did not leak its context

    def test_annotate_adds_tags(self, tele):
        with tele.span("job") as span:
            span.annotate(status="ok", n=3)
        (event,) = span_events(tele)
        assert event["status"] == "ok"
        assert event["n"] == 3

    def test_disabled_telemetry_returns_shared_null_span(
        self, tele, monkeypatch
    ):
        monkeypatch.setenv(ENV_OBS, "0")
        span = tele.span("campaign")
        assert span is NULL_SPAN
        with span:
            pass
        assert tele.events == []

    def test_span_ids_unique_across_spans(self, tele):
        for _ in range(50):
            with tele.span("s"):
                pass
        ids = [e["span_id"] for e in span_events(tele)]
        assert len(set(ids)) == 50

    def test_drain_resets_span_count_and_merge_restores(self, tele):
        with tele.span("a"):
            pass
        snapshot = tele.drain()
        assert tele.span_events == 0
        assert snapshot["span_events"] == 1
        tele.merge(snapshot)
        assert tele.span_events == 1
        assert len(span_events(tele)) == 1


class TestSampling:
    def test_rate_default_is_one(self, monkeypatch):
        monkeypatch.delenv(ENV_TRACE_SAMPLE, raising=False)
        assert trace_sample_rate() == 1.0

    def test_rate_clamped_and_garbage_tolerated(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_SAMPLE, "7")
        assert trace_sample_rate() == 1.0
        monkeypatch.setenv(ENV_TRACE_SAMPLE, "-1")
        assert trace_sample_rate() == 0.0
        monkeypatch.setenv(ENV_TRACE_SAMPLE, "zebra")
        assert trace_sample_rate() == 1.0

    def test_decision_is_deterministic_and_rate_respecting(self):
        keys = [f"p{i:02d}/{j}" for i in range(40) for j in range(5)]
        kept = [k for k in keys if sample_decision(k, 0.5)]
        assert kept == [k for k in keys if sample_decision(k, 0.5)]
        assert 0 < len(kept) < len(keys)
        assert all(sample_decision(k, 1.0) for k in keys)
        assert not any(sample_decision(k, 0.0) for k in keys)

    def test_lower_rate_keeps_subset(self):
        keys = [f"p{i:02d}/{j}" for i in range(40) for j in range(5)]
        at_half = {k for k in keys if sample_decision(k, 0.5)}
        at_tenth = {k for k in keys if sample_decision(k, 0.1)}
        assert at_tenth <= at_half

    def test_sampled_out_span_records_nothing(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_SAMPLE, "0")
        with tele.span("trace", sample_key="p01/0"):
            pass
        assert tele.events == []

    def test_sampled_out_span_blocks_descendants(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_SAMPLE, "0")
        with tele.span("root"):  # keyless root at rate 0: kill switch
            with tele.span("child"):
                record_epoch_spans(tele, "epoch", "p01", 0, 0, {"iperf": 0.1})
        assert tele.events == []

    def test_unsampled_subtree_does_not_attach_to_outer_span(
        self, tele, monkeypatch
    ):
        # key chosen so a 0.5 hash decision drops it: find one such key.
        dropped = next(
            k for k in (f"p{i}/0" for i in range(100))
            if not sample_decision(k, 0.5)
        )
        monkeypatch.setenv(ENV_TRACE_SAMPLE, "0.5")
        with tele.span("campaign"):
            with tele.span("trace", sample_key=dropped):
                with tele.span("epoch"):
                    pass
        names = [e["name"] for e in span_events(tele)]
        assert names == ["campaign"]

    def test_keyless_child_inherits_sampled_parent(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_SAMPLE, "0.5")
        kept = next(
            k for k in (f"p{i}/0" for i in range(100))
            if sample_decision(k, 0.5)
        )
        with tele.span("campaign"):
            with tele.span("trace", sample_key=kept):
                with tele.span("epoch"):
                    pass
        names = sorted(e["name"] for e in span_events(tele))
        assert names == ["campaign", "epoch", "trace"]


class TestSpanCap:
    def test_cap_drops_and_counts(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_MAX_SPANS, "3")
        for _ in range(5):
            with tele.span("s"):
                pass
        assert len(span_events(tele)) == 3
        assert tele.metrics.counter("spans.dropped").value == 2

    def test_cap_applies_per_drain_window(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_MAX_SPANS, "2")
        with tele.span("a"):
            pass
        tele.drain()
        with tele.span("b"):
            pass
        assert len(span_events(tele)) == 1  # fresh budget after drain

    def test_garbage_cap_falls_back_to_default(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_MAX_SPANS, "many")
        with tele.span("s"):
            pass
        assert len(span_events(tele)) == 1


class TestRing:
    def test_ring_sees_spans_past_the_cap(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_MAX_SPANS, "1")
        monkeypatch.setattr(spans_mod, "_RING", None)
        spans_mod.install_span_ring(maxlen=8)
        for _ in range(5):
            with tele.span("s"):
                pass
        assert len(span_events(tele)) == 1  # buffered: capped
        assert len(span_ring_snapshot()) == 5  # ring: everything recent
        assert len(span_ring_snapshot(limit=2)) == 2

    def test_ring_bounded_by_maxlen(self, tele, monkeypatch):
        monkeypatch.setattr(spans_mod, "_RING", None)
        spans_mod.install_span_ring(maxlen=3)
        for i in range(6):
            with tele.span(f"s{i}"):
                pass
        assert [e["name"] for e in span_ring_snapshot()] == ["s3", "s4", "s5"]


class TestReparent:
    def test_roots_move_under_parent_and_trace_rewrites(self, tele):
        with tele.span("unit"):
            with tele.span("epoch"):
                pass
        snapshot = tele.drain()
        reparent_spans(snapshot["events"], "T", "P")
        unit = [e for e in snapshot["events"] if e["name"] == "unit"][0]
        epoch = [e for e in snapshot["events"] if e["name"] == "epoch"][0]
        assert unit["trace_id"] == epoch["trace_id"] == "T"
        assert unit["parent_id"] == "P"
        assert epoch["parent_id"] == unit["span_id"]  # interior untouched

    def test_non_span_events_untouched(self, tele):
        events = [{"kind": "epoch", "path": "p01"}]
        reparent_spans(events, "T", "P")
        assert events == [{"kind": "epoch", "path": "p01"}]


class TestSynthesis:
    def test_epoch_spans_only_under_open_context(self, tele):
        record_epoch_spans(tele, "epoch", "p01", 0, 0, {"iperf": 0.1})
        assert tele.events == []  # no open span: nothing to hang on

    def test_epoch_spans_synthesize_phase_children(self, tele):
        phases = {"load": 0.01, "iperf": 0.04}
        with tele.span("trace") as unit:
            record_epoch_spans(tele, "epoch", "p01", 2, 7, phases)
        events = span_events(tele)
        epoch = [e for e in events if e["name"] == "epoch"][0]
        assert epoch["parent_id"] == unit.span_id
        assert epoch["path"] == "p01"
        assert epoch["trace"] == 2
        assert epoch["epoch"] == 7
        assert epoch["dur_s"] == pytest.approx(0.05)
        children = [e for e in events if e["parent_id"] == epoch["span_id"]]
        assert {c["name"] for c in children} == {"load", "iperf"}
        # Laid end to end: children tile the epoch span.
        load = [c for c in children if c["name"] == "load"][0]
        iperf = [c for c in children if c["name"] == "iperf"][0]
        assert load["ts"] == pytest.approx(epoch["ts"], abs=1e-5)
        assert iperf["ts"] == pytest.approx(load["ts"] + 0.01, abs=1e-5)

    def test_request_spans_use_request_id_as_trace_id(self, tele):
        record_request_spans(
            {"route": "ingest", "key": "k1"},
            "req-0001",
            {"parse": 0.001, "ingest": 0.002},
            "POST",
            "/paths/k1/samples",
            200,
        )
        events = span_events(tele)
        root = [e for e in events if e["name"] == "request"][0]
        assert root["trace_id"] == "req-0001"
        assert root["parent_id"] is None
        assert root["route"] == "ingest"
        assert root["status"] == 200
        children = {e["name"] for e in events if e["parent_id"] == root["span_id"]}
        assert children == {"parse", "ingest"}
        assert all(e["trace_id"] == "req-0001" for e in events)

    def test_request_spans_respect_kill_switch(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_OBS, "0")
        record_request_spans({}, "req-1", {"parse": 0.001}, "GET", "/x", 200)
        assert tele.events == []


class TestStartSpanDirect:
    def test_start_span_on_disabled_returns_null(self, tele, monkeypatch):
        monkeypatch.setenv(ENV_OBS, "0")
        assert start_span(tele, "x") is NULL_SPAN
